#include "shard/partition.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cloudfog::shard {

Partition partition_sites(const std::vector<PartitionSite>& sites,
                          std::size_t want_shards) {
  CF_CHECK_GE(want_shards, std::size_t{1});
  Partition p;
  if (sites.empty()) {
    p.shard_count = 1;
    return p;
  }
  p.shard_count = std::min(want_shards, sites.size());

  // Anchor 0: the heaviest site (ties: lowest id).
  std::size_t first = 0;
  for (std::size_t i = 1; i < sites.size(); ++i) {
    if (sites[i].weight > sites[first].weight ||
        (sites[i].weight == sites[first].weight &&
         sites[i].id < sites[first].id)) {
      first = i;
    }
  }
  p.anchor_site.push_back(first);

  // Farthest-point sampling: track each site's distance to its nearest
  // chosen anchor; the next anchor is the site where that distance peaks.
  std::vector<double> nearest_km(sites.size(),
                                 std::numeric_limits<double>::infinity());
  while (p.anchor_site.size() < p.shard_count) {
    const PartitionSite& added = sites[p.anchor_site.back()];
    for (std::size_t i = 0; i < sites.size(); ++i) {
      nearest_km[i] = std::min(nearest_km[i],
                               net::haversine_km(sites[i].position,
                                                 added.position));
    }
    std::size_t best = sites.size();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (nearest_km[i] <= 0.0) continue;  // an anchor, or co-located twin
      if (best == sites.size() || nearest_km[i] > nearest_km[best] ||
          (nearest_km[i] == nearest_km[best] &&
           sites[i].id < sites[best].id)) {
        best = i;
      }
    }
    if (best == sites.size()) break;  // every site co-located with an anchor
    p.anchor_site.push_back(best);
  }
  p.shard_count = p.anchor_site.size();

  // Every site joins its nearest anchor's shard ((distance, shard) order).
  p.site_shard.resize(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::size_t shard = 0;
    double best_km = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < p.anchor_site.size(); ++s) {
      const double d = net::haversine_km(
          sites[i].position, sites[p.anchor_site[s]].position);
      if (d < best_km) {
        best_km = d;
        shard = s;
      }
    }
    p.site_shard[i] = shard;
  }
  return p;
}

AnchorIndex::AnchorIndex(const std::vector<PartitionSite>& sites,
                         const Partition& p) {
  CF_CHECK_MSG(!p.anchor_site.empty(), "partition has no anchors to index");
  for (std::size_t s = 0; s < p.anchor_site.size(); ++s) {
    const PartitionSite& anchor = sites[p.anchor_site[s]];
    grid_.insert(anchor.id, anchor.position);
    shard_by_anchor_.emplace(anchor.id, s);
  }
}

std::size_t AnchorIndex::shard_of(const net::GeoPoint& position) const {
  grid_.nearest_k(position, 1, scratch_);
  CF_CHECK_MSG(!scratch_.empty(), "anchor index lost its anchors");
  return shard_by_anchor_.at(scratch_.front().second);
}

}  // namespace cloudfog::shard
