// Cross-shard event mailboxes — DESIGN.md §13.
//
// During a window round each shard may post events destined for other
// shards (supernode failover notices, cooperative cache probes and their
// responses). Posts land in per-(source, destination) lanes: exactly one
// producer (the source shard's worker) ever appends to a lane during a
// round, and lanes are drained only between rounds, after the barrier —
// the barrier's mutex provides the happens-before edge, so no lane needs
// its own lock. Lanes are cache-line aligned so two producers never write
// the same line.
//
// Drain order is canonical: (when, source shard, per-lane sequence). The
// destination shard schedules the messages in exactly that order, so the
// receiving engine's tie-break (its own scheduling sequence) reproduces
// the same total order on every run and any worker count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace cloudfog::shard {

/// One cross-shard event: run `fn` on the destination shard at `when`.
struct InboxMessage {
  TimeMs when = 0.0;
  std::size_t src = 0;     // source shard
  std::uint64_t seq = 0;   // per-(src, dst) monotone posting order
  std::function<void()> fn;
};

class InboxExchange {
 public:
  explicit InboxExchange(std::size_t shards) : shards_(shards) {
    CF_CHECK_GE(shards, std::size_t{1});
    lanes_.resize(shards * shards);
  }

  std::size_t shards() const { return shards_; }

  /// Posts a message from `src` to `dst`. Only `src`'s worker may call
  /// this, and only while a round is executing (single producer per lane).
  void post(std::size_t src, std::size_t dst, TimeMs when,
            std::function<void()> fn) {
    CF_CHECK_MSG(src < shards_ && dst < shards_, "shard index out of range");
    CF_CHECK_MSG(src != dst, "same-shard events go straight to the engine");
    Lane& lane = lanes_[src * shards_ + dst];
    lane.messages.push_back(
        InboxMessage{when, src, lane.next_seq++, std::move(fn)});
  }

  /// Removes and returns everything addressed to `dst`, sorted by the
  /// canonical (when, src, seq) order. Coordinator-only, between rounds.
  std::vector<InboxMessage> drain(std::size_t dst) {
    CF_CHECK_MSG(dst < shards_, "shard index out of range");
    std::vector<InboxMessage> out;
    for (std::size_t src = 0; src < shards_; ++src) {
      Lane& lane = lanes_[src * shards_ + dst];
      for (InboxMessage& m : lane.messages) out.push_back(std::move(m));
      lane.messages.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const InboxMessage& a, const InboxMessage& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    return out;
  }

 private:
  struct alignas(64) Lane {
    std::vector<InboxMessage> messages;
    std::uint64_t next_seq = 0;
  };

  std::size_t shards_;
  std::vector<Lane> lanes_;  // indexed src * shards_ + dst
};

}  // namespace cloudfog::shard
