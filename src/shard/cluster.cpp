#include "shard/cluster.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/run_executor.h"
#include "util/check.h"

namespace cloudfog::shard {

std::size_t effective_shard_count(std::size_t requested, TimeMs lookahead) {
  CF_CHECK_GE(requested, std::size_t{1});
  return lookahead > 0.0 ? requested : 1;
}

ShardCluster::ShardCluster(std::size_t shard_count, std::size_t workers)
    : inbox_(shard_count),
      pool_(std::min(shard_count,
                     workers == 0 ? exec::default_jobs() : workers)),
      parent_registry_(obs::registry()) {
  CF_CHECK_GE(shard_count, std::size_t{1});
  sims_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    sims_.push_back(std::make_unique<sim::Simulator>());
  }
  if (parent_registry_ != nullptr) {
    shard_registries_ = std::vector<obs::MetricsRegistry>(shard_count);
  }
}

void ShardCluster::post(std::size_t src, std::size_t dst, TimeMs when,
                        std::function<void()> fn) {
  inbox_.post(src, dst, when, std::move(fn));
}

void ShardCluster::run(TimeMs horizon, TimeMs lookahead) {
  CF_CHECK_MSG(!ran_, "a ShardCluster runs exactly once");
  ran_ = true;
  CF_CHECK_GT(lookahead, 0.0);  // <= 0 must collapse via effective_shard_count
  for (;;) {
    const TimeMs now = sims_[0]->now();
    const bool final_round =
        !(std::isfinite(lookahead) && now + lookahead < horizon);
    const TimeMs bound = final_round ? horizon : now + lookahead;
    pool_.run_round(sims_.size(), [&](std::size_t s) {
      // Per-shard thread-scoped registry: the engines' hot counters land
      // in shard-private storage, merged below once the run completes.
      if (parent_registry_ != nullptr) {
        obs::ScopedRegistry scoped(shard_registries_[s]);
        final_round ? sims_[s]->run_until(bound) : sims_[s]->run_before(bound);
      } else {
        final_round ? sims_[s]->run_until(bound) : sims_[s]->run_before(bound);
      }
    });
    for (std::size_t dst = 0; dst < sims_.size(); ++dst) {
      for (InboxMessage& m : inbox_.drain(dst)) {
        // The conservative contract: nothing posted during a window may
        // land inside it. At the horizon the message is simply dropped —
        // past-the-end events never execute in the sequential engine
        // either.
        CF_CHECK_MSG(m.when >= bound,
                     "cross-shard message beat the lookahead window");
        if (final_round) continue;
        sims_[dst]->schedule_at(m.when, std::move(m.fn));
      }
    }
    if (final_round) break;
  }
  if (parent_registry_ != nullptr) {
    for (const obs::MetricsRegistry& r : shard_registries_) {
      parent_registry_->merge_from(r);
    }
  }
}

}  // namespace cloudfog::shard
