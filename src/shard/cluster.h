// Conservative-window shard coordinator — DESIGN.md §13.
//
// ShardCluster owns K independent slab event engines (sim::Simulator), a
// cross-shard InboxExchange and a BarrierPool, and advances all shards in
// lock step through conservative time windows (the CMB/null-message bound
// collapsed to its static special case):
//
//   while now < horizon:
//     bound = min(horizon, now + lookahead)
//     barrier round:  every shard runs its own engine to `bound`
//                     (run_before — events exactly AT the bound belong to
//                      the next window; the final round is run_until so
//                      horizon-edge events fire, matching the sequential
//                      engine)
//     exchange:       drain the inboxes in canonical (when, src, seq)
//                     order into the destination engines; every message
//                     must land at or after `bound` (CF_CHECKed — the
//                     lookahead really was conservative)
//
// `lookahead` is the minimum latency any cross-shard message can carry
// (net::LatencyModel::min_route_ms() is the closed-form floor; the runner
// derives the actual bound from the supernode neighbor graph). An
// infinite lookahead — no cross-shard message edges at all — degenerates
// to a single window: embarrassingly parallel. A non-positive lookahead
// cannot synchronise anything; effective_shard_count collapses the run to
// one shard, which needs no windows.
//
// Observability: if a metrics registry is installed when the cluster is
// built, each shard gets a private registry installed (thread-locally) for
// the duration of its round tasks, and all K are merged into the parent in
// shard order after the run — same pattern as exec::RunExecutor.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "shard/barrier_pool.h"
#include "shard/inbox.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace cloudfog::shard {

/// The shard count a run can actually sustain: `requested`, unless the
/// lookahead is non-positive (zero-lookahead degenerate case — nothing can
/// be ahead of anything, so only the sequential engine is sound).
std::size_t effective_shard_count(std::size_t requested, TimeMs lookahead);

class ShardCluster {
 public:
  /// `workers` == 0 resolves to exec::default_jobs(); the pool width is
  /// additionally capped at the shard count (idle workers help nobody).
  explicit ShardCluster(std::size_t shard_count, std::size_t workers = 0);

  std::size_t shard_count() const { return sims_.size(); }
  sim::Simulator& sim(std::size_t shard) { return *sims_[shard]; }

  /// Posts a cross-shard event (see InboxExchange::post for the producer
  /// contract). `when` is the absolute arrival time on `dst`.
  void post(std::size_t src, std::size_t dst, TimeMs when,
            std::function<void()> fn);

  /// Advances every shard to `horizon` in windows of `lookahead` ms
  /// (infinity = one window). Single-shot: one run per cluster. Messages
  /// still in flight at the horizon are dropped — the sequential engine
  /// equally never executes events past its run_until horizon.
  void run(TimeMs horizon, TimeMs lookahead);

 private:
  std::vector<std::unique_ptr<sim::Simulator>> sims_;
  InboxExchange inbox_;
  BarrierPool pool_;
  bool ran_ = false;
  obs::MetricsRegistry* parent_registry_ = nullptr;
  std::vector<obs::MetricsRegistry> shard_registries_;
};

}  // namespace cloudfog::shard
