// Persistent worker pool with round/barrier semantics — DESIGN.md §13.
//
// The shard runner executes many short rounds (one per conservative time
// window); spawning threads per round would dominate small windows, and
// exec::RunExecutor's run-a-batch-once shape does not fit a long-lived
// round loop. BarrierPool keeps `workers` threads alive for the cluster's
// lifetime: run_round(count, task) has the pool (calling thread included)
// claim task indices off a shared atomic cursor, runs them, and returns
// once all `count` tasks finished — a full barrier.
//
// With workers <= 1 no threads are ever created and rounds run inline on
// the caller — the sequential reference the parallel path is diffed
// against.
//
// Exceptions: the first failing task (lowest index) wins; its exception is
// rethrown from run_round after the barrier, the rest are swallowed —
// mirroring exec::RunExecutor's deterministic failure reporting.
//
// src/shard is, with src/exec, one of the two cflint-sanctioned raw-thread
// boundaries (rule `raw-thread`).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudfog::shard {

class BarrierPool {
 public:
  /// A pool of `workers` round participants (the run_round caller counts
  /// as one, so `workers - 1` threads are spawned; <= 1 means inline).
  explicit BarrierPool(std::size_t workers);
  ~BarrierPool();
  BarrierPool(const BarrierPool&) = delete;
  BarrierPool& operator=(const BarrierPool&) = delete;

  std::size_t workers() const { return threads_.size() + 1; }

  /// Runs task(0) .. task(count - 1) across the pool and returns when all
  /// have finished. Tasks must not call run_round re-entrantly.
  void run_round(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  /// Claims and runs tasks until the cursor passes count_.
  void work();

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  // Atomic: a worker draining the tail of the previous round reads it
  // lock-free while the next round's setup rewrites it under the lock.
  std::atomic<std::size_t> count_{0};
  std::size_t completed_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::uint64_t round_id_ = 0;
  bool stop_ = false;
  std::size_t first_error_index_ = 0;
  std::exception_ptr error_;
  std::vector<std::thread> threads_;
};

}  // namespace cloudfog::shard
