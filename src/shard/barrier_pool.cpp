#include "shard/barrier_pool.h"

#include <limits>

#include "util/check.h"

namespace cloudfog::shard {

BarrierPool::BarrierPool(std::size_t workers) {
  if (workers <= 1) return;  // inline mode: no threads, ever
  threads_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

BarrierPool::~BarrierPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void BarrierPool::run_round(std::size_t count,
                            const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(m_);
    CF_CHECK_MSG(task_ == nullptr, "run_round must not be re-entered");
    task_ = &task;
    count_ = count;
    completed_ = 0;
    first_error_index_ = std::numeric_limits<std::size_t>::max();
    error_ = nullptr;
    ++round_id_;
    // Reset last, under the lock: a stale worker that races ahead of the
    // notify sees a fully initialised round when it claims index 0.
    cursor_.store(0);
  }
  cv_work_.notify_all();
  work();  // the caller is a pool participant
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [this] { return completed_ == count_; });
    task_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void BarrierPool::work() {
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1);
    if (i >= count_) return;
    std::exception_ptr caught;
    try {
      (*task_)(i);
    } catch (...) {
      caught = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(m_);
    if (caught && i < first_error_index_) {
      first_error_index_ = i;
      error_ = caught;
    }
    if (++completed_ == count_) cv_done_.notify_all();
  }
}

void BarrierPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_work_.wait(lock, [&] { return stop_ || round_id_ != seen; });
      if (stop_) return;
      seen = round_id_;
    }
    work();
  }
}

}  // namespace cloudfog::shard
