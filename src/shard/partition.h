// Geographic shard partitioning — DESIGN.md §13.
//
// The space-parallel runner splits the world into K shards along supernode
// geography: the partition sites are the supernode server hosts (weighted
// by how many players each serves), K anchors are chosen by farthest-point
// sampling so the shards tile the globe instead of splitting one metro,
// and every site joins the shard of its nearest anchor. Entities that are
// not sites (datacenter- and edge-served players) are placed by their own
// position through the same nearest-anchor query (AnchorIndex, backed by
// the core::GeoGrid spatial index).
//
// Everything here is deterministic: every choice breaks ties on
// (distance or weight, then lowest NodeId), so the partition is a pure
// function of (sites, want_shards) — a prerequisite for the sharded run's
// digest being reproducible at all.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/geo_grid.h"
#include "net/geo.h"
#include "util/types.h"

namespace cloudfog::shard {

/// One partition site: a supernode server host and its serving weight.
struct PartitionSite {
  NodeId id = kInvalidNode;
  net::GeoPoint position;
  double weight = 0.0;  // players assigned to this site
};

/// A computed partition. shard_count may be lower than requested (never
/// more shards than sites, and at least one even with no sites).
struct Partition {
  std::size_t shard_count = 1;
  std::vector<std::size_t> site_shard;   // parallel to the input sites
  std::vector<std::size_t> anchor_site;  // shard -> index into the sites
};

/// Partitions `sites` into min(want_shards, max(1, sites.size())) shards.
/// Anchor selection: the heaviest site first (ties: lowest id), then
/// farthest-point sampling — each further anchor is the site maximising
/// the distance to its nearest already-chosen anchor (ties: lowest id).
/// Site assignment: nearest anchor in (haversine_km, anchor id) order.
Partition partition_sites(const std::vector<PartitionSite>& sites,
                          std::size_t want_shards);

/// Nearest-anchor lookup for arbitrary positions (players served by
/// datacenters/edge servers rather than a supernode site).
class AnchorIndex {
 public:
  AnchorIndex(const std::vector<PartitionSite>& sites, const Partition& p);

  /// The shard whose anchor is nearest to `position` (GeoGrid order:
  /// ascending (distance, anchor id) — deterministic).
  std::size_t shard_of(const net::GeoPoint& position) const;

 private:
  core::GeoGrid grid_;
  std::unordered_map<NodeId, std::size_t> shard_by_anchor_;
  mutable std::vector<std::pair<double, NodeId>> scratch_;
};

}  // namespace cloudfog::shard
