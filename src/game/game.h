// Game catalog: the five games of the paper's evaluation.
//
// Section IV: "We defined 5 games, their quality levels and latency
// requirements are shown in Figure 2." — game k pairs with the k-th quality
// row: its network latency requirement, target quality level and latency
// tolerance degree (rho) come from that row. Packet-loss tolerance degrees
// are per-game (Section III-C uses values like 0.6/0.2/0.5 in its worked
// example; we assign one per genre on the same scale).
#pragma once

#include <string>
#include <vector>

#include "game/quality.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::game {

using GameId = int;

/// Static description of one game.
struct GameProfile {
  GameId id = -1;
  std::string name;
  std::string genre;
  /// Network response latency requirement (ms) — Figure 2 column 4.
  TimeMs latency_requirement_ms = 0.0;
  /// The paper's latency tolerance degree rho in [0, 1] (Figure 2 col 5).
  double latency_tolerance = 0.0;
  /// Relative packet-loss tolerance degree L_t in [0, 1] (Section III-C).
  double loss_tolerance = 0.0;
  /// Target quality level when the network allows it (Figure 2 row).
  int target_quality_level = 0;
};

/// The five-game catalog used across all experiments.
const std::vector<GameProfile>& game_catalog();

/// Catalog lookup; id in [0, 4].
const GameProfile& game_by_id(GameId id);

/// Picks the game for a joining player: with probability `conformity` the
/// game most played among its online friends (the paper's Section-IV join
/// rule), otherwise — or when no friend is playing — a uniform random
/// catalog game. The sub-unit conformity keeps the population from
/// cascading onto a single title while preserving friend clustering.
GameId choose_game(const std::vector<GameId>& friend_games, util::Rng& rng,
                   double conformity = 0.5);

/// Poisson action generator: models a player issuing latency-relevant
/// actions (strikes, movement) at `actions_per_second`; returns the delay
/// until the next action.
TimeMs next_action_delay_ms(double actions_per_second, util::Rng& rng);

}  // namespace cloudfog::game
