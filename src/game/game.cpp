#include "game/game.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace cloudfog::game {

const std::vector<GameProfile>& game_catalog() {
  // One game per Figure-2 row. Loss tolerance follows genre intuition
  // (turn-based play survives loss better than twitch shooters) on the same
  // 0..1 "degree" scale the paper's Figure-4 example uses.
  static const std::vector<GameProfile> kCatalog = [] {
    std::vector<GameProfile> games;
    const struct {
      const char* name;
      const char* genre;
      double loss_tolerance;
    } kMeta[kNumQualityLevels] = {
        {"Twitch Arena", "first-person shooter", 0.2},
        {"Apex Rally", "racing", 0.3},
        {"World of Avatars", "MMORPG", 0.4},
        {"Star Command", "real-time strategy", 0.5},
        {"Court & Crown", "turn-based strategy", 0.6},
    };
    for (int i = 0; i < kNumQualityLevels; ++i) {
      const QualityLevel& q = quality_for_level(i + 1);
      GameProfile g;
      g.id = i;
      g.name = kMeta[i].name;
      g.genre = kMeta[i].genre;
      g.latency_requirement_ms = q.latency_requirement_ms;
      g.latency_tolerance = q.latency_tolerance;
      g.loss_tolerance = kMeta[i].loss_tolerance;
      g.target_quality_level = q.level;
      games.push_back(std::move(g));
    }
    return games;
  }();
  return kCatalog;
}

const GameProfile& game_by_id(GameId id) {
  const auto& catalog = game_catalog();
  CF_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < catalog.size(),
               "unknown game id");
  return catalog[static_cast<std::size_t>(id)];
}

GameId choose_game(const std::vector<GameId>& friend_games, util::Rng& rng,
                   double conformity) {
  CF_CHECK_MSG(conformity >= 0.0 && conformity <= 1.0,
               "conformity must be a probability");
  std::map<GameId, int> votes;
  for (GameId g : friend_games) {
    if (g >= 0) ++votes[g];
  }
  if (votes.empty() || !rng.bernoulli(conformity)) {
    return static_cast<GameId>(
        rng.uniform_int(0, static_cast<std::int64_t>(game_catalog().size()) - 1));
  }
  GameId best = votes.begin()->first;
  int best_count = votes.begin()->second;
  for (const auto& [g, count] : votes) {
    if (count > best_count) {
      best = g;
      best_count = count;
    }
  }
  return best;
}

TimeMs next_action_delay_ms(double actions_per_second, util::Rng& rng) {
  CF_CHECK_MSG(actions_per_second > 0.0, "action rate must be positive");
  return rng.exponential(actions_per_second) * kMsPerSecond;
}

}  // namespace cloudfog::game
