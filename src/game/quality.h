// Video quality levels — the paper's Figure 2, verbatim.
//
// | level | resolution | bitrate  | latency requirement | latency tolerance |
// |   5   | 1280x720   | 1800kbps | 110 ms              | 1.0               |
// |   4   |  720x486   | 1200kbps |  90 ms              | 0.9               |
// |   3   |  640x480   |  800kbps |  70 ms              | 0.8               |
// |   2   |  384x216   |  500kbps |  50 ms              | 0.7               |
// |   1   |  288x216   |  300kbps |  30 ms              | 0.6               |
#pragma once

#include <array>
#include <cstdint>

#include "util/types.h"

namespace cloudfog::game {

/// One row of the paper's Figure 2.
struct QualityLevel {
  int level = 0;             // 1 (lowest) .. 5 (highest)
  int width = 0;
  int height = 0;
  Kbps bitrate_kbps = 0.0;
  TimeMs latency_requirement_ms = 0.0;
  double latency_tolerance = 0.0;  // the paper's "latency tolerance degree"
};

inline constexpr int kMinQualityLevel = 1;
inline constexpr int kMaxQualityLevel = 5;
inline constexpr int kNumQualityLevels = 5;

/// The full Figure-2 table, index 0 holding level 1.
const std::array<QualityLevel, kNumQualityLevels>& quality_table();

/// The row for a level in [1, 5].
const QualityLevel& quality_for_level(int level);

/// The highest level whose latency requirement is within `latency_ms`
/// (paper: a 90 ms game should be encoded at level 4). Returns level 1 if
/// even the lowest level's requirement exceeds `latency_ms`.
int max_level_for_latency(TimeMs latency_ms);

/// The paper's adjust-up factor beta (Equation 10): the maximum relative
/// bitrate step between adjacent levels.
double adjust_up_beta();

}  // namespace cloudfog::game
