#include "game/quality.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::game {

const std::array<QualityLevel, kNumQualityLevels>& quality_table() {
  static const std::array<QualityLevel, kNumQualityLevels> kTable = {{
      {1, 288, 216, 300.0, 30.0, 0.6},
      {2, 384, 216, 500.0, 50.0, 0.7},
      {3, 640, 480, 800.0, 70.0, 0.8},
      {4, 720, 486, 1200.0, 90.0, 0.9},
      {5, 1280, 720, 1800.0, 110.0, 1.0},
  }};
  return kTable;
}

const QualityLevel& quality_for_level(int level) {
  CF_CHECK_MSG(level >= kMinQualityLevel && level <= kMaxQualityLevel,
               "quality level out of range");
  return quality_table()[static_cast<std::size_t>(level - 1)];
}

int max_level_for_latency(TimeMs latency_ms) {
  int best = kMinQualityLevel;
  for (const auto& q : quality_table()) {
    if (q.latency_requirement_ms <= latency_ms) best = std::max(best, q.level);
  }
  return best;
}

double adjust_up_beta() {
  double beta = 0.0;
  const auto& table = quality_table();
  for (std::size_t i = 0; i + 1 < table.size(); ++i) {
    const double step =
        (table[i + 1].bitrate_kbps - table[i].bitrate_kbps) / table[i].bitrate_kbps;
    beta = std::max(beta, step);
  }
  return beta;
}

}  // namespace cloudfog::game
