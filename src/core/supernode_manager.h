// Supernode directory and player-to-supernode assignment — paper
// Section III-A3.
//
// The cloud keeps a table of supernodes (address/coordinates/available
// capacity). When a player joins:
//   1. the cloud returns its physically closest supernode candidates
//      (by coordinate distance);
//   2. the player probes the transmission delay to each candidate and drops
//      those whose delay exceeds its threshold L_max (derived from its
//      game's response latency requirement);
//   3. the player picks the qualified supernode with the shortest delay and
//      available capacity, recording the rest as backups;
//   4. if no candidate qualifies, the player connects directly to the cloud.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/geo_grid.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::cache {
class EdgeCacheService;
}

namespace cloudfog::core {

/// Cloud-side record of one supernode.
struct SupernodeRecord {
  NodeId host = kInvalidNode;
  int capacity = 0;   // C_j: max normal nodes supported concurrently
  int assigned = 0;   // currently supported normal nodes
  Kbps upload_kbps = 0.0;  // c_j, for the incentive model / senders

  int available() const { return capacity - assigned; }
};

/// Outcome of an assignment request.
struct Assignment {
  /// The chosen supernode, or kInvalidNode when the player connects
  /// directly to the cloud.
  NodeId supernode = kInvalidNode;
  /// Probed transmission delay (one-way ms) to the chosen supernode.
  TimeMs delay_ms = 0.0;
  /// Qualified-but-not-chosen supernodes, nearest first.
  std::vector<NodeId> backups;

  bool direct_to_cloud() const { return supernode == kInvalidNode; }
};

struct SupernodeManagerConfig {
  /// How many physically-close candidates the cloud returns for probing.
  std::size_t candidate_count = 8;
  /// Measurement noise of a delay probe (lognormal sigma; 0 = exact).
  double probe_jitter_sigma = 0.05;
  /// Find candidates via the geographic grid index (expanding-ring search)
  /// instead of scanning the whole roster. Both paths return exactly the
  /// same candidates in the same order; the flag exists so tests can cross
  /// check them and benchmarks can measure the difference.
  bool use_spatial_index = true;
};

/// The cloud's supernode table plus the assignment algorithm.
class SupernodeManager {
 public:
  SupernodeManager(const net::Topology& topology, SupernodeManagerConfig config,
                   util::Rng rng);

  /// Couples the directory to the segment-cache service: supernodes added
  /// after this call get a cache sized to their capacity, and departing
  /// supernodes release their cache state (entries freed, in-flight
  /// transcode/fetch jobs cancelled). Attach before any supernode is
  /// registered; the service must outlive this manager. Null detaches.
  void attach_cache(cache::EdgeCacheService* service);

  /// Registers a supernode (idempotent-checked: a host may register once).
  /// `host` must be a host of the topology — its coordinates feed the
  /// spatial index. With a cache service attached, also provisions the
  /// node's segment cache (capacity slots x kbit_per_slot).
  void add_supernode(NodeId host, int capacity, Kbps upload_kbps);

  /// Deregisters a supernode (paper: supernodes notify the central server
  /// before leaving). The caller must have reassigned (released) its
  /// players first — removing a supernode with assigned > 0 would strand
  /// session-layer slots, so it is checked. With a cache service attached,
  /// the node's cache state is released with it: entries freed, in-flight
  /// jobs cancelled — CF_CHECKed so no cache entry outlives its supernode.
  void remove_supernode(NodeId host);

  bool is_supernode(NodeId host) const {
    return host < slot_of_.size() && slot_of_[host] != kRecordSlotFree;
  }
  std::size_t supernode_count() const { return roster_.size(); }
  /// The host's directory record. The reference is valid until the next
  /// add_supernode (the slab may grow); copy before mutating the roster.
  const SupernodeRecord& record(NodeId host) const;
  /// Registered supernodes in insertion order. The reference stays valid
  /// until the next add/remove; copy before mutating or reordering.
  const std::vector<NodeId>& supernodes() const;

  /// Runs the Section III-A3 algorithm for `player` whose game tolerates at
  /// most `l_max_ms` one-way streaming delay. On success the chosen
  /// supernode's assigned count is incremented. The reference points at a
  /// scratch reused by the next assign() call (keeping the per-join backups
  /// vector off the heap) — read or copy it before assigning again.
  const Assignment& assign(NodeId player, TimeMs l_max_ms);

  /// Claims one capacity slot on a specific supernode — used by the
  /// session layer's backup failover, where candidate discovery has
  /// already happened. Requires spare capacity.
  void claim(NodeId supernode);

  /// Releases the player's slot on `supernode` (no-op for the cloud).
  void release(NodeId supernode);

  /// Total configured capacity across supernodes. O(1): maintained as a
  /// running sum (assign() publishes the assigned total per join, so a
  /// roster walk here would put an O(supernodes) term on the hot path).
  std::int64_t total_capacity() const { return total_capacity_; }
  /// Total currently assigned players. O(1), same running-sum scheme.
  std::int64_t total_assigned() const { return total_assigned_; }

 private:
  struct Probe {
    TimeMs delay;
    NodeId sn;
  };
  static constexpr std::uint32_t kRecordSlotFree = 0xffffffffu;

  /// Slab record for a registered host (CF_CHECKed).
  SupernodeRecord& rec_at(NodeId host);
  const SupernodeRecord& rec_at(NodeId host) const;

  const net::Topology& topology_;
  SupernodeManagerConfig config_;
  cache::EdgeCacheService* cache_ = nullptr;  // optional, not owned
  util::Rng rng_;
  // Directory records in a slab with a dense NodeId→slot map: lookups on
  // the assign/claim/release hot paths are two array indexes instead of a
  // hash-map walk. Free slots are recycled LIFO (record reuse is not
  // observable: every read goes through the id-keyed map).
  std::vector<SupernodeRecord> records_;
  std::vector<std::uint32_t> slot_of_;  // NodeId → records_ slot
  std::vector<std::uint32_t> free_slots_;
  std::int64_t total_capacity_ = 0;  // running sums over live records
  std::int64_t total_assigned_ = 0;
  std::vector<NodeId> roster_;  // insertion-ordered ids for determinism
  GeoGrid grid_;                // roster by position, for assign()
  // Scratch reused across assign() calls to keep the hot path free of
  // steady-state allocations.
  std::vector<std::pair<double, NodeId>> candidates_;
  std::vector<Probe> qualified_;
  Assignment assign_result_;
};

}  // namespace cloudfog::core
