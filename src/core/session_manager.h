// Dynamic session layer: player/supernode lifecycle over churn.
//
// Section III-A3 has each player record its backup supernodes, and requires
// supernodes to "notify the central server of game service providers before
// leaving the system". This module is the central server's session book:
//
//   * player joins   -> Section III-A3 assignment, backups recorded;
//   * player leaves  -> its supernode slot is released;
//   * supernode joins -> registered, immediately eligible;
//   * supernode leaves -> every affected player fails over to its first
//     still-qualified backup with spare capacity, falling back to a fresh
//     assignment and finally to the cloud (the paper's recovery story);
//   * rebalance()    -> the paper's Section-V future work, "cooperation
//     among supernodes": supernodes whose uplink demand exceeds a
//     utilization threshold shed their most recent players to backups
//     with headroom.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/supernode_manager.h"
#include "game/game.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::core {

struct SessionManagerConfig {
  /// Backups kept per session (the qualified-but-not-chosen candidates).
  std::size_t max_backups = 4;
  /// Use recorded backups when a supernode departs. Off = every affected
  /// player runs a fresh assignment (the ablation baseline).
  bool enable_failover = true;
  /// Enable the cooperation extension (overload shedding).
  bool enable_cooperation = false;
  /// rebalance() sheds players while a supernode's demand exceeds this
  /// fraction of its uplink.
  double shed_utilization = 0.9;
};

/// One player's active serving arrangement.
struct Session {
  NodeId player = kInvalidNode;
  game::GameId game = -1;
  /// Serving supernode, or kInvalidNode for direct-to-cloud.
  NodeId supernode = kInvalidNode;
  std::vector<NodeId> backups;      // nearest-first
  TimeMs stream_delay_ms = 0.0;     // probed delay to the serving supernode
  Kbps bitrate_kbps = 0.0;          // demand the session puts on its server

  bool on_cloud() const { return supernode == kInvalidNode; }
};

/// Outcome of a supernode departure.
struct FailoverReport {
  std::size_t players_affected = 0;
  std::size_t recovered_to_backup = 0;  // moved to a recorded backup
  std::size_t reassigned = 0;           // needed a fresh assignment
  std::size_t fell_to_cloud = 0;        // no supernode available
};

/// Outcome of a cooperation pass.
struct RebalanceReport {
  std::size_t overloaded_supernodes = 0;
  std::size_t players_moved = 0;
};

class SessionManager {
 public:
  SessionManager(const net::Topology& topology, SupernodeManagerConfig manager_config,
                 SessionManagerConfig config, util::Rng rng);

  // --- supernode lifecycle --------------------------------------------------
  void supernode_join(NodeId host, int capacity, Kbps uplink_kbps);
  /// Departure per the paper's protocol (notify-before-leave): affected
  /// players are recovered immediately. Returns what happened to them.
  FailoverReport supernode_leave(NodeId host);
  bool is_supernode(NodeId host) const { return manager_.is_supernode(host); }
  std::size_t supernode_count() const { return manager_.supernode_count(); }

  // --- player lifecycle -----------------------------------------------------
  /// Assigns a joining player (Section III-A3) and opens its session.
  const Session& player_join(NodeId player, game::GameId game);
  /// Closes the session, releasing any supernode slot.
  void player_leave(NodeId player);
  bool has_session(NodeId player) const { return sessions_.contains(player); }
  const Session& session(NodeId player) const;

  // --- cooperation extension -------------------------------------------------
  /// Sheds load from supernodes above the utilization threshold to their
  /// players' backups. No-op unless enable_cooperation.
  RebalanceReport rebalance();

  /// Demand currently placed on a supernode's uplink (kbps).
  Kbps demand_kbps(NodeId supernode) const;
  /// demand / uplink for a supernode.
  double utilization(NodeId supernode) const;

  std::size_t session_count() const { return sessions_.size(); }
  std::size_t cloud_sessions() const;
  std::size_t supernode_sessions() const { return session_count() - cloud_sessions(); }

  const SupernodeManager& manager() const { return manager_; }

 private:
  /// Moves a session onto `target` (capacity slot already taken by caller
  /// via manager). Updates indexes and demand.
  void attach(Session& s, NodeId target, TimeMs delay_ms);
  /// Detaches a session from its supernode (releases the slot).
  void detach(Session& s);
  /// Tries the session's recorded backups; returns the one attached to.
  /// With `respect_utilization`, backups above the shed threshold are
  /// skipped (used by rebalance() so shedding cannot ping-pong load).
  std::optional<NodeId> try_backups(Session& s, bool respect_utilization = false);

  const net::Topology& topology_;
  SupernodeManager manager_;
  SessionManagerConfig config_;
  util::Rng rng_;
  std::unordered_map<NodeId, Session> sessions_;           // by player
  std::unordered_map<NodeId, std::vector<NodeId>> served_; // supernode -> players
  std::unordered_map<NodeId, Kbps> demand_;                // supernode -> kbps
};

}  // namespace cloudfog::core
