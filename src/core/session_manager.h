// Dynamic session layer: player/supernode lifecycle over churn.
//
// Section III-A3 has each player record its backup supernodes, and requires
// supernodes to "notify the central server of game service providers before
// leaving the system". This module is the central server's session book:
//
//   * player joins   -> Section III-A3 assignment, backups recorded;
//   * player leaves  -> its supernode slot is released;
//   * supernode joins -> registered, immediately eligible;
//   * supernode leaves -> every affected player fails over to its first
//     still-qualified backup with spare capacity, falling back to a fresh
//     assignment and finally to the cloud (the paper's recovery story);
//   * rebalance()    -> the paper's Section-V future work, "cooperation
//     among supernodes": supernodes whose uplink demand exceeds a
//     utilization threshold shed their most recent players to backups
//     with headroom.
//
// Storage is the structure-of-arrays SessionStore (session_store.h,
// DESIGN.md §12): per-player state in slabs behind generation-tagged
// handles, intrusive per-supernode member lists, and an exact integer
// demand ledger. session()/player_join() therefore return a by-value
// Session snapshot — coherent at the call, not live-updating.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/session_store.h"
#include "core/supernode_manager.h"
#include "game/game.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::core {

struct SessionManagerConfig {
  /// Backups kept per session (the qualified-but-not-chosen candidates).
  /// At most BackupList::kMaxBackups — backup storage is inline.
  std::size_t max_backups = 4;
  /// Use recorded backups when a supernode departs. Off = every affected
  /// player runs a fresh assignment (the ablation baseline).
  bool enable_failover = true;
  /// Enable the cooperation extension (overload shedding).
  bool enable_cooperation = false;
  /// rebalance() sheds players while a supernode's demand exceeds this
  /// fraction of its uplink.
  double shed_utilization = 0.9;
};

/// Outcome of a supernode departure.
struct FailoverReport {
  std::size_t players_affected = 0;
  std::size_t recovered_to_backup = 0;  // moved to a recorded backup
  std::size_t reassigned = 0;           // needed a fresh assignment
  std::size_t fell_to_cloud = 0;        // no supernode available
};

/// Outcome of a cooperation pass.
struct RebalanceReport {
  std::size_t overloaded_supernodes = 0;
  std::size_t players_moved = 0;
};

class SessionManager {
 public:
  SessionManager(const net::Topology& topology, SupernodeManagerConfig manager_config,
                 SessionManagerConfig config, util::Rng rng);

  // --- supernode lifecycle --------------------------------------------------
  void supernode_join(NodeId host, int capacity, Kbps uplink_kbps);
  /// Departure per the paper's protocol (notify-before-leave): affected
  /// players are recovered immediately. Returns what happened to them.
  FailoverReport supernode_leave(NodeId host);
  bool is_supernode(NodeId host) const { return manager_.is_supernode(host); }
  std::size_t supernode_count() const { return manager_.supernode_count(); }

  // --- player lifecycle -----------------------------------------------------
  /// Assigns a joining player (Section III-A3) and opens its session.
  Session player_join(NodeId player, game::GameId game);
  /// Closes the session, releasing any supernode slot.
  void player_leave(NodeId player);
  bool has_session(NodeId player) const { return store_.contains(player); }
  Session session(NodeId player) const;
  /// Hot read of the player's serving state (supernode + probed delay)
  /// without assembling a Session snapshot — the per-segment bookkeeping
  /// shape. CF_CHECKs the session exists, like session().
  SessionStore::ServeState serve_state(NodeId player) const {
    return store_.serve_state(store_.index_of(player));
  }

  // --- cooperation extension -------------------------------------------------
  /// Sheds load from supernodes above the utilization threshold to their
  /// players' backups. No-op unless enable_cooperation.
  RebalanceReport rebalance();

  /// Demand currently placed on a supernode's uplink (kbps). Exact: always
  /// the sum of the attached sessions' bitrates (integer ledger underneath).
  Kbps demand_kbps(NodeId supernode) const { return store_.demand_kbps(supernode); }
  /// demand / uplink for a supernode.
  double utilization(NodeId supernode) const;

  std::size_t session_count() const { return store_.size(); }
  std::size_t cloud_sessions() const { return store_.cloud_count(); }
  std::size_t supernode_sessions() const { return store_.attached_count(); }

  const SupernodeManager& manager() const { return manager_; }
  /// The underlying slab store (occupancy / footprint introspection).
  const SessionStore& store() const { return store_; }

 private:
  /// Moves a session onto `target` (capacity slot already taken by caller
  /// via manager). Updates indexes and demand.
  void attach(SessionIdx idx, NodeId target, TimeMs delay_ms);
  /// Detaches a session from its supernode (releases the slot).
  void detach(SessionIdx idx);
  /// Tries the session's recorded backups; returns the one attached to.
  /// With `respect_utilization`, backups above the shed threshold are
  /// skipped (used by rebalance() so shedding cannot ping-pong load).
  std::optional<NodeId> try_backups(SessionIdx idx,
                                    bool respect_utilization = false);
  /// Records an assignment's backups (truncated to max_backups) inline.
  void record_backups(SessionIdx idx, const Assignment& a);

  const net::Topology& topology_;
  SupernodeManager manager_;
  SessionManagerConfig config_;
  util::Rng rng_;
  SessionStore store_;
  std::vector<NodeId> member_scratch_;  // supernode_leave / rebalance
};

}  // namespace cloudfog::core
