// Receiver-driven encoding rate adaptation — paper Section III-B,
// Equations (7)–(11).
//
// The player estimates its buffered-segment count
//     r = s(t_k) / tau                                  (Eq 8)
// (s(t) maintained by stream::ReceiverBuffer per Eq 7) and asks the
// supernode to step the encoding quality:
//     adjust up   when r > (1 + beta) / rho             (Eq 9, rho-scaled)
//     adjust down when r < theta / rho                  (Eq 11, rho-scaled)
// where beta is the maximum relative bitrate step between adjacent levels
// (Eq 10), theta the adjust-down threshold (paper default 0.5), and rho the
// game's latency tolerance degree — latency-sensitive games get stricter
// thresholds. To prevent bitrate flutter the controller only acts after the
// condition holds for a configurable number of consecutive estimates.
#pragma once

#include "game/game.h"
#include "game/quality.h"
#include "util/types.h"

namespace cloudfog::core {

struct RateAdaptationConfig {
  /// theta: adjust-down threshold (Eq 11). Paper default 0.5.
  double theta = 0.5;
  /// Consecutive satisfying estimates required before acting (the paper's
  /// anti-fluctuation rule; we map the paper's h_2 = 10 default here).
  int consecutive_estimates = 10;
};

/// Per-player controller. The caller feeds it buffered-segment estimates at
/// its estimation cadence; the controller steps the quality level.
class RateAdaptationController {
 public:
  enum class Decision { kHold, kUp, kDown };

  /// `initial_level` defaults to the game's target level (the level whose
  /// latency requirement matches the game — Figure 2).
  RateAdaptationController(const game::GameProfile& profile,
                           RateAdaptationConfig config, int initial_level = -1);

  /// Feeds one estimate of r (Eq 8) and applies Eqs (9)/(11). Returns the
  /// decision taken at this estimate (kHold if thresholds not yet met for
  /// the required consecutive count, or already at a level bound).
  Decision observe(double buffered_segments);

  /// The paper's Equation (7) estimator: advances the internal buffered-size
  /// estimate s(t_k) = s(t_k-1) + dt * (d - b_p), clamped to [0, 4 tau],
  /// computes r = s / tau (Eq 8) and runs one observe() step. This is the
  /// receiver-driven entry point harnesses use each estimation tick —
  /// rate-based, so lumpy segment arrivals don't defeat the debounce.
  Decision observe_rates(TimeMs dt_ms, Kbps download_kbps, Kbps playback_kbps,
                         Kbit tau_kbit);

  /// Current Eq (7) estimate (kbit). Starts at one tau after the first
  /// observe_rates call.
  Kbit estimated_buffer_kbit() const { return s_estimate_; }

  int level() const { return level_; }
  Kbps bitrate_kbps() const { return game::quality_for_level(level_).bitrate_kbps; }

  /// Highest level the controller will use: the game's target level — the
  /// paper never encodes above the level matching the game's latency
  /// requirement (Section III-B).
  int max_level() const { return max_level_; }

  /// (1 + beta) / rho — the effective adjust-up threshold on r.
  double up_threshold() const;
  /// theta / rho — the effective adjust-down threshold on r.
  double down_threshold() const;

  int consecutive_up() const { return up_count_; }
  int consecutive_down() const { return down_count_; }

 private:
  /// The Eqs (9)/(11) state machine; observe() wraps it with the
  /// quality-ladder bounds invariant.
  Decision observe_impl(double buffered_segments);

  game::GameProfile profile_;
  RateAdaptationConfig config_;
  int level_;
  int max_level_;
  int up_count_ = 0;
  int down_count_ = 0;
  Kbit s_estimate_ = 0.0;
  bool estimator_initialised_ = false;
};

}  // namespace cloudfog::core
