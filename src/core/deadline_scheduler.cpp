#include "core/deadline_scheduler.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::core {

void allocate_drops_into(const std::vector<double>& weights, int total,
                         std::vector<int>& out) {
  CF_CHECK_MSG(total >= 0, "drop total must be non-negative");
  out.assign(weights.size(), 0);
  double weight_sum = 0.0;
  for (double w : weights) {
    CF_CHECK_MSG(w >= 0.0, "drop weights must be non-negative");
    weight_sum += w;
  }
  if (weight_sum <= 0.0 || total == 0) return;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    out[k] = static_cast<int>(
        std::lround(weights[k] / weight_sum * static_cast<double>(total)));
  }
}

std::vector<int> allocate_drops(const std::vector<double>& weights, int total) {
  std::vector<int> out;
  allocate_drops_into(weights, total, out);
  return out;
}

int QueuedSegment::remaining_packets() const {
  return std::max(0, packet_total - dropped - next_packet);
}

Kbit QueuedSegment::remaining_kbit() const {
  // Live window is [next_packet, packet_total - dropped). Summing k full
  // packets then the tail reproduces the old front-to-back accumulation
  // exactly: the 12-kbit partial sums are exact integers, and the one
  // inexact operation (adding the sub-12 tail) happens last in both.
  const int live_end = packet_total - dropped;
  const int full_live =
      std::max(0, std::min(full_packets, live_end) - next_packet);
  Kbit total = stream::kPacketKbit * static_cast<double>(full_live);
  if (live_end > full_packets && next_packet <= full_packets)
    total += tail_kbit;
  return total;
}

int QueuedSegment::droppable() const {
  const int budget = static_cast<int>(std::floor(
      segment.loss_tolerance * static_cast<double>(packet_total)));
  const int available = std::min(budget - dropped, remaining_packets());
  return std::max(0, available);
}

QueuedSegment make_queued_segment(const stream::VideoSegment& segment,
                                  TimeMs now) {
  QueuedSegment qs;
  qs.segment = segment;
  qs.enqueued_ms = now;
  qs.packet_total = stream::packet_count(segment.size_kbit);
  if (qs.packet_total > 0) {
    // packetize() emits n-1 full packets then min(12, what's left): every
    // step's 12-kbit subtraction is exact (both operands sit on the same
    // binary grid), so the iterative remainder equals this closed form bit
    // for bit. ceil() guarantees the tail lands in (0, 12]; exactly 12
    // means the size divides evenly and every packet is full.
    const Kbit tail =
        segment.size_kbit -
        stream::kPacketKbit * static_cast<double>(qs.packet_total - 1);
    CF_INVARIANT(tail > 0.0, "packet_count over-counted the segment");
    if (tail >= stream::kPacketKbit) {
      qs.full_packets = qs.packet_total;
      qs.tail_kbit = 0.0;
    } else {
      qs.full_packets = qs.packet_total - 1;
      qs.tail_kbit = tail;
    }
  }
  return qs;
}

DeadlineScheduler::DeadlineScheduler(Kbps uplink_kbps,
                                     DeadlineSchedulerConfig config)
    : uplink_kbps_(uplink_kbps), config_(config) {
  CF_CHECK_GT(uplink_kbps, 0.0);
  CF_CHECK_GE(config.decay_lambda_per_s, 0.0);
  CF_CHECK_GE(config.propagation_history, std::size_t{1});
  CF_CHECK_GE(config.max_queue_segments, std::size_t{1});
}

bool DeadlineScheduler::enqueue(const stream::VideoSegment& segment, TimeMs now) {
  if (queue_.size() >= config_.max_queue_segments) {
    ++overflow_segments_;
    CF_OBS_COUNT("core.scheduler.segments_overflowed", 1);
    return false;
  }
  CF_OBS_COUNT("core.scheduler.segments_enqueued", 1);
  CF_OBS_GAUGE_SET("core.scheduler.queue_segments", queue_.size() + 1);
  QueuedSegment qs = make_queued_segment(segment, now);
  // Insert in ascending expected arrival time t_a (ties: earlier action,
  // then id, for determinism).
  const auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), qs,
      [](const QueuedSegment& a, const QueuedSegment& b) {
        if (a.segment.deadline_ms != b.segment.deadline_ms)
          return a.segment.deadline_ms < b.segment.deadline_ms;
        return a.segment.id < b.segment.id;
      });
  const std::size_t at = static_cast<std::size_t>(pos - queue_.begin());
  queue_.insert(pos, std::move(qs));
  // Trust boundary: the whole Eq (12)-(14) pass assumes ascending expected
  // arrival order; checking the inserted element's neighbours is O(1) and
  // transitively guards the full queue.
  CF_INVARIANT(at == 0 || queue_[at - 1].segment.deadline_ms <=
                              queue_[at].segment.deadline_ms,
               "sender queue must stay deadline-ordered (left neighbour)");
  CF_INVARIANT(at + 1 == queue_.size() ||
                   queue_[at].segment.deadline_ms <=
                       queue_[at + 1].segment.deadline_ms,
               "sender queue must stay deadline-ordered (right neighbour)");
  estimate_and_drop(now);
  return true;
}

std::size_t DeadlineScheduler::window_index_of(NodeId player) const {
  const auto it = std::lower_bound(
      propagation_.begin(), propagation_.end(), player,
      [](const auto& entry, NodeId key) { return entry.first < key; });
  if (it == propagation_.end() || it->first != player) return SIZE_MAX;
  return static_cast<std::size_t>(it - propagation_.begin());
}

const DeadlineScheduler::PropagationWindow* DeadlineScheduler::find_window(
    NodeId player) const {
  const std::size_t idx = window_index_of(player);
  return idx == SIZE_MAX ? nullptr : &propagation_[idx].second;
}

DeadlineScheduler::PropagationWindow& DeadlineScheduler::window_for(
    NodeId player) {
  if (last_window_ < propagation_.size() &&
      propagation_[last_window_].first == player)
    return propagation_[last_window_].second;
  const auto it = std::lower_bound(
      propagation_.begin(), propagation_.end(), player,
      [](const auto& entry, NodeId key) { return entry.first < key; });
  if (it != propagation_.end() && it->first == player) {
    last_window_ = static_cast<std::size_t>(it - propagation_.begin());
    return it->second;
  }
  const auto inserted = propagation_.emplace(it, player, PropagationWindow{});
  ++window_epoch_;  // indices shifted: every cached window_idx is now stale
  last_window_ = static_cast<std::size_t>(inserted - propagation_.begin());
  return inserted->second;
}

void DeadlineScheduler::record_propagation(NodeId player, TimeMs prop_ms) {
  CF_CHECK_MSG(prop_ms >= 0.0, "propagation delay must be non-negative");
  PropagationWindow& w = window_for(player);
  if (!w.full) {
    w.samples.reserve(config_.propagation_history);
    w.samples.push_back(prop_ms);
    w.full = w.samples.size() >= config_.propagation_history;
  } else {
    w.samples[w.next] = prop_ms;  // overwrite the oldest
    if (++w.next >= w.samples.size()) w.next = 0;
  }
  // Refresh the cached Eq (13) mean. Sum oldest-to-newest so it matches the
  // old deque's front-to-back accumulation bit for bit; the ring is walked
  // as its two contiguous spans — [next, count) then [0, next) — which is
  // the same element order without a division per sample. An incremental
  // (add-new, subtract-evicted) update would drift from that sum in the
  // low bits, so the window is re-summed in full.
  const std::size_t count = w.samples.size();
  double total = 0.0;
  for (std::size_t k = w.next; k < count; ++k) total += w.samples[k];
  for (std::size_t k = 0; k < w.next; ++k) total += w.samples[k];
  w.mean = total / static_cast<double>(count);
}

TimeMs DeadlineScheduler::estimated_propagation_ms(NodeId player) const {
  // Pure lookup: the mean is maintained by record_propagation. This probe
  // runs for every queued segment on every enqueue, so it must not re-walk
  // the sample window.
  const PropagationWindow* found = find_window(player);
  if (found == nullptr || found->samples.empty())
    return config_.default_propagation_ms;
  return found->mean;
}

TimeMs DeadlineScheduler::estimated_arrival_ms(std::size_t position,
                                               TimeMs now) const {
  CF_CHECK_LT(position, queue_.size());
  // l_q: bytes of all preceding segments; l_t: this segment's remaining
  // bytes; l_r + l_s have already elapsed (we work from `now`).
  Kbit preceding = 0.0;
  for (std::size_t k = 0; k < position; ++k) preceding += queue_[k].remaining_kbit();
  const Kbit own = queue_[position].remaining_kbit();
  const TimeMs l_q = transmission_ms(preceding, uplink_kbps_);
  const TimeMs l_t = transmission_ms(own, uplink_kbps_);
  const TimeMs l_p = estimated_propagation_ms(queue_[position].segment.player);
  return now + l_q + l_t + l_p;
}

int DeadlineScheduler::drop_from_segment(std::size_t k, int want) {
  QueuedSegment& qs = queue_[k];
  const int can = std::min(want, qs.droppable());
  int done = 0;
  // Drop from the tail: the last packets of a segment are the ones that
  // would arrive after the deadline. Dropped packets are always a suffix —
  // the first live-from-the-back index is packet_total - dropped - 1 — and
  // already-sent packets (index below next_packet) cannot be dropped.
  for (int j = 0; j < can; ++j) {
    const int index = qs.packet_total - qs.dropped - 1 - j;
    if (index < qs.next_packet) break;  // unreachable: can <= live packets
    ++done;
    if (on_drop_) on_drop_(qs.segment, index);
  }
  qs.dropped += done;
  total_dropped_ += static_cast<std::uint64_t>(done);
  CF_OBS_COUNT("core.scheduler.packets_dropped", done);
  // Trust boundary: Eq (14) must never overdraw a segment's loss-tolerance
  // budget — that is the paper's "still meeting their packet loss rate
  // requirements" guarantee.
  CF_INVARIANT(qs.dropped <= qs.packet_total,
               "cannot drop more packets than the segment holds");
  CF_INVARIANT(qs.droppable() >= 0, "loss-tolerance budget overdrawn");
  return done;
}

void DeadlineScheduler::estimate_and_drop(TimeMs now) {
  // sigma: mean latency shed by dropping one packet — one packet's
  // transmission time on this uplink.
  const TimeMs sigma = transmission_ms(stream::kPacketKbit, uplink_kbps_);
  if (sigma <= 0.0) return;

  // Walk the queue front-to-back keeping a running preceding-size total;
  // whenever a segment is predicted late, allocate drops per Eq (14).
  Kbit preceding = 0.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    QueuedSegment& entry = queue_[i];
    const Kbit own = entry.remaining_kbit();
    const TimeMs l_q = transmission_ms(preceding, uplink_kbps_);
    const TimeMs l_t = transmission_ms(own, uplink_kbps_);
    // Eq (13) estimate via the segment's window memo: one indexed load in
    // the common case, a binary search only after the window array grew.
    if (entry.window_epoch != window_epoch_) {
      entry.window_idx = window_index_of(entry.segment.player);
      entry.window_epoch = window_epoch_;
    }
    const TimeMs l_p = entry.window_idx == SIZE_MAX
                           ? config_.default_propagation_ms
                           : propagation_[entry.window_idx].second.mean;
    const TimeMs estimated_arrival = now + l_q + l_t + l_p;
    const TimeMs expected_arrival = queue_[i].segment.deadline_ms;

    if (estimated_arrival > expected_arrival) {
      // A predicted deadline miss (Eq 12): the drop pass below sheds load.
      CF_OBS_COUNT("core.scheduler.deadline_misses", 1);
      CF_OBS_HIST("core.scheduler.predicted_late_ms",
                  estimated_arrival - expected_arrival);
      const int needed = static_cast<int>(
          std::ceil((estimated_arrival - expected_arrival) / sigma));
      // Slack D_i is strictly positive inside this branch, so the ceil must
      // request at least one drop; zero would mean negative slack slipped in.
      CF_INVARIANT(needed >= 1, "late segment must need at least one drop");
      // Eq (14) weights over segments 0..i (scratch buffers keep their
      // high-water capacity, so this pass is allocation-free once warm).
      weights_scratch_.resize(i + 1);
      for (std::size_t k = 0; k <= i; ++k) {
        const double wait_s = (now - queue_[k].enqueued_ms) / 1000.0;
        const double phi = std::exp(-config_.decay_lambda_per_s * wait_s);
        weights_scratch_[k] = queue_[k].segment.loss_tolerance * phi;
      }
      // Proportional allocation (Eq 14), rounded; the tolerance budget caps
      // each segment's share inside drop_from_segment.
      allocate_drops_into(weights_scratch_, needed, shares_scratch_);
      int dropped_total = 0;
      for (std::size_t k = 0; k <= i && dropped_total < needed; ++k) {
        if (shares_scratch_[k] > 0)
          dropped_total += drop_from_segment(
              k, std::min(shares_scratch_[k], needed - dropped_total));
      }
      // Residual pass (rounding may under-allocate): take what tolerance
      // budgets still allow, earliest segments first.
      for (std::size_t k = 0; k <= i && dropped_total < needed; ++k) {
        dropped_total += drop_from_segment(k, needed - dropped_total);
      }
    }
    preceding += queue_[i].remaining_kbit();
  }
}

std::optional<DeadlineScheduler::NextPacket> DeadlineScheduler::pop_packet(
    TimeMs now) {
  CF_CHECK_GE(now, 0.0);  // a negative clock is always a caller bug
  while (!queue_.empty()) {
    QueuedSegment& head = queue_.front();
    // Dropped packets are a suffix, so a next_packet at or past the live
    // window's end means nothing is left to send: retire the segment.
    if (head.next_packet >= head.packet_total - head.dropped) {
      queue_.erase(queue_.begin());
      continue;
    }
    NextPacket out;
    out.packet.segment_id = head.segment.id;
    out.packet.index = head.next_packet;
    out.packet.size_kbit = head.packet_kbit(head.next_packet);
    out.packet.deadline_ms = head.segment.deadline_ms;
    out.player = head.segment.player;
    out.game = head.segment.game;
    out.segment_action_ms = head.segment.action_time_ms;
    out.delivery_tag = head.segment.delivery_tag;
    ++head.next_packet;
    // Retire the segment if that was its last live packet.
    if (head.next_packet >= head.packet_total - head.dropped)
      queue_.erase(queue_.begin());
    return out;
  }
  return std::nullopt;
}

std::vector<DeadlineScheduler::PendingSegment> DeadlineScheduler::drain_pending() {
  std::vector<PendingSegment> out;
  out.reserve(queue_.size());
  for (const QueuedSegment& qs : queue_) {
    CF_INVARIANT(qs.next_packet + qs.dropped <= qs.packet_total,
                 "queued segment over-consumed its packet budget");
    const int live = qs.remaining_packets();
    if (live <= 0) continue;
    out.push_back(PendingSegment{qs.segment, live, qs.remaining_kbit()});
  }
  queue_.clear();
  return out;
}

bool DeadlineScheduler::empty() const {
  for (const auto& qs : queue_)
    if (qs.remaining_packets() > 0) return false;
  return true;
}

std::size_t DeadlineScheduler::queued_packets() const {
  std::size_t total = 0;
  for (const auto& qs : queue_)
    total += static_cast<std::size_t>(qs.remaining_packets());
  return total;
}

}  // namespace cloudfog::core
