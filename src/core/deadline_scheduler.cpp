#include "core/deadline_scheduler.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::core {

std::vector<int> allocate_drops(const std::vector<double>& weights, int total) {
  CF_CHECK_MSG(total >= 0, "drop total must be non-negative");
  std::vector<int> out(weights.size(), 0);
  double weight_sum = 0.0;
  for (double w : weights) {
    CF_CHECK_MSG(w >= 0.0, "drop weights must be non-negative");
    weight_sum += w;
  }
  if (weight_sum <= 0.0 || total == 0) return out;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    out[k] = static_cast<int>(
        std::lround(weights[k] / weight_sum * static_cast<double>(total)));
  }
  return out;
}

int QueuedSegment::remaining_packets() const {
  int n = 0;
  for (std::size_t i = static_cast<std::size_t>(next_packet); i < packets.size(); ++i)
    if (!packets[i].dropped) ++n;
  return n;
}

Kbit QueuedSegment::remaining_kbit() const {
  Kbit total = 0.0;
  for (std::size_t i = static_cast<std::size_t>(next_packet); i < packets.size(); ++i)
    if (!packets[i].dropped) total += packets[i].size_kbit;
  return total;
}

int QueuedSegment::droppable() const {
  const int budget = static_cast<int>(std::floor(
      segment.loss_tolerance * static_cast<double>(packets.size())));
  const int available = std::min(budget - dropped, remaining_packets());
  return std::max(0, available);
}

DeadlineScheduler::DeadlineScheduler(Kbps uplink_kbps,
                                     DeadlineSchedulerConfig config)
    : uplink_kbps_(uplink_kbps), config_(config) {
  CF_CHECK_GT(uplink_kbps, 0.0);
  CF_CHECK_GE(config.decay_lambda_per_s, 0.0);
  CF_CHECK_GE(config.propagation_history, std::size_t{1});
  CF_CHECK_GE(config.max_queue_segments, std::size_t{1});
}

bool DeadlineScheduler::enqueue(const stream::VideoSegment& segment, TimeMs now) {
  if (queue_.size() >= config_.max_queue_segments) {
    ++overflow_segments_;
    CF_OBS_COUNT("core.scheduler.segments_overflowed", 1);
    return false;
  }
  CF_OBS_COUNT("core.scheduler.segments_enqueued", 1);
  CF_OBS_GAUGE_SET("core.scheduler.queue_segments", queue_.size() + 1);
  QueuedSegment qs;
  qs.segment = segment;
  qs.enqueued_ms = now;
  qs.packets = stream::packetize(segment);
  // Insert in ascending expected arrival time t_a (ties: earlier action,
  // then id, for determinism).
  const auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), qs,
      [](const QueuedSegment& a, const QueuedSegment& b) {
        if (a.segment.deadline_ms != b.segment.deadline_ms)
          return a.segment.deadline_ms < b.segment.deadline_ms;
        return a.segment.id < b.segment.id;
      });
  const std::size_t at = static_cast<std::size_t>(pos - queue_.begin());
  queue_.insert(pos, std::move(qs));
  // Trust boundary: the whole Eq (12)-(14) pass assumes ascending expected
  // arrival order; checking the inserted element's neighbours is O(1) and
  // transitively guards the full queue.
  CF_INVARIANT(at == 0 || queue_[at - 1].segment.deadline_ms <=
                              queue_[at].segment.deadline_ms,
               "sender queue must stay deadline-ordered (left neighbour)");
  CF_INVARIANT(at + 1 == queue_.size() ||
                   queue_[at].segment.deadline_ms <=
                       queue_[at + 1].segment.deadline_ms,
               "sender queue must stay deadline-ordered (right neighbour)");
  estimate_and_drop(now);
  return true;
}

void DeadlineScheduler::record_propagation(NodeId player, TimeMs prop_ms) {
  CF_CHECK_MSG(prop_ms >= 0.0, "propagation delay must be non-negative");
  auto& history = propagation_[player];
  history.push_back(prop_ms);
  while (history.size() > config_.propagation_history) history.pop_front();
}

TimeMs DeadlineScheduler::estimated_propagation_ms(NodeId player) const {
  const auto it = propagation_.find(player);
  if (it == propagation_.end() || it->second.empty())
    return config_.default_propagation_ms;
  double total = 0.0;
  for (TimeMs v : it->second) total += v;
  return total / static_cast<double>(it->second.size());
}

TimeMs DeadlineScheduler::estimated_arrival_ms(std::size_t position,
                                               TimeMs now) const {
  CF_CHECK_LT(position, queue_.size());
  // l_q: bytes of all preceding segments; l_t: this segment's remaining
  // bytes; l_r + l_s have already elapsed (we work from `now`).
  Kbit preceding = 0.0;
  for (std::size_t k = 0; k < position; ++k) preceding += queue_[k].remaining_kbit();
  const Kbit own = queue_[position].remaining_kbit();
  const TimeMs l_q = transmission_ms(preceding, uplink_kbps_);
  const TimeMs l_t = transmission_ms(own, uplink_kbps_);
  const TimeMs l_p = estimated_propagation_ms(queue_[position].segment.player);
  return now + l_q + l_t + l_p;
}

int DeadlineScheduler::drop_from_segment(std::size_t k, int want) {
  QueuedSegment& qs = queue_[k];
  const int can = std::min(want, qs.droppable());
  int done = 0;
  // Drop from the tail: the last packets of a segment are the ones that
  // would arrive after the deadline. Already-sent packets (index below
  // next_packet) cannot be dropped.
  for (int i = static_cast<int>(qs.packets.size()) - 1;
       i >= qs.next_packet && done < can; --i) {
    auto& p = qs.packets[static_cast<std::size_t>(i)];
    if (!p.dropped) {
      p.dropped = true;
      ++done;
      if (on_drop_) on_drop_(qs.segment.id, p.index);
    }
  }
  qs.dropped += done;
  total_dropped_ += static_cast<std::uint64_t>(done);
  CF_OBS_COUNT("core.scheduler.packets_dropped", done);
  // Trust boundary: Eq (14) must never overdraw a segment's loss-tolerance
  // budget — that is the paper's "still meeting their packet loss rate
  // requirements" guarantee.
  CF_INVARIANT(qs.dropped <= static_cast<int>(qs.packets.size()),
               "cannot drop more packets than the segment holds");
  CF_INVARIANT(qs.droppable() >= 0, "loss-tolerance budget overdrawn");
  return done;
}

void DeadlineScheduler::estimate_and_drop(TimeMs now) {
  // sigma: mean latency shed by dropping one packet — one packet's
  // transmission time on this uplink.
  const TimeMs sigma = transmission_ms(stream::kPacketKbit, uplink_kbps_);
  if (sigma <= 0.0) return;

  // Walk the queue front-to-back keeping a running preceding-size total;
  // whenever a segment is predicted late, allocate drops per Eq (14).
  Kbit preceding = 0.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Kbit own = queue_[i].remaining_kbit();
    const TimeMs l_q = transmission_ms(preceding, uplink_kbps_);
    const TimeMs l_t = transmission_ms(own, uplink_kbps_);
    const TimeMs l_p = estimated_propagation_ms(queue_[i].segment.player);
    const TimeMs estimated_arrival = now + l_q + l_t + l_p;
    const TimeMs expected_arrival = queue_[i].segment.deadline_ms;

    if (estimated_arrival > expected_arrival) {
      // A predicted deadline miss (Eq 12): the drop pass below sheds load.
      CF_OBS_COUNT("core.scheduler.deadline_misses", 1);
      CF_OBS_HIST("core.scheduler.predicted_late_ms",
                  estimated_arrival - expected_arrival);
      const int needed = static_cast<int>(
          std::ceil((estimated_arrival - expected_arrival) / sigma));
      // Slack D_i is strictly positive inside this branch, so the ceil must
      // request at least one drop; zero would mean negative slack slipped in.
      CF_INVARIANT(needed >= 1, "late segment must need at least one drop");
      // Eq (14) weights over segments 0..i.
      std::vector<double> weights(i + 1, 0.0);
      for (std::size_t k = 0; k <= i; ++k) {
        const double wait_s = (now - queue_[k].enqueued_ms) / 1000.0;
        const double phi = std::exp(-config_.decay_lambda_per_s * wait_s);
        weights[k] = queue_[k].segment.loss_tolerance * phi;
      }
      // Proportional allocation (Eq 14), rounded; the tolerance budget caps
      // each segment's share inside drop_from_segment.
      const std::vector<int> shares = allocate_drops(weights, needed);
      int dropped_total = 0;
      for (std::size_t k = 0; k <= i && dropped_total < needed; ++k) {
        if (shares[k] > 0)
          dropped_total +=
              drop_from_segment(k, std::min(shares[k], needed - dropped_total));
      }
      // Residual pass (rounding may under-allocate): take what tolerance
      // budgets still allow, earliest segments first.
      for (std::size_t k = 0; k <= i && dropped_total < needed; ++k) {
        dropped_total += drop_from_segment(k, needed - dropped_total);
      }
    }
    preceding += queue_[i].remaining_kbit();
  }
}

std::optional<DeadlineScheduler::NextPacket> DeadlineScheduler::pop_packet(
    TimeMs now) {
  CF_CHECK_GE(now, 0.0);  // a negative clock is always a caller bug
  while (!queue_.empty()) {
    QueuedSegment& head = queue_.front();
    // Skip dropped packets.
    while (head.next_packet < static_cast<int>(head.packets.size()) &&
           head.packets[static_cast<std::size_t>(head.next_packet)].dropped) {
      ++head.next_packet;
    }
    if (head.next_packet >= static_cast<int>(head.packets.size())) {
      queue_.pop_front();
      continue;
    }
    NextPacket out;
    out.packet = head.packets[static_cast<std::size_t>(head.next_packet)];
    out.player = head.segment.player;
    out.game = head.segment.game;
    out.segment_action_ms = head.segment.action_time_ms;
    ++head.next_packet;
    // Retire the segment if that was its last live packet.
    bool any_left = false;
    for (std::size_t i = static_cast<std::size_t>(head.next_packet);
         i < head.packets.size(); ++i) {
      if (!head.packets[i].dropped) {
        any_left = true;
        break;
      }
    }
    if (!any_left) queue_.pop_front();
    return out;
  }
  return std::nullopt;
}

bool DeadlineScheduler::empty() const {
  for (const auto& qs : queue_)
    if (qs.remaining_packets() > 0) return false;
  return true;
}

std::size_t DeadlineScheduler::queued_packets() const {
  std::size_t total = 0;
  for (const auto& qs : queue_)
    total += static_cast<std::size_t>(qs.remaining_packets());
  return total;
}

}  // namespace cloudfog::core
