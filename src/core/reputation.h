// Supernode reputation — the paper's Section-V future work ("dealing with
// malicious supernodes").
//
// The cloud already relays every player's action and observes supernode
// behaviour indirectly; players can additionally report delivery outcomes.
// This module keeps a per-supernode Beta-Bernoulli reputation over such
// reports with exponential forgetting:
//
//   score = (good + prior_good) / (good + bad + prior_good + prior_bad)
//
// where good/bad decay by `forgetting` per report window, so a compromised
// node's history cannot shield it forever and a recovered node can earn its
// way back. A supernode is flagged for eviction once its score drops below
// the threshold with enough observations to be confident.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace cloudfog::core {

struct ReputationConfig {
  /// Beta prior — optimistic start (a vetted contributor).
  double prior_good = 8.0;
  double prior_bad = 2.0;
  /// Evict below this score (honest nodes with a few % background failures
  /// sit near 0.95; a 30%-sabotage node converges to ~0.70)...
  double eviction_threshold = 0.80;
  /// ...but only after this many observations (confidence gate).
  std::uint64_t min_observations = 30;
  /// Multiplicative decay applied to accumulated counts per report —
  /// bounds the effective memory to ~1/(1-forgetting) reports.
  double forgetting = 0.995;
};

/// Per-supernode reputation ledger.
class ReputationSystem {
 public:
  explicit ReputationSystem(ReputationConfig config = {});

  /// Records one delivery outcome for `supernode`: `ok` means the packet
  /// (or segment) arrived on time and intact.
  void report(NodeId supernode, bool ok);

  /// Current score in (0, 1); unseen supernodes get the prior mean.
  double score(NodeId supernode) const;

  /// Observations accumulated (decayed count, rounded down).
  std::uint64_t observations(NodeId supernode) const;

  /// True when the supernode should be removed from the roster.
  bool should_evict(NodeId supernode) const;

  /// All tracked supernodes currently below the eviction bar.
  std::vector<NodeId> evictions() const;

  /// Forgets a supernode entirely (e.g. after re-vetting).
  void reset(NodeId supernode);

  std::size_t tracked() const { return ledger_.size(); }

 private:
  struct Entry {
    double good = 0.0;
    double bad = 0.0;
    std::uint64_t reports = 0;
  };

  ReputationConfig config_;
  std::unordered_map<NodeId, Entry> ledger_;
};

}  // namespace cloudfog::core
