#include "core/session_manager.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::core {

SessionManager::SessionManager(const net::Topology& topology,
                               SupernodeManagerConfig manager_config,
                               SessionManagerConfig config, util::Rng rng)
    : topology_(topology),
      manager_(topology, manager_config, rng.fork("manager")),
      config_(config),
      rng_(rng) {
  CF_CHECK_MSG(config.shed_utilization > 0.0, "shed threshold must be positive");
}

void SessionManager::supernode_join(NodeId host, int capacity, Kbps uplink_kbps) {
  manager_.add_supernode(host, capacity, uplink_kbps);
}

void SessionManager::attach(Session& s, NodeId target, TimeMs delay_ms) {
  s.supernode = target;
  s.stream_delay_ms = delay_ms;
  served_[target].push_back(s.player);
  demand_[target] += s.bitrate_kbps;
}

void SessionManager::detach(Session& s) {
  if (s.on_cloud()) return;
  auto& list = served_[s.supernode];
  list.erase(std::remove(list.begin(), list.end(), s.player), list.end());
  demand_[s.supernode] -= s.bitrate_kbps;
  if (demand_[s.supernode] < 0.0) demand_[s.supernode] = 0.0;
  manager_.release(s.supernode);
  s.supernode = kInvalidNode;
  s.stream_delay_ms = 0.0;
}

const Session& SessionManager::player_join(NodeId player, game::GameId game) {
  CF_CHECK_MSG(!sessions_.contains(player), "player already has a session");
  const game::GameProfile& profile = game::game_by_id(game);
  Session s;
  s.player = player;
  s.game = game;
  s.bitrate_kbps =
      game::quality_for_level(profile.target_quality_level).bitrate_kbps;

  const Assignment a = manager_.assign(player, profile.latency_requirement_ms);
  if (!a.direct_to_cloud()) {
    s.backups.assign(
        a.backups.begin(),
        a.backups.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(a.backups.size(), config_.max_backups)));
    attach(s, a.supernode, a.delay_ms);
  }
  auto [it, inserted] = sessions_.emplace(player, std::move(s));
  CF_DCHECK(inserted);
  return it->second;
}

void SessionManager::player_leave(NodeId player) {
  auto it = sessions_.find(player);
  CF_CHECK_MSG(it != sessions_.end(), "player has no session");
  detach(it->second);
  sessions_.erase(it);
}

const Session& SessionManager::session(NodeId player) const {
  auto it = sessions_.find(player);
  CF_CHECK_MSG(it != sessions_.end(), "player has no session");
  return it->second;
}

std::optional<NodeId> SessionManager::try_backups(Session& s,
                                                  bool respect_utilization) {
  const game::GameProfile& profile = game::game_by_id(s.game);
  for (NodeId backup : s.backups) {
    if (!manager_.is_supernode(backup)) continue;  // backup itself left
    if (manager_.record(backup).available() <= 0) continue;
    if (respect_utilization &&
        (utilization(backup) + s.bitrate_kbps /
                                   manager_.record(backup).upload_kbps) >
            config_.shed_utilization) {
      continue;  // would just overload the neighbour
    }
    // Re-probe: the cached qualification may be stale.
    const TimeMs delay = topology_.expected_server_one_way_ms(backup, s.player);
    if (delay > profile.latency_requirement_ms) continue;
    // Claim the slot through the manager's bookkeeping: a direct targeted
    // claim keeps the Assignment path single-purpose.
    // (assign() would re-run candidate discovery; the backup list IS the
    // discovered candidate set, so we take the slot directly.)
    manager_.claim(backup);
    attach(s, backup, delay);
    return backup;
  }
  return std::nullopt;
}

FailoverReport SessionManager::supernode_leave(NodeId host) {
  CF_CHECK_MSG(manager_.is_supernode(host), "unknown supernode");
  FailoverReport report;

  // Collect affected players first: recovery mutates served_.
  std::vector<NodeId> affected;
  if (auto it = served_.find(host); it != served_.end()) affected = it->second;
  report.players_affected = affected.size();

  // Release every affected session's slot, then remove the supernode so
  // recovery cannot pick it again.
  for (NodeId player : affected) detach(sessions_.at(player));
  served_.erase(host);
  demand_.erase(host);
  manager_.remove_supernode(host);

  for (NodeId player : affected) {
    Session& s = sessions_.at(player);
    if (config_.enable_failover) {
      if (try_backups(s).has_value()) {
        ++report.recovered_to_backup;
        continue;
      }
    }
    // Fresh Section III-A3 assignment.
    const game::GameProfile& profile = game::game_by_id(s.game);
    const Assignment a =
        manager_.assign(s.player, profile.latency_requirement_ms);
    if (!a.direct_to_cloud()) {
      s.backups.assign(
          a.backups.begin(),
          a.backups.begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(a.backups.size(), config_.max_backups)));
      attach(s, a.supernode, a.delay_ms);
      ++report.reassigned;
    } else {
      ++report.fell_to_cloud;
    }
  }
  return report;
}

Kbps SessionManager::demand_kbps(NodeId supernode) const {
  const auto it = demand_.find(supernode);
  return it == demand_.end() ? 0.0 : it->second;
}

double SessionManager::utilization(NodeId supernode) const {
  const Kbps uplink = manager_.record(supernode).upload_kbps;
  return uplink > 0.0 ? demand_kbps(supernode) / uplink : 0.0;
}

std::size_t SessionManager::cloud_sessions() const {
  std::size_t n = 0;
  for (const auto& [player, s] : sessions_)
    if (s.on_cloud()) ++n;
  return n;
}

RebalanceReport SessionManager::rebalance() {
  RebalanceReport report;
  if (!config_.enable_cooperation) return report;

  // Deterministic iteration: supernodes in id order.
  std::vector<NodeId> supernodes = manager_.supernodes();
  std::sort(supernodes.begin(), supernodes.end());
  for (NodeId sn : supernodes) {
    if (utilization(sn) <= config_.shed_utilization) continue;
    ++report.overloaded_supernodes;
    // Shed most-recently attached players first (they have the least
    // session history to disrupt) while over the threshold.
    auto players = served_[sn];  // copy: attach/detach mutates the list
    for (auto it = players.rbegin();
         it != players.rend() && utilization(sn) > config_.shed_utilization;
         ++it) {
      Session& s = sessions_.at(*it);
      detach(s);
      if (try_backups(s, /*respect_utilization=*/true).has_value()) {
        ++report.players_moved;
      } else {
        // No headroom anywhere: put the player back where it was (the slot
        // is still free — we just released it).
        manager_.claim(sn);
        attach(s, sn, topology_.expected_server_one_way_ms(sn, s.player));
        break;  // nothing else will fit either
      }
    }
  }
  return report;
}

}  // namespace cloudfog::core
