#include "core/session_manager.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::core {

SessionManager::SessionManager(const net::Topology& topology,
                               SupernodeManagerConfig manager_config,
                               SessionManagerConfig config, util::Rng rng)
    : topology_(topology),
      manager_(topology, manager_config, rng.fork("manager")),
      config_(config),
      rng_(rng) {
  CF_CHECK_MSG(config.shed_utilization > 0.0, "shed threshold must be positive");
  CF_CHECK_MSG(config.max_backups <= BackupList::kMaxBackups,
               "max_backups exceeds the inline backup capacity");
}

void SessionManager::supernode_join(NodeId host, int capacity, Kbps uplink_kbps) {
  manager_.add_supernode(host, capacity, uplink_kbps);
  store_.register_server(host);
}

void SessionManager::attach(SessionIdx idx, NodeId target, TimeMs delay_ms) {
  store_.attach(idx, target, delay_ms);
}

void SessionManager::detach(SessionIdx idx) {
  const NodeId supernode = store_.supernode(idx);
  if (supernode == kInvalidNode) return;
  store_.detach(idx);
  manager_.release(supernode);
}

void SessionManager::record_backups(SessionIdx idx, const Assignment& a) {
  BackupList& backups = store_.mutable_backups(idx);
  backups.clear();
  const std::size_t n = std::min(a.backups.size(), config_.max_backups);
  for (std::size_t i = 0; i < n; ++i) backups.push_back(a.backups[i]);
}

Session SessionManager::player_join(NodeId player, game::GameId game) {
  CF_CHECK_MSG(!store_.contains(player), "player already has a session");
  const game::GameProfile& profile = game::game_by_id(game);
  const Kbps bitrate =
      game::quality_for_level(profile.target_quality_level).bitrate_kbps;

  // By reference: the manager's reusable scratch, valid until the next
  // assign() (none happens before the reads below).
  const Assignment& a = manager_.assign(player, profile.latency_requirement_ms);
  const SessionIdx idx = store_.open(player, game, bitrate);
  if (!a.direct_to_cloud()) {
    record_backups(idx, a);
    attach(idx, a.supernode, a.delay_ms);
  }
  return store_.snapshot(idx);
}

void SessionManager::player_leave(NodeId player) {
  const SessionIdx idx = store_.index_of(player);
  CF_CHECK_MSG(idx.valid(), "player has no session");
  detach(idx);
  store_.close(idx);
}

Session SessionManager::session(NodeId player) const {
  const SessionIdx idx = store_.index_of(player);
  CF_CHECK_MSG(idx.valid(), "player has no session");
  return store_.snapshot(idx);
}

std::optional<NodeId> SessionManager::try_backups(SessionIdx idx,
                                                 bool respect_utilization) {
  const game::GameProfile& profile = game::game_by_id(store_.game(idx));
  const NodeId player = store_.player(idx);
  const Kbps bitrate = store_.bitrate_kbps(idx);
  for (NodeId backup : store_.backups(idx)) {
    if (!manager_.is_supernode(backup)) continue;  // backup itself left
    if (manager_.record(backup).available() <= 0) continue;
    if (respect_utilization &&
        (utilization(backup) + bitrate / manager_.record(backup).upload_kbps) >
            config_.shed_utilization) {
      continue;  // would just overload the neighbour
    }
    // Re-probe: the cached qualification may be stale.
    const TimeMs delay = topology_.expected_server_one_way_ms(backup, player);
    if (delay > profile.latency_requirement_ms) continue;
    // Claim the slot through the manager's bookkeeping: a direct targeted
    // claim keeps the Assignment path single-purpose.
    // (assign() would re-run candidate discovery; the backup list IS the
    // discovered candidate set, so we take the slot directly.)
    manager_.claim(backup);
    attach(idx, backup, delay);
    return backup;
  }
  return std::nullopt;
}

FailoverReport SessionManager::supernode_leave(NodeId host) {
  CF_CHECK_MSG(manager_.is_supernode(host), "unknown supernode");
  FailoverReport report;

  // Materialize the affected players first (attach order): recovery
  // mutates the intrusive member list.
  store_.members(host, member_scratch_);
  const std::vector<NodeId>& affected = member_scratch_;
  report.players_affected = affected.size();

  // Release every affected session's slot, then remove the supernode so
  // recovery cannot pick it again.
  for (NodeId player : affected) detach(store_.index_of(player));
  store_.unregister_server(host);
  manager_.remove_supernode(host);

  for (NodeId player : affected) {
    const SessionIdx idx = store_.index_of(player);
    if (config_.enable_failover) {
      if (try_backups(idx).has_value()) {
        ++report.recovered_to_backup;
        continue;
      }
    }
    // Fresh Section III-A3 assignment.
    const game::GameProfile& profile = game::game_by_id(store_.game(idx));
    const Assignment& a =
        manager_.assign(player, profile.latency_requirement_ms);
    if (!a.direct_to_cloud()) {
      record_backups(idx, a);
      attach(idx, a.supernode, a.delay_ms);
      ++report.reassigned;
    } else {
      ++report.fell_to_cloud;
    }
  }
  return report;
}

double SessionManager::utilization(NodeId supernode) const {
  const Kbps uplink = manager_.record(supernode).upload_kbps;
  return uplink > 0.0 ? demand_kbps(supernode) / uplink : 0.0;
}

RebalanceReport SessionManager::rebalance() {
  RebalanceReport report;
  if (!config_.enable_cooperation) return report;

  // Deterministic iteration: supernodes in id order.
  std::vector<NodeId> supernodes = manager_.supernodes();
  std::sort(supernodes.begin(), supernodes.end());
  for (NodeId sn : supernodes) {
    if (utilization(sn) <= config_.shed_utilization) continue;
    ++report.overloaded_supernodes;
    // Shed most-recently attached players first (they have the least
    // session history to disrupt) while over the threshold.
    // Materialized copy: attach/detach mutates the intrusive list.
    store_.members(sn, member_scratch_);
    const std::vector<NodeId>& players = member_scratch_;
    for (auto it = players.rbegin();
         it != players.rend() && utilization(sn) > config_.shed_utilization;
         ++it) {
      const SessionIdx idx = store_.index_of(*it);
      detach(idx);
      if (try_backups(idx, /*respect_utilization=*/true).has_value()) {
        ++report.players_moved;
      } else {
        // No headroom anywhere: put the player back where it was (the slot
        // is still free — we just released it).
        manager_.claim(sn);
        attach(idx, sn, topology_.expected_server_one_way_ms(sn, *it));
        break;  // nothing else will fit either
      }
    }
  }
  return report;
}

}  // namespace cloudfog::core
