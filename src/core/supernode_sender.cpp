#include "core/supernode_sender.h"

#include "cache/edge_cache_service.h"
#include "util/check.h"

namespace cloudfog::core {

SupernodeSender::SupernodeSender(sim::Simulator& sim, Kbps uplink_kbps,
                                 Discipline discipline,
                                 DeadlineSchedulerConfig scheduler_config,
                                 PropagationFn propagation, DeliveryFn on_delivery,
                                 util::Rng rng)
    : sim_(sim),
      uplink_kbps_(uplink_kbps),
      discipline_(discipline),
      scheduler_(uplink_kbps, scheduler_config),
      propagation_(std::move(propagation)),
      on_delivery_(std::move(on_delivery)),
      rng_(rng) {
  CF_CHECK_MSG(uplink_kbps > 0.0, "uplink rate must be positive");
  CF_CHECK_MSG(static_cast<bool>(propagation_), "propagation sampler required");
  CF_CHECK_MSG(static_cast<bool>(on_delivery_), "delivery observer required");
}

void SupernodeSender::submit(const stream::VideoSegment& segment) {
  CF_CHECK_MSG(segment.size_kbit > 0.0, "segment size must be positive");
  if (cache_service_ != nullptr) {
    // Source the content first; the segment joins the uplink queue when it
    // exists locally (immediately on a hit, after the modelled delay for a
    // transcode or cloud fetch).
    cache_service_->request(cache_self_, segment,
                            [this, segment] { enqueue_ready(segment); });
    return;
  }
  enqueue_ready(segment);
}

void SupernodeSender::attach_segment_cache(cache::EdgeCacheService* service,
                                           NodeId self) {
  CF_CHECK_MSG(service != nullptr, "attach needs a cache service");
  CF_CHECK_MSG(service->has_supernode(self),
               "this supernode is not registered with the cache service");
  CF_CHECK_MSG(packets_submitted_ == 0,
               "attach the cache before the first submit");
  cache_service_ = service;
  cache_self_ = self;
}

void SupernodeSender::enqueue_ready(const stream::VideoSegment& segment) {
  packets_submitted_ +=
      static_cast<std::uint64_t>(stream::packet_count(segment.size_kbit));
  if (discipline_ == Discipline::kDeadline) {
    scheduler_.enqueue(segment, sim_.now());
  } else {
    for (const stream::Packet& p : stream::packetize(segment)) {
      fifo_.push_back(
          FifoPacket{p, segment.player, segment.game, segment.action_time_ms});
    }
  }
  pump();
}

std::uint64_t SupernodeSender::packets_dropped() const {
  return discipline_ == Discipline::kDeadline ? scheduler_.total_dropped_packets()
                                              : 0;
}

void SupernodeSender::pump() {
  if (transmitting_) return;
  FifoPacket item;
  if (discipline_ == Discipline::kDeadline) {
    auto next = scheduler_.pop_packet(sim_.now());
    if (!next) return;
    item.packet = next->packet;
    item.player = next->player;
    item.game = next->game;
    item.action_ms = next->segment_action_ms;
  } else {
    if (fifo_.empty()) return;
    item = fifo_.front();
    fifo_.pop_front();
  }
  transmitting_ = true;
  const TimeMs tx = transmission_ms(item.packet.size_kbit, uplink_kbps_);
  sim_.schedule_after(tx, [this, item] { on_transmit_done(item); });
}

void SupernodeSender::on_transmit_done(const FifoPacket& item) {
  transmitting_ = false;
  ++packets_sent_;
  // Network loss: the packet left the uplink but never reaches the player.
  if (loss_ && rng_.bernoulli(loss_(item.player))) {
    ++packets_lost_;
    PacketDelivery d;
    d.player = item.player;
    d.game = item.game;
    d.segment_id = item.packet.segment_id;
    d.packet_index = item.packet.index;
    d.size_kbit = item.packet.size_kbit;
    d.action_ms = item.action_ms;
    d.deadline_ms = item.packet.deadline_ms;
    d.sent_ms = sim_.now();
    d.lost = true;
    on_delivery_(d);
    pump();
    return;
  }
  TimeMs prop = propagation_(item.player, rng_);
  if (rate_cap_) {
    const Kbps cap = rate_cap_(item.player);
    if (cap > 0.0 && cap < uplink_kbps_) {
      // WAN bottleneck transit: the packet trickles through the slow hop.
      prop += transmission_ms(item.packet.size_kbit, cap) -
              transmission_ms(item.packet.size_kbit, uplink_kbps_);
    }
  }
  PacketDelivery d;
  d.player = item.player;
  d.game = item.game;
  d.segment_id = item.packet.segment_id;
  d.packet_index = item.packet.index;
  d.size_kbit = item.packet.size_kbit;
  d.action_ms = item.action_ms;
  d.deadline_ms = item.packet.deadline_ms;
  d.sent_ms = sim_.now();
  d.arrival_ms = sim_.now() + prop;
  // Feed the Eq (13) propagation history (as if acknowledged).
  scheduler_.record_propagation(item.player, prop);
  on_delivery_(d);
  pump();
}

}  // namespace cloudfog::core
