#include "core/supernode_sender.h"

#include <algorithm>
#include <utility>

#include "cache/edge_cache_service.h"
#include "util/check.h"

namespace cloudfog::core {

SupernodeSender::SupernodeSender(sim::Simulator& sim, Kbps uplink_kbps,
                                 Discipline discipline,
                                 DeadlineSchedulerConfig scheduler_config,
                                 PropagationFn propagation, DeliveryFn on_delivery,
                                 util::Rng rng)
    : sim_(&sim),
      uplink_kbps_(uplink_kbps),
      discipline_(discipline),
      scheduler_(uplink_kbps, scheduler_config),
      propagation_(std::move(propagation)),
      on_delivery_(std::move(on_delivery)),
      rng_(rng) {
  CF_CHECK_MSG(uplink_kbps > 0.0, "uplink rate must be positive");
  CF_CHECK_MSG(static_cast<bool>(propagation_), "propagation sampler required");
  CF_CHECK_MSG(static_cast<bool>(on_delivery_), "delivery observer required");
}

void SupernodeSender::set_burst_limit(std::size_t limit) {
  CF_CHECK_GE(limit, std::size_t{1});
  burst_limit_ = limit;
}

void SupernodeSender::submit(const stream::VideoSegment& segment) {
  CF_CHECK_MSG(segment.size_kbit > 0.0, "segment size must be positive");
  if (cache_service_ != nullptr) {
    // Source the content first; the segment joins the uplink queue when it
    // exists locally (immediately on a hit, after the modelled delay for a
    // transcode or cloud fetch).
    cache_service_->request(cache_self_, segment,
                            [this, segment] { enqueue_ready(segment); });
    return;
  }
  enqueue_ready(segment);
}

void SupernodeSender::attach_segment_cache(cache::EdgeCacheService* service,
                                           NodeId self) {
  CF_CHECK_MSG(service != nullptr, "attach needs a cache service");
  CF_CHECK_MSG(service->has_supernode(self),
               "this supernode is not registered with the cache service");
  CF_CHECK_MSG(packets_submitted_ == 0,
               "attach the cache before the first submit");
  cache_service_ = service;
  cache_self_ = self;
}

void SupernodeSender::enqueue_ready(const stream::VideoSegment& segment) {
  packets_submitted_ +=
      static_cast<std::uint64_t>(stream::packet_count(segment.size_kbit));
  if (discipline_ == Discipline::kDeadline) {
    scheduler_.enqueue(segment, sim_->now());
  } else {
    fifo_push(make_queued_segment(segment, sim_->now()));
  }
  pump();
}

std::uint64_t SupernodeSender::packets_dropped() const {
  return discipline_ == Discipline::kDeadline ? scheduler_.total_dropped_packets()
                                              : 0;
}

std::vector<DeadlineScheduler::PendingSegment> SupernodeSender::drain_pending() {
  if (discipline_ == Discipline::kDeadline) return scheduler_.drain_pending();
  CF_INVARIANT(fifo_count_ <= fifo_buf_.size(),
               "FIFO ring count exceeds its storage");
  std::vector<DeadlineScheduler::PendingSegment> out;
  out.reserve(fifo_count_);
  for (std::size_t k = 0; k < fifo_count_; ++k) {
    const QueuedSegment& qs = fifo_buf_[(fifo_head_ + k) % fifo_buf_.size()];
    const int live = qs.remaining_packets();
    if (live <= 0) continue;
    out.push_back(DeadlineScheduler::PendingSegment{qs.segment, live,
                                                    qs.remaining_kbit()});
  }
  fifo_head_ = 0;
  fifo_count_ = 0;
  return out;
}

void SupernodeSender::fifo_push(QueuedSegment qs) {
  if (fifo_count_ == fifo_buf_.size()) {
    // Grow the ring (unwrapping head to 0); amortised, and never on the
    // steady-state path once the backlog's high-water mark is reached.
    const std::size_t old_cap = fifo_buf_.size();
    std::vector<QueuedSegment> next(std::max<std::size_t>(8, old_cap * 2));
    for (std::size_t k = 0; k < fifo_count_; ++k)
      next[k] = std::move(fifo_buf_[(fifo_head_ + k) % old_cap]);
    fifo_buf_ = std::move(next);
    fifo_head_ = 0;
  }
  fifo_buf_[(fifo_head_ + fifo_count_) % fifo_buf_.size()] = std::move(qs);
  ++fifo_count_;
}

bool SupernodeSender::fifo_pop(FifoPacket& out) {
  while (fifo_count_ > 0) {
    QueuedSegment& head = fifo_buf_[fifo_head_];
    if (head.next_packet >= head.packet_total) {
      fifo_head_ = (fifo_head_ + 1) % fifo_buf_.size();
      --fifo_count_;
      continue;
    }
    out.packet.segment_id = head.segment.id;
    out.packet.index = head.next_packet;
    out.packet.size_kbit = head.packet_kbit(head.next_packet);
    out.packet.deadline_ms = head.segment.deadline_ms;
    out.packet.dropped = false;
    out.player = head.segment.player;
    out.game = head.segment.game;
    out.action_ms = head.segment.action_time_ms;
    out.delivery_tag = head.segment.delivery_tag;
    ++head.next_packet;
    if (head.next_packet >= head.packet_total) {
      fifo_head_ = (fifo_head_ + 1) % fifo_buf_.size();
      --fifo_count_;
    }
    return true;
  }
  return false;
}

bool SupernodeSender::pop_next(FifoPacket& out, TimeMs clock) {
  if (discipline_ == Discipline::kDeadline) {
    auto next = scheduler_.pop_packet(clock);
    if (!next) return false;
    out.packet = next->packet;
    out.player = next->player;
    out.game = next->game;
    out.action_ms = next->segment_action_ms;
    out.delivery_tag = next->delivery_tag;
    return true;
  }
  return fifo_pop(out);
}

void SupernodeSender::pump() {
  if (transmitting_) return;
  // A submit is often one of several at this timestamp (an engine tick
  // fans out a whole batch), and the later ones are invisible to both the
  // event-queue peek and the run horizon — so no inline completion here.
  // Pop one packet and arm its completion event, exactly the old
  // per-packet path; the burst train runs from that event, where every
  // same-time submit is already in the queue.
  FifoPacket item;
  if (!pop_next(item, sim_->now())) return;
  transmitting_ = true;
  const TimeMs done =
      sim_->now() + transmission_ms(item.packet.size_kbit, uplink_kbps_);
  sim_->schedule_at(done, [this, item] {
    const TimeMs at = sim_->now();
    complete(item, at);
    run_train(at);
  });
}

void SupernodeSender::run_train(TimeMs clock) {
  std::size_t inline_completions = 0;
  for (;;) {
    FifoPacket item;
    if (!pop_next(item, clock)) {
      transmitting_ = false;
      return;
    }
    transmitting_ = true;
    const TimeMs done =
        clock + transmission_ms(item.packet.size_kbit, uplink_kbps_);
    // Break the train whenever any sim event lands at or before this
    // packet's completion: that event may mutate the queue (a submit, a
    // churn drain), so the next pop decision must wait for it. The peek is
    // a conservative lower bound — a tombstone can only break the train
    // early, which re-arms and re-checks, never reorders anything. Past the
    // run horizon the heap says nothing about future inputs (a direct
    // submit() from driver code between run_*() calls, a cross-shard
    // message delivered at the next window barrier), so the train arms a
    // real event there and lets the heap decide the interleaving — outside
    // any run loop the horizon is -infinity and every packet takes the
    // one-event-per-packet path.
    if (done > sim_->run_horizon() || sim_->next_event_time() <= done ||
        inline_completions + 1 >= burst_limit_) {
      sim_->schedule_at(done, [this, item] {
        const TimeMs at = sim_->now();
        complete(item, at);
        run_train(at);
      });
      return;
    }
    complete(item, done);
    ++inline_completions;
    clock = done;
  }
}

void SupernodeSender::complete(const FifoPacket& item, TimeMs at) {
  ++packets_sent_;
  // Network loss: the packet left the uplink but never reaches the player.
  if (loss_ && rng_.bernoulli(loss_(item.player, item.delivery_tag))) {
    ++packets_lost_;
    PacketDelivery d;
    d.player = item.player;
    d.game = item.game;
    d.segment_id = item.packet.segment_id;
    d.packet_index = item.packet.index;
    d.size_kbit = item.packet.size_kbit;
    d.action_ms = item.action_ms;
    d.deadline_ms = item.packet.deadline_ms;
    d.sent_ms = at;
    d.lost = true;
    d.delivery_tag = item.delivery_tag;
    on_delivery_(d);
    return;
  }
  TimeMs prop = propagation_(item.player, rng_);
  if (rate_cap_) {
    const Kbps cap = rate_cap_(item.player, item.delivery_tag);
    if (cap > 0.0 && cap < uplink_kbps_) {
      // WAN bottleneck transit: the packet trickles through the slow hop.
      prop += transmission_ms(item.packet.size_kbit, cap) -
              transmission_ms(item.packet.size_kbit, uplink_kbps_);
    }
  }
  PacketDelivery d;
  d.player = item.player;
  d.game = item.game;
  d.segment_id = item.packet.segment_id;
  d.packet_index = item.packet.index;
  d.size_kbit = item.packet.size_kbit;
  d.action_ms = item.action_ms;
  d.deadline_ms = item.packet.deadline_ms;
  d.sent_ms = at;
  d.arrival_ms = at + prop;
  d.delivery_tag = item.delivery_tag;
  // Feed the Eq (13) propagation history (as if acknowledged).
  scheduler_.record_propagation(item.player, prop);
  on_delivery_(d);
}

}  // namespace cloudfog::core
