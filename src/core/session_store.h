// Structure-of-arrays session slab — the million-player hot state behind
// SessionManager (DESIGN.md §12).
//
// The session book used to be three unordered_maps (player→Session with a
// heap-allocated backups vector inside, supernode→served-players vector
// erased by linear scan, supernode→demand double accumulated by subtraction).
// That layout tops out at PlanetLab-scale rosters: every lookup chases map
// buckets, every session costs two heap blocks, every player_leave scans its
// supernode's member vector, and demand drifts away from the sum of its
// parts under long churn.
//
// This store keeps the same observable behaviour in parallel arrays:
//
//   * sessions live in SoA slabs indexed by a generation-tagged SessionIdx
//     (slot reuse invalidates stale handles, caught by the gen check);
//   * a dense NodeId→SessionIdx handle array replaces the player map;
//   * backups are inline fixed-capacity (kMaxBackups) — no per-session heap;
//   * per-supernode membership is an intrusive doubly-linked list threaded
//     through the slabs in *attach order* (order is load-bearing: failover
//     processes members in attach order, which drives RNG consumption);
//   * demand is an exact integer millikbps ledger. Attach/detach add and
//     subtract integers, so demand is always exactly the sum of the attached
//     sessions' bitrates — no float drift, CF_INVARIANT-backed.
//
// Exactness contract: a bitrate enters the ledger only if it round-trips
// kbps → millikbps → kbps bit-identically (CF_CHECKed in to_millikbps).
// Catalog bitrates are integral kbps, so demand_kbps() returns the exact
// double the old += accumulation produced.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "game/game.h"
#include "util/check.h"
#include "util/types.h"

namespace cloudfog::core {

inline constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

/// Generation-tagged handle into the session slab. Valid until the session
/// closes; reusing a slot bumps its generation so stale handles are caught.
struct SessionIdx {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;

  bool valid() const { return slot != kInvalidSlot; }
  friend bool operator==(const SessionIdx& a, const SessionIdx& b) {
    return a.slot == b.slot && a.gen == b.gen;
  }
};

/// Inline fixed-capacity backup list (nearest-first). Sized so a Session
/// needs no heap: the paper records a handful of qualified-but-not-chosen
/// candidates, and SessionManagerConfig::max_backups is checked against
/// kMaxBackups at construction.
class BackupList {
 public:
  static constexpr std::size_t kMaxBackups = 4;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](std::size_t i) const {
    CF_DCHECK(i < size_);
    return ids_[i];
  }
  const NodeId* begin() const { return ids_.data(); }
  const NodeId* end() const { return ids_.data() + size_; }

  void clear() { size_ = 0; }
  void push_back(NodeId id) {
    CF_CHECK_MSG(size_ < kMaxBackups, "backup list is full");
    ids_[size_++] = id;
  }

 private:
  std::array<NodeId, kMaxBackups> ids_{};
  std::uint32_t size_ = 0;
};

/// One player's active serving arrangement — a by-value snapshot of the
/// store's row. Reads are coherent at the call; later mutations of the
/// store do not update an already-taken snapshot.
struct Session {
  NodeId player = kInvalidNode;
  game::GameId game = -1;
  /// Serving supernode, or kInvalidNode for direct-to-cloud.
  NodeId supernode = kInvalidNode;
  BackupList backups;            // nearest-first
  TimeMs stream_delay_ms = 0.0;  // probed delay to the serving supernode
  Kbps bitrate_kbps = 0.0;       // demand the session puts on its server

  bool on_cloud() const { return supernode == kInvalidNode; }
};

/// The SoA slab store. Pure data structure: no assignment policy, no RNG —
/// SessionManager drives it. Servers (supernodes) must be registered before
/// sessions attach to them and may only unregister once empty.
class SessionStore {
 public:
  /// Hot columns read together on every serving-state query: one 16-byte
  /// load after the handle lookup. The read shape of a live service (per-
  /// segment QoE bookkeeping) wants exactly these two fields, so they are
  /// exposed without assembling a full Session snapshot.
  struct ServeState {
    NodeId supernode = kInvalidNode;
    TimeMs delay_ms = 0.0;

    bool on_cloud() const { return supernode == kInvalidNode; }
  };

  SessionStore() = default;

  // --- demand ledger units --------------------------------------------------
  /// kbps → exact integer millikbps. CF_CHECKs the round-trip is
  /// bit-identical (the ledger exactness contract).
  static std::int64_t to_millikbps(Kbps kbps);
  static Kbps from_millikbps(std::int64_t mkbps) {
    return static_cast<double>(mkbps) / 1000.0;
  }

  // --- session lifecycle ----------------------------------------------------
  bool contains(NodeId player) const {
    return player < handle_.size() && handle_[player].valid();
  }
  /// Opens a session in the direct-to-cloud state. The player must not
  /// already have one.
  SessionIdx open(NodeId player, game::GameId game, Kbps bitrate_kbps);
  /// Closes a session. Must be detached (on cloud) first — the caller owns
  /// the server-slot release protocol.
  void close(SessionIdx idx);
  /// The live handle for a player, or an invalid one.
  SessionIdx index_of(NodeId player) const {
    return player < handle_.size() ? handle_[player] : SessionIdx{};
  }

  std::size_t size() const { return live_; }
  std::size_t attached_count() const { return attached_; }
  std::size_t cloud_count() const { return live_ - attached_; }

  // --- row access (generation-checked) --------------------------------------
  NodeId player(SessionIdx idx) const { return player_[checked(idx)]; }
  game::GameId game(SessionIdx idx) const { return game_[checked(idx)]; }
  NodeId supernode(SessionIdx idx) const {
    return serve_[checked(idx)].supernode;
  }
  bool on_cloud(SessionIdx idx) const {
    return serve_[checked(idx)].supernode == kInvalidNode;
  }
  TimeMs stream_delay_ms(SessionIdx idx) const {
    return serve_[checked(idx)].delay_ms;
  }
  /// The packed hot pair (serving supernode, probed delay) in one read.
  ServeState serve_state(SessionIdx idx) const { return serve_[checked(idx)]; }
  Kbps bitrate_kbps(SessionIdx idx) const {
    return from_millikbps(bitrate_mkbps_[checked(idx)]);
  }
  const BackupList& backups(SessionIdx idx) const {
    return backups_[checked(idx)];
  }
  BackupList& mutable_backups(SessionIdx idx) { return backups_[checked(idx)]; }
  Session snapshot(SessionIdx idx) const;

  // --- server registry + membership + demand --------------------------------
  void register_server(NodeId server);
  /// CF_CHECKs the server has no attached sessions (and therefore, by the
  /// ledger invariant, zero demand).
  void unregister_server(NodeId server);
  bool server_registered(NodeId server) const {
    return server < server_slot_of_.size() &&
           server_slot_of_[server] != kInvalidSlot;
  }

  /// Appends the session to the server's member list tail (attach order is
  /// preserved — it is observable through failover processing order) and
  /// adds its bitrate to the server's demand ledger.
  void attach(SessionIdx idx, NodeId server, TimeMs delay_ms);
  /// Unlinks the session from its server (O(1)) and subtracts its bitrate
  /// from the ledger. No-op for a cloud session.
  void detach(SessionIdx idx);

  std::int64_t demand_millikbps(NodeId server) const;
  Kbps demand_kbps(NodeId server) const {
    return from_millikbps(demand_millikbps(server));
  }
  std::size_t member_count(NodeId server) const;
  /// Fills `out` (cleared first) with the server's members in attach order.
  void members(NodeId server, std::vector<NodeId>& out) const;

  // --- occupancy / footprint (bench + obs) ----------------------------------
  std::size_t slot_capacity() const { return serve_.size(); }
  /// Live sessions per handle-array slot (the dense map's load factor).
  double handle_load_factor() const {
    return handle_.empty()
               ? 0.0
               : static_cast<double>(live_) / static_cast<double>(handle_.size());
  }
  /// Bytes reserved across every array of the store (capacity, not size —
  /// what the process actually holds). The bench reports this / players.
  std::size_t bytes_reserved() const;

 private:
  struct ServerEntry {
    NodeId server = kInvalidNode;  // kInvalidNode = slot free
    std::uint32_t head = kInvalidSlot;
    std::uint32_t tail = kInvalidSlot;
    std::uint32_t count = 0;
    std::int64_t demand_mkbps = 0;
  };

  std::uint32_t checked(SessionIdx idx) const {
    CF_CHECK_MSG(idx.slot < gen_.size() && gen_[idx.slot] == idx.gen,
                 "stale or invalid session handle");
    return idx.slot;
  }
  std::uint32_t server_slot(NodeId server) const;
  std::uint32_t alloc_slot();

  // Session slabs (parallel arrays indexed by slot).
  std::vector<ServeState> serve_;
  std::vector<NodeId> player_;
  std::vector<game::GameId> game_;
  std::vector<std::int64_t> bitrate_mkbps_;
  std::vector<BackupList> backups_;
  std::vector<std::uint32_t> gen_;
  // Intrusive links: the member list of the serving supernode while
  // attached; next_ doubles as the free-list thread while the slot is free.
  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> next_;
  std::uint32_t free_head_ = kInvalidSlot;

  // Dense player → handle map (players get small dense NodeIds).
  std::vector<SessionIdx> handle_;

  // Server slab + dense NodeId → server-slot map.
  std::vector<ServerEntry> servers_;
  std::vector<std::uint32_t> server_slot_of_;
  std::vector<std::uint32_t> server_free_;

  std::size_t live_ = 0;
  std::size_t attached_ = 0;
};

}  // namespace cloudfog::core
