// Geographic grid index for deterministic nearest-k queries over a mutable
// node set — the spatial index behind SupernodeManager::assign.
//
// Members are bucketed into lat/lon cells of `cell_deg` degrees. A query
// walks cells in expanding Chebyshev rings around the query point and keeps
// a sorted bound of the k best (distance_km, id) pairs seen so far. The walk
// stops once every unvisited ring is provably farther than the current k-th
// best, using a conservative haversine lower bound for "any point at least
// (r-1) cells away"; the bound is capped by the smallest *wrapped*
// longitude gap the roster's raw extent permits, so queries over rosters
// straddling the antimeridian stay exact (they fall back to an unpruned
// envelope walk). Distances are the exact same haversine_km doubles a
// brute-force scan would compute (via the precomputed-cos overload, which is
// bit-identical), and ties are broken by ascending id — so the result is
// element-for-element identical to sorting all members by (distance, id)
// and truncating to k. See DESIGN.md §8 for the determinism argument.
//
// Million-roster scaling (DESIGN.md §12): the fixed 2° cell assumption is
// gone. Three mechanisms keep queries fast from a dozen members to tens of
// thousands, none of which changes any query result:
//
//   * cells live in a dense table covering the ever-inserted envelope
//     (direct indexing instead of a hash find per visited cell — ring
//     walks touch hundreds of mostly-empty cells);
//   * the cell size is density-adaptive: when the hottest cell exceeds
//     kSplitOccupancy members, the grid halves cell_deg (power-of-two
//     fractions of the configured size) and rebuilds, bounded by a minimum
//     cell size and a kMaxTableCells envelope-table budget;
//   * within a cell, members are kept sorted by (latitude, id) and scanned
//     outward from the query latitude with a rigorous pruning bound
//     (central angle >= |delta lat|, with the same 0.999 margin the ring
//     prune uses), so a metro cell holding hundreds of co-located members
//     costs ~k exact distances instead of a full scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/geo.h"
#include "util/types.h"

namespace cloudfog::core {

class GeoGrid {
 public:
  /// `cell_deg` is the *coarsest* cell size (2° ~ 220 km at the equator
  /// suits continental rosters); the grid refines it by powers of two as
  /// density demands.
  explicit GeoGrid(double cell_deg = 2.0);

  /// Adds a member. Ids must be unique; positions are captured by value and
  /// treated as immutable until the member is removed.
  void insert(NodeId id, const net::GeoPoint& position);

  /// Removes a previously inserted member.
  void remove(NodeId id);

  std::size_t size() const { return size_; }
  /// Current (possibly refined) cell size in degrees.
  double cell_deg() const { return cell_deg_; }

  /// Fills `out` (cleared first) with the min(k, size) nearest members in
  /// ascending (haversine_km(from, member), id) order — identical to a full
  /// brute-force sort.
  void nearest_k(const net::GeoPoint& from, std::size_t k,
                 std::vector<std::pair<double, NodeId>>& out) const;

  /// As above with cos(from's latitude) already in hand. `from_cos_lat`
  /// MUST be net::cos_lat(from) (e.g. the precomputed Host::cos_lat) so
  /// every haversine stays bit-identical to the one-shot overload.
  void nearest_k(const net::GeoPoint& from, double from_cos_lat,
                 std::size_t k,
                 std::vector<std::pair<double, NodeId>>& out) const;

 private:
  struct Member {
    NodeId id = kInvalidNode;
    net::GeoPoint position;
    double cos_lat = 1.0;
  };

  /// Hottest-cell occupancy above which the grid refines. Keyed to the
  /// hottest cell rather than the mean: clustered rosters (metro placement)
  /// concentrate most members into a handful of cells, which a mean over
  /// occupied cells never sees.
  static constexpr std::size_t kSplitOccupancy = 24;
  /// Refinement floor (base / 64; 2° base -> ~3.5 km cells).
  static constexpr double kMinCellDegFactor = 1.0 / 64.0;
  /// Envelope-table budget: refinement stops (and envelope growth coarsens)
  /// before the dense cell table would exceed this many cells.
  static constexpr std::size_t kMaxTableCells = std::size_t{1} << 20;
  /// Cells at most this full use the plain linear scan; larger cells use
  /// the latitude-sorted pruned scan.
  static constexpr std::size_t kSortedScanCutoff = 16;
  /// table_index sentinel: the cell lies outside the envelope table (and is
  /// therefore empty).
  static constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

  std::int32_t cell_coord(double deg) const;
  void scan_cell(std::int32_t cx, std::int32_t cy, const net::GeoPoint& from,
                 double from_cos_lat, std::size_t k,
                 std::vector<std::pair<double, NodeId>>& out) const;
  static void consider(const Member& m, const net::GeoPoint& from,
                       double from_cos_lat, std::size_t k,
                       std::vector<std::pair<double, NodeId>>& out);

  /// Dense-table index for a raw cell coordinate, or kNoCell when the cell
  /// lies outside the ever-inserted envelope.
  std::size_t table_index(std::int32_t cx, std::int32_t cy) const;
  /// Envelope cell count at a hypothetical cell size (budget checks).
  std::size_t table_cells_for(double cell_deg) const;
  /// Re-derives the envelope cell coordinates from the degree extremes at
  /// the current cell size.
  void refresh_envelope_cells();
  /// Rebuilds the dense table to the current envelope + cell size and
  /// re-buckets every member.
  void rebucket();
  /// Called when an insert expands the envelope: coarsens the cell size if
  /// the grown table would bust the budget, then rebuilds.
  void fit_table();
  /// Halves cell_deg while the occupancy trigger holds and the floor +
  /// budget allow, re-bucketing every member.
  void maybe_refine();
  void insert_into_cell(const Member& m, std::int32_t cx, std::int32_t cy);

  double base_cell_deg_;
  double cell_deg_;
  // Dense cell table over the ever-inserted envelope: cells_[table_index].
  // Cell members are sorted by (position.lat_deg, id).
  std::vector<std::vector<Member>> cells_;
  // One bit per table cell (set = non-empty). Ring walks probe hundreds of
  // mostly-empty cells; the bitmap answers those probes from a few cache
  // lines instead of a scattered vector-header load each.
  std::vector<std::uint64_t> occ_;
  std::int32_t table_min_cx_ = 1, table_max_cx_ = 0;  // empty until insert
  std::int32_t table_min_cy_ = 1, table_max_cy_ = 0;
  std::size_t table_width_ = 0;
  std::size_t occupied_cells_ = 0;
  /// Size of the fullest cell ever seen at the current cell size (exact
  /// after a rebucket, a monotone overestimate under removals — harmless:
  /// refinement is result-neutral, so a stale-high value can only refine
  /// earlier than strictly needed).
  std::size_t hottest_cell_ = 0;
  // Member directory (positions are what remove() needs to find the cell;
  // cell coordinates would go stale across refinements).
  std::unordered_map<NodeId, net::GeoPoint> member_pos_;
  std::size_t size_ = 0;

  // Monotone envelope over every member EVER inserted (never shrunk on
  // remove): the ring walk and the longitude term of the distance bound stay
  // conservative without tracking exact extrema under churn. The envelope is
  // tracked in *raw degrees* and its cell coordinates re-derived whenever
  // the cell size changes.
  bool ever_inserted_ = false;
  double min_cos_lat_ = 1.0;
  double min_lat_ = 0.0, max_lat_ = 0.0;
  double min_lon_ = 0.0, max_lon_ = 0.0;
  std::int32_t min_cx_ = 0, max_cx_ = 0, min_cy_ = 0, max_cy_ = 0;
};

}  // namespace cloudfog::core
