// Geographic grid index for deterministic nearest-k queries over a mutable
// node set — the spatial index behind SupernodeManager::assign.
//
// Members are bucketed into lat/lon cells of `cell_deg` degrees. A query
// walks cells in expanding Chebyshev rings around the query point and keeps
// a sorted bound of the k best (distance_km, id) pairs seen so far. The walk
// stops once every unvisited ring is provably farther than the current k-th
// best, using a conservative haversine lower bound for "any point at least
// (r-1) cells away"; the bound is capped by the smallest *wrapped*
// longitude gap the roster's raw extent permits, so queries over rosters
// straddling the antimeridian stay exact (they fall back to an unpruned
// envelope walk). Distances are the exact same haversine_km doubles a
// brute-force scan would compute (via the precomputed-cos overload, which is
// bit-identical), and ties are broken by ascending id — so the result is
// element-for-element identical to sorting all members by (distance, id)
// and truncating to k. See DESIGN.md §8 for the determinism argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/geo.h"
#include "util/types.h"

namespace cloudfog::core {

class GeoGrid {
 public:
  /// `cell_deg` trades ring-walk granularity against bucket occupancy;
  /// 2° cells (~220 km at the equator) suit continental-US rosters.
  explicit GeoGrid(double cell_deg = 2.0);

  /// Adds a member. Ids must be unique; positions are captured by value and
  /// treated as immutable until the member is removed.
  void insert(NodeId id, const net::GeoPoint& position);

  /// Removes a previously inserted member.
  void remove(NodeId id);

  std::size_t size() const { return size_; }

  /// Fills `out` (cleared first) with the min(k, size) nearest members in
  /// ascending (haversine_km(from, member), id) order — identical to a full
  /// brute-force sort.
  void nearest_k(const net::GeoPoint& from, std::size_t k,
                 std::vector<std::pair<double, NodeId>>& out) const;

 private:
  struct Member {
    NodeId id = kInvalidNode;
    net::GeoPoint position;
    double cos_lat = 1.0;
  };
  using CellKey = std::uint64_t;

  std::int32_t cell_coord(double deg) const;
  static CellKey cell_key(std::int32_t cx, std::int32_t cy);
  void scan_cell(std::int32_t cx, std::int32_t cy, const net::GeoPoint& from,
                 double from_cos_lat, std::size_t k,
                 std::vector<std::pair<double, NodeId>>& out) const;

  double cell_deg_;
  std::unordered_map<CellKey, std::vector<Member>> cells_;
  std::unordered_map<NodeId, CellKey> member_cell_;
  std::size_t size_ = 0;

  // Monotone envelope over every member EVER inserted (never shrunk on
  // remove): the ring walk and the longitude term of the distance bound stay
  // conservative without tracking exact extrema under churn.
  bool ever_inserted_ = false;
  double min_cos_lat_ = 1.0;
  std::int32_t min_cx_ = 0, max_cx_ = 0, min_cy_ = 0, max_cy_ = 0;
};

}  // namespace cloudfog::core
