// Aggregated CloudFog defaults — one place holding every paper parameter.
//
// Paper Section IV defaults: theta = 0.5, lambda = 1, h_1 = 100, h_2 = 10.
// The paper does not spell out h_1/h_2; we adopt the natural reading used
// throughout this codebase (documented in DESIGN.md):
//   h_1 = sender buffer capacity in segments (DeadlineSchedulerConfig
//         ::max_queue_segments),
//   h_2 = history/estimation window length (propagation samples m of Eq 13
//         and the consecutive-estimate count of the adaptation debounce).
#pragma once

#include "core/deadline_scheduler.h"
#include "core/incentive.h"
#include "core/rate_adaptation.h"
#include "core/supernode_manager.h"

namespace cloudfog::core {

struct CloudFogConfig {
  RateAdaptationConfig adaptation{};          // theta = 0.5, 10 estimates
  DeadlineSchedulerConfig scheduler{};        // lambda = 1, m = 10, 100 segments
  SupernodeManagerConfig supernode_manager{}; // 8 candidates per assignment
  IncentiveParams incentives{};

  /// Builds the paper's Section-IV default configuration.
  static CloudFogConfig defaults() { return CloudFogConfig{}; }
};

}  // namespace cloudfog::core
