#include "core/supernode_manager.h"

#include <algorithm>

#include "cache/edge_cache_service.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::core {

SupernodeManager::SupernodeManager(const net::Topology& topology,
                                   SupernodeManagerConfig config, util::Rng rng)
    : topology_(topology), config_(config), rng_(rng) {
  CF_CHECK_MSG(config.candidate_count >= 1, "need at least one candidate");
}

void SupernodeManager::attach_cache(cache::EdgeCacheService* service) {
  CF_CHECK_MSG(roster_.empty(),
               "attach the cache service before registering supernodes");
  cache_ = service;
}

SupernodeRecord& SupernodeManager::rec_at(NodeId host) {
  CF_CHECK_MSG(is_supernode(host), "host is not a registered supernode");
  return records_[slot_of_[host]];
}

const SupernodeRecord& SupernodeManager::rec_at(NodeId host) const {
  CF_CHECK_MSG(is_supernode(host), "host is not a registered supernode");
  return records_[slot_of_[host]];
}

void SupernodeManager::add_supernode(NodeId host, int capacity, Kbps upload_kbps) {
  CF_CHECK_MSG(capacity >= 1, "supernode capacity must be at least 1");
  CF_CHECK_MSG(upload_kbps > 0.0, "supernode upload capacity must be positive");
  CF_CHECK_MSG(!is_supernode(host), "host already registered as supernode");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
  }
  SupernodeRecord& rec = records_[slot];
  rec = SupernodeRecord{};
  rec.host = host;
  rec.capacity = capacity;
  rec.upload_kbps = upload_kbps;
  if (host >= slot_of_.size()) slot_of_.resize(host + 1, kRecordSlotFree);
  slot_of_[host] = slot;
  total_capacity_ += capacity;
  roster_.push_back(host);
  grid_.insert(host, topology_.host(host).position);
  if (cache_ != nullptr) cache_->add_supernode(host, capacity);
  CF_INVARIANT(records_.size() - free_slots_.size() == roster_.size(),
               "supernode directory and deterministic roster must stay in sync");
}

void SupernodeManager::remove_supernode(NodeId host) {
  SupernodeRecord& rec = rec_at(host);
  CF_CHECK_MSG(rec.assigned == 0,
               "removing a supernode with players still assigned — release "
               "or reassign them first");
  const std::uint32_t slot = slot_of_[host];
  total_capacity_ -= rec.capacity;
  rec = SupernodeRecord{};  // host reset to kInvalidNode: slot is free
  slot_of_[host] = kRecordSlotFree;
  free_slots_.push_back(slot);
  grid_.remove(host);
  roster_.erase(std::remove(roster_.begin(), roster_.end(), host), roster_.end());
  if (cache_ != nullptr) {
    // Departing node: its cache entries are freed and its in-flight
    // transcode/fetch jobs cancelled through the engine's O(1) cancel.
    cache_->remove_supernode(host);
    CF_CHECK_MSG(!cache_->has_supernode(host),
                 "cache entries outlived their departing supernode");
  }
  CF_INVARIANT(records_.size() - free_slots_.size() == roster_.size(),
               "supernode directory and deterministic roster must stay in sync");
}

const SupernodeRecord& SupernodeManager::record(NodeId host) const {
  return rec_at(host);
}

const std::vector<NodeId>& SupernodeManager::supernodes() const {
  return roster_;
}

const Assignment& SupernodeManager::assign(NodeId player, TimeMs l_max_ms) {
  CF_CHECK_MSG(l_max_ms > 0.0, "latency threshold must be positive");
  Assignment& result = assign_result_;
  result.supernode = kInvalidNode;
  result.delay_ms = 0.0;
  result.backups.clear();  // keeps its capacity — no per-join allocation
  if (roster_.empty()) return result;

  // Step 1 — cloud side: the closest candidates by coordinate distance
  // (node coordinates derived from IP addresses in the paper). The grid
  // index and the exhaustive scan produce element-for-element identical
  // candidate lists (same haversine doubles, ties by ascending id).
  const net::Host& player_host = topology_.host(player);
  const net::GeoPoint player_pos = player_host.position;
  const std::size_t k = std::min(config_.candidate_count, roster_.size());
  if (config_.use_spatial_index) {
    // Host::cos_lat is the precomputed net::cos_lat(position) the grid
    // would otherwise recompute per query.
    grid_.nearest_k(player_pos, player_host.cos_lat, k, candidates_);
  } else {
    candidates_.clear();
    candidates_.reserve(roster_.size());
    for (NodeId sn : roster_) {
      candidates_.emplace_back(
          net::haversine_km(player_pos, topology_.host(sn).position), sn);
    }
    std::partial_sort(candidates_.begin(),
                      candidates_.begin() + static_cast<std::ptrdiff_t>(k),
                      candidates_.end());
    candidates_.resize(k);
  }

  // Step 2 — player side: probe transmission delay, filter by L_max. The
  // candidate distance is the exact haversine double the model would
  // recompute, so the distance-carrying probe overload is result-neutral.
  qualified_.clear();
  const net::Endpoint player_ep{player_host.id, player_host.position,
                                player_host.last_mile_ms, player_host.cos_lat};
  for (const auto& [dist_km, sn] : candidates_) {
    TimeMs delay = topology_.expected_server_one_way_ms(sn, player_ep, dist_km);
    if (config_.probe_jitter_sigma > 0.0) {
      delay *= rng_.lognormal(0.0, config_.probe_jitter_sigma);
    }
    if (delay <= l_max_ms) qualified_.push_back({delay, sn});
  }
  std::sort(qualified_.begin(), qualified_.end(),
            [](const Probe& a, const Probe& b) {
              return a.delay != b.delay ? a.delay < b.delay : a.sn < b.sn;
            });

  // Step 3 — choose the fastest qualified supernode with spare capacity;
  // the rest become backups.
  for (const Probe& p : qualified_) {
    SupernodeRecord& rec = records_[slot_of_[p.sn]];
    if (result.direct_to_cloud() && rec.available() > 0) {
      ++rec.assigned;
      ++total_assigned_;
      // Trust boundary: assignment must conserve capacity — a supernode can
      // never support more players than its configured C_j.
      CF_INVARIANT(rec.assigned <= rec.capacity,
                   "supernode assigned count must not exceed capacity");
      result.supernode = p.sn;
      result.delay_ms = p.delay;
    } else {
      result.backups.push_back(p.sn);
    }
  }
  // Step 4 — empty result means direct-to-cloud. Cached (_HOT) instruments:
  // assign() runs per join, and a per-call name lookup is measurable there.
  if (result.direct_to_cloud()) {
    CF_OBS_COUNT_HOT("core.supernode.direct_to_cloud", 1);
  } else {
    CF_OBS_COUNT_HOT("core.supernode.assignments", 1);
    CF_OBS_GAUGE_SET_HOT("core.supernode.assigned_total", total_assigned());
    CF_OBS_HIST_HOT("core.supernode.assignment_delay_ms", result.delay_ms);
  }
  return result;
}

void SupernodeManager::claim(NodeId supernode) {
  CF_CHECK_MSG(is_supernode(supernode), "claiming an unknown supernode");
  SupernodeRecord& rec = records_[slot_of_[supernode]];
  CF_CHECK_MSG(rec.available() > 0, "claim without spare capacity");
  ++rec.assigned;
  ++total_assigned_;
  CF_INVARIANT(rec.assigned <= rec.capacity,
               "supernode assigned count must not exceed capacity");
}

void SupernodeManager::release(NodeId supernode) {
  if (supernode == kInvalidNode) return;
  CF_CHECK_MSG(is_supernode(supernode), "releasing an unknown supernode");
  SupernodeRecord& rec = records_[slot_of_[supernode]];
  CF_CHECK_MSG(rec.assigned > 0, "release without assignment");
  --rec.assigned;
  --total_assigned_;
  CF_INVARIANT(rec.assigned >= 0,
               "supernode assigned count must stay non-negative");
}

}  // namespace cloudfog::core
