#include "core/supernode_manager.h"

#include <algorithm>

#include "cache/edge_cache_service.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::core {

SupernodeManager::SupernodeManager(const net::Topology& topology,
                                   SupernodeManagerConfig config, util::Rng rng)
    : topology_(topology), config_(config), rng_(rng) {
  CF_CHECK_MSG(config.candidate_count >= 1, "need at least one candidate");
}

void SupernodeManager::attach_cache(cache::EdgeCacheService* service) {
  CF_CHECK_MSG(records_.empty(),
               "attach the cache service before registering supernodes");
  cache_ = service;
}

void SupernodeManager::add_supernode(NodeId host, int capacity, Kbps upload_kbps) {
  CF_CHECK_MSG(capacity >= 1, "supernode capacity must be at least 1");
  CF_CHECK_MSG(upload_kbps > 0.0, "supernode upload capacity must be positive");
  CF_CHECK_MSG(!records_.contains(host), "host already registered as supernode");
  SupernodeRecord rec;
  rec.host = host;
  rec.capacity = capacity;
  rec.upload_kbps = upload_kbps;
  records_.emplace(host, rec);
  roster_.push_back(host);
  grid_.insert(host, topology_.host(host).position);
  if (cache_ != nullptr) cache_->add_supernode(host, capacity);
  CF_INVARIANT(records_.size() == roster_.size(),
               "supernode directory and deterministic roster must stay in sync");
}

void SupernodeManager::remove_supernode(NodeId host) {
  const auto it = records_.find(host);
  CF_CHECK_MSG(it != records_.end(), "host is not a registered supernode");
  CF_CHECK_MSG(it->second.assigned == 0,
               "removing a supernode with players still assigned — release "
               "or reassign them first");
  records_.erase(it);
  grid_.remove(host);
  roster_.erase(std::remove(roster_.begin(), roster_.end(), host), roster_.end());
  if (cache_ != nullptr) {
    // Departing node: its cache entries are freed and its in-flight
    // transcode/fetch jobs cancelled through the engine's O(1) cancel.
    cache_->remove_supernode(host);
    CF_CHECK_MSG(!cache_->has_supernode(host),
                 "cache entries outlived their departing supernode");
  }
  CF_INVARIANT(records_.size() == roster_.size(),
               "supernode directory and deterministic roster must stay in sync");
}

bool SupernodeManager::is_supernode(NodeId host) const {
  return records_.contains(host);
}

const SupernodeRecord& SupernodeManager::record(NodeId host) const {
  const auto it = records_.find(host);
  CF_CHECK_MSG(it != records_.end(), "host is not a registered supernode");
  return it->second;
}

const std::vector<NodeId>& SupernodeManager::supernodes() const {
  return roster_;
}

Assignment SupernodeManager::assign(NodeId player, TimeMs l_max_ms) {
  CF_CHECK_MSG(l_max_ms > 0.0, "latency threshold must be positive");
  Assignment result;
  if (records_.empty()) return result;

  // Step 1 — cloud side: the closest candidates by coordinate distance
  // (node coordinates derived from IP addresses in the paper). The grid
  // index and the exhaustive scan produce element-for-element identical
  // candidate lists (same haversine doubles, ties by ascending id).
  const net::GeoPoint player_pos = topology_.host(player).position;
  const std::size_t k = std::min(config_.candidate_count, roster_.size());
  if (config_.use_spatial_index) {
    grid_.nearest_k(player_pos, k, candidates_);
  } else {
    candidates_.clear();
    candidates_.reserve(roster_.size());
    for (NodeId sn : roster_) {
      candidates_.emplace_back(
          net::haversine_km(player_pos, topology_.host(sn).position), sn);
    }
    std::partial_sort(candidates_.begin(),
                      candidates_.begin() + static_cast<std::ptrdiff_t>(k),
                      candidates_.end());
    candidates_.resize(k);
  }

  // Step 2 — player side: probe transmission delay, filter by L_max.
  qualified_.clear();
  for (const auto& [dist_km, sn] : candidates_) {
    TimeMs delay = topology_.expected_server_one_way_ms(sn, player);
    if (config_.probe_jitter_sigma > 0.0) {
      delay *= rng_.lognormal(0.0, config_.probe_jitter_sigma);
    }
    if (delay <= l_max_ms) qualified_.push_back({delay, sn});
  }
  std::sort(qualified_.begin(), qualified_.end(),
            [](const Probe& a, const Probe& b) {
              return a.delay != b.delay ? a.delay < b.delay : a.sn < b.sn;
            });

  // Step 3 — choose the fastest qualified supernode with spare capacity;
  // the rest become backups.
  for (const Probe& p : qualified_) {
    SupernodeRecord& rec = records_.at(p.sn);
    if (result.direct_to_cloud() && rec.available() > 0) {
      ++rec.assigned;
      // Trust boundary: assignment must conserve capacity — a supernode can
      // never support more players than its configured C_j.
      CF_INVARIANT(rec.assigned <= rec.capacity,
                   "supernode assigned count must not exceed capacity");
      result.supernode = p.sn;
      result.delay_ms = p.delay;
    } else {
      result.backups.push_back(p.sn);
    }
  }
  // Step 4 — empty result means direct-to-cloud.
  if (result.direct_to_cloud()) {
    CF_OBS_COUNT("core.supernode.direct_to_cloud", 1);
  } else {
    CF_OBS_COUNT("core.supernode.assignments", 1);
    CF_OBS_GAUGE_SET("core.supernode.assigned_total", total_assigned());
    CF_OBS_HIST("core.supernode.assignment_delay_ms", result.delay_ms);
  }
  return result;
}

void SupernodeManager::claim(NodeId supernode) {
  auto it = records_.find(supernode);
  CF_CHECK_MSG(it != records_.end(), "claiming an unknown supernode");
  CF_CHECK_MSG(it->second.available() > 0, "claim without spare capacity");
  ++it->second.assigned;
  CF_INVARIANT(it->second.assigned <= it->second.capacity,
               "supernode assigned count must not exceed capacity");
}

void SupernodeManager::release(NodeId supernode) {
  if (supernode == kInvalidNode) return;
  auto it = records_.find(supernode);
  CF_CHECK_MSG(it != records_.end(), "releasing an unknown supernode");
  CF_CHECK_MSG(it->second.assigned > 0, "release without assignment");
  --it->second.assigned;
  CF_INVARIANT(it->second.assigned >= 0,
               "supernode assigned count must stay non-negative");
}

std::int64_t SupernodeManager::total_capacity() const {
  std::int64_t total = 0;
  for (const auto& [id, rec] : records_) total += rec.capacity;
  return total;
}

std::int64_t SupernodeManager::total_assigned() const {
  std::int64_t total = 0;
  for (const auto& [id, rec] : records_) total += rec.assigned;
  return total;
}

}  // namespace cloudfog::core
