#include "core/geo_grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudfog::core {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

GeoGrid::GeoGrid(double cell_deg) : cell_deg_(cell_deg) {
  CF_CHECK_MSG(cell_deg > 0.0, "grid cell size must be positive");
}

std::int32_t GeoGrid::cell_coord(double deg) const {
  return static_cast<std::int32_t>(std::floor(deg / cell_deg_));
}

GeoGrid::CellKey GeoGrid::cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<CellKey>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

void GeoGrid::insert(NodeId id, const net::GeoPoint& position) {
  CF_CHECK_MSG(!member_cell_.contains(id), "id already in the grid");
  const std::int32_t cx = cell_coord(position.lon_deg);
  const std::int32_t cy = cell_coord(position.lat_deg);
  const CellKey key = cell_key(cx, cy);
  const double c = net::cos_lat(position);
  cells_[key].push_back(Member{id, position, c});
  member_cell_.emplace(id, key);
  ++size_;
  if (!ever_inserted_) {
    ever_inserted_ = true;
    min_cx_ = max_cx_ = cx;
    min_cy_ = max_cy_ = cy;
  } else {
    min_cx_ = std::min(min_cx_, cx);
    max_cx_ = std::max(max_cx_, cx);
    min_cy_ = std::min(min_cy_, cy);
    max_cy_ = std::max(max_cy_, cy);
  }
  min_cos_lat_ = std::min(min_cos_lat_, c);
}

void GeoGrid::remove(NodeId id) {
  const auto it = member_cell_.find(id);
  CF_CHECK_MSG(it != member_cell_.end(), "id not in the grid");
  const auto cell_it = cells_.find(it->second);
  CF_INVARIANT(cell_it != cells_.end(),
               "member directory points at an existing cell");
  auto& members = cell_it->second;
  members.erase(std::remove_if(members.begin(), members.end(),
                               [id](const Member& m) { return m.id == id; }),
                members.end());
  if (members.empty()) cells_.erase(cell_it);
  member_cell_.erase(it);
  --size_;
}

void GeoGrid::scan_cell(std::int32_t cx, std::int32_t cy,
                        const net::GeoPoint& from, double from_cos_lat,
                        std::size_t k,
                        std::vector<std::pair<double, NodeId>>& out) const {
  const auto it = cells_.find(cell_key(cx, cy));
  if (it == cells_.end()) return;
  for (const Member& m : it->second) {
    const std::pair<double, NodeId> cand{
        net::haversine_km(from, from_cos_lat, m.position, m.cos_lat), m.id};
    if (out.size() == k) {
      if (!(cand < out.back())) continue;
      out.pop_back();
    }
    out.insert(std::upper_bound(out.begin(), out.end(), cand), cand);
  }
}

void GeoGrid::nearest_k(const net::GeoPoint& from, std::size_t k,
                        std::vector<std::pair<double, NodeId>>& out) const {
  out.clear();
  if (k == 0 || size_ == 0) return;
  const double from_cos = net::cos_lat(from);
  const std::int32_t cx = cell_coord(from.lon_deg);
  const std::int32_t cy = cell_coord(from.lat_deg);
  // Walking out to the ever-inserted envelope visits every occupied cell,
  // so even with pruning disabled the scan is exhaustive.
  const std::int32_t rmax =
      std::max({cx - min_cx_, max_cx_ - cx, cy - min_cy_, max_cy_ - cy,
                std::int32_t{0}});
  const double lon_shrink = std::sqrt(std::max(0.0, from_cos * min_cos_lat_));
  // Longitude gaps wrap at the antimeridian: a member whose *raw* longitude
  // differs by nearly a full turn is geographically close, so a prune bound
  // built from the raw cell gap alone would over-prune. Cap the pruning
  // angle by the smallest wrapped gap any member can have given the
  // roster's raw longitude extent (+1 cell because the query and a member
  // can sit anywhere inside their cells). Rosters spanning < 180 degrees of
  // raw longitude leave the cap >= pi, so it never binds and the
  // continental fast path is unchanged; rosters straddling the
  // antimeridian trade pruning for a (still correct) exhaustive envelope
  // walk.
  const std::int32_t max_gap_cells = std::max(cx - min_cx_, max_cx_ - cx) + 1;
  const double wrap_cap_rad =
      2.0 * kPi -
      static_cast<double>(max_gap_cells) * cell_deg_ * net::kDegToRad;
  for (std::int32_t r = 0; r <= rmax; ++r) {
    if (out.size() == k && r >= 1) {
      // Every member in ring >= r differs from `from` by at least (r-1)
      // cells in latitude or longitude. For a latitude gap of theta,
      // haversine >= 2R*asin(sin(theta/2)); for a longitude gap it is
      // >= 2R*asin(sqrt(cos_from * cos_member) * sin(theta/2)), which is
      // the smaller of the two, so it bounds both cases. A raw longitude
      // gap of g cells means a wrapped (true) gap of at least
      // min(g*cell, wrap_cap), hence the min below. Valid only while
      // theta < pi (sin(theta/2) stops being monotone beyond that); past
      // that we keep scanning unpruned.
      // The 0.999 absorbs rounding so the bound stays strictly below any
      // distance it prunes; ties against the k-th best keep scanning
      // because a same-distance member with a smaller id still wins.
      const double theta_raw = (r - 1) * cell_deg_ * net::kDegToRad;
      const double theta = std::min(theta_raw, wrap_cap_rad);
      if (theta > 0.0 && theta_raw < kPi) {
        const double s = std::min(1.0, lon_shrink * std::sin(0.5 * theta));
        const double bound_km =
            2.0 * net::kEarthRadiusKm * std::asin(s) * 0.999;
        if (bound_km > out.back().first) break;
      }
    }
    if (r == 0) {
      scan_cell(cx, cy, from, from_cos, k, out);
      continue;
    }
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      scan_cell(cx + dx, cy - r, from, from_cos, k, out);
      scan_cell(cx + dx, cy + r, from, from_cos, k, out);
    }
    for (std::int32_t dy = -r + 1; dy <= r - 1; ++dy) {
      scan_cell(cx - r, cy + dy, from, from_cos, k, out);
      scan_cell(cx + r, cy + dy, from, from_cos, k, out);
    }
  }
}

}  // namespace cloudfog::core
