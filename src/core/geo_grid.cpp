#include "core/geo_grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudfog::core {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

GeoGrid::GeoGrid(double cell_deg)
    : base_cell_deg_(cell_deg), cell_deg_(cell_deg) {
  CF_CHECK_MSG(cell_deg > 0.0, "grid cell size must be positive");
}

std::int32_t GeoGrid::cell_coord(double deg) const {
  return static_cast<std::int32_t>(std::floor(deg / cell_deg_));
}

std::size_t GeoGrid::table_index(std::int32_t cx, std::int32_t cy) const {
  if (cx < table_min_cx_ || cx > table_max_cx_ || cy < table_min_cy_ ||
      cy > table_max_cy_) {
    return kNoCell;
  }
  return static_cast<std::size_t>(cy - table_min_cy_) * table_width_ +
         static_cast<std::size_t>(cx - table_min_cx_);
}

std::size_t GeoGrid::table_cells_for(double cell_deg) const {
  if (!ever_inserted_) return 0;
  // 64-bit throughout: a tiny hypothetical cell size must overflow the
  // budget check, not the arithmetic.
  const auto lo_x = static_cast<std::int64_t>(std::floor(min_lon_ / cell_deg));
  const auto hi_x = static_cast<std::int64_t>(std::floor(max_lon_ / cell_deg));
  const auto lo_y = static_cast<std::int64_t>(std::floor(min_lat_ / cell_deg));
  const auto hi_y = static_cast<std::int64_t>(std::floor(max_lat_ / cell_deg));
  return static_cast<std::size_t>((hi_x - lo_x + 1) * (hi_y - lo_y + 1));
}

void GeoGrid::refresh_envelope_cells() {
  if (!ever_inserted_) return;
  min_cx_ = cell_coord(min_lon_);
  max_cx_ = cell_coord(max_lon_);
  min_cy_ = cell_coord(min_lat_);
  max_cy_ = cell_coord(max_lat_);
}

void GeoGrid::insert_into_cell(const Member& m, std::int32_t cx,
                               std::int32_t cy) {
  const std::size_t ti = table_index(cx, cy);
  CF_INVARIANT(ti != kNoCell && ti < cells_.size(),
               "insert target cell must lie inside the envelope table");
  auto& members = cells_[ti];
  if (members.empty()) {
    ++occupied_cells_;
    occ_[ti >> 6] |= std::uint64_t{1} << (ti & 63);
  }
  const auto at = std::upper_bound(
      members.begin(), members.end(), m,
      [](const Member& a, const Member& b) {
        return a.position.lat_deg != b.position.lat_deg
                   ? a.position.lat_deg < b.position.lat_deg
                   : a.id < b.id;
      });
  members.insert(at, m);
  hottest_cell_ = std::max(hottest_cell_, members.size());
}

void GeoGrid::rebucket() {
  std::vector<Member> all;
  all.reserve(size_);
  for (auto& cell : cells_) {
    for (const Member& m : cell) all.push_back(m);
  }
  CF_INVARIANT(all.size() == size_, "cell table holds every member");
  refresh_envelope_cells();
  table_min_cx_ = min_cx_;
  table_max_cx_ = max_cx_;
  table_min_cy_ = min_cy_;
  table_max_cy_ = max_cy_;
  table_width_ = static_cast<std::size_t>(table_max_cx_ - table_min_cx_) + 1;
  const std::size_t height =
      static_cast<std::size_t>(table_max_cy_ - table_min_cy_) + 1;
  cells_.assign(table_width_ * height, {});
  occ_.assign((table_width_ * height + 63) / 64, 0);
  occupied_cells_ = 0;
  hottest_cell_ = 0;
  for (const Member& m : all) {
    insert_into_cell(m, cell_coord(m.position.lon_deg),
                     cell_coord(m.position.lat_deg));
  }
}

void GeoGrid::fit_table() {
  while (table_cells_for(cell_deg_) > kMaxTableCells) cell_deg_ *= 2.0;
  rebucket();
}

void GeoGrid::maybe_refine() {
  while (hottest_cell_ > kSplitOccupancy) {
    const double next = cell_deg_ * 0.5;
    if (next < base_cell_deg_ * kMinCellDegFactor) return;
    if (table_cells_for(next) > kMaxTableCells) return;
    cell_deg_ = next;
    rebucket();
  }
}

void GeoGrid::insert(NodeId id, const net::GeoPoint& position) {
  CF_CHECK_MSG(!member_pos_.contains(id), "id already in the grid");
  const double c = net::cos_lat(position);
  member_pos_.emplace(id, position);
  bool envelope_grew = false;
  if (!ever_inserted_) {
    ever_inserted_ = true;
    min_lat_ = max_lat_ = position.lat_deg;
    min_lon_ = max_lon_ = position.lon_deg;
    envelope_grew = true;
  } else {
    if (position.lat_deg < min_lat_) {
      min_lat_ = position.lat_deg;
      envelope_grew = true;
    }
    if (position.lat_deg > max_lat_) {
      max_lat_ = position.lat_deg;
      envelope_grew = true;
    }
    if (position.lon_deg < min_lon_) {
      min_lon_ = position.lon_deg;
      envelope_grew = true;
    }
    if (position.lon_deg > max_lon_) {
      max_lon_ = position.lon_deg;
      envelope_grew = true;
    }
  }
  min_cos_lat_ = std::min(min_cos_lat_, c);
  if (envelope_grew) {
    refresh_envelope_cells();
    // Rebuild only when the grown envelope actually escapes the current
    // table (the common rejoin-at-a-known-position path stays O(cell)).
    if (min_cx_ < table_min_cx_ || max_cx_ > table_max_cx_ ||
        min_cy_ < table_min_cy_ || max_cy_ > table_max_cy_) {
      fit_table();
    }
  }
  ++size_;  // after any rebuild: rebucket checks cells against size_
  insert_into_cell(Member{id, position, c}, cell_coord(position.lon_deg),
                   cell_coord(position.lat_deg));
  maybe_refine();
}

void GeoGrid::remove(NodeId id) {
  const auto it = member_pos_.find(id);
  CF_CHECK_MSG(it != member_pos_.end(), "id not in the grid");
  const std::size_t ti = table_index(cell_coord(it->second.lon_deg),
                                     cell_coord(it->second.lat_deg));
  CF_INVARIANT(ti != kNoCell, "member directory points inside the table");
  auto& members = cells_[ti];
  const auto mit =
      std::find_if(members.begin(), members.end(),
                   [id](const Member& m) { return m.id == id; });
  CF_INVARIANT(mit != members.end(), "member directory points at its cell");
  members.erase(mit);  // shift-erase keeps the (lat, id) order intact
  if (members.empty()) {
    --occupied_cells_;
    occ_[ti >> 6] &= ~(std::uint64_t{1} << (ti & 63));
  }
  member_pos_.erase(it);
  --size_;
}

void GeoGrid::consider(const Member& m, const net::GeoPoint& from,
                       double from_cos_lat, std::size_t k,
                       std::vector<std::pair<double, NodeId>>& out) {
  if (out.size() == k) {
    // Same rigorous pre-filter the sorted scan uses (central angle >=
    // |delta lat|, 0.999 margin): a member it rejects is provably farther
    // than the current k-th best, so skipping the exact haversine cannot
    // change the result.
    const double bound_km = net::kEarthRadiusKm *
                            std::abs(m.position.lat_deg - from.lat_deg) *
                            net::kDegToRad * 0.999;
    if (bound_km > out.back().first) return;
  }
  const std::pair<double, NodeId> cand{
      net::haversine_km(from, from_cos_lat, m.position, m.cos_lat), m.id};
  if (out.size() == k) {
    if (!(cand < out.back())) return;
    out.pop_back();
  }
  out.insert(std::upper_bound(out.begin(), out.end(), cand), cand);
}

void GeoGrid::scan_cell(std::int32_t cx, std::int32_t cy,
                        const net::GeoPoint& from, double from_cos_lat,
                        std::size_t k,
                        std::vector<std::pair<double, NodeId>>& out) const {
  const std::size_t ti = table_index(cx, cy);
  if (ti == kNoCell) return;
  if (((occ_[ti >> 6] >> (ti & 63)) & 1) == 0) return;  // empty cell
  if (out.size() == k) {
    // Whole-cell latitude bound: every member's latitude lies inside the
    // cell's [cy, cy+1) band (by construction of the bucketing), so the
    // band's latitude gap to the query lower-bounds every member's
    // distance (central angle >= |delta lat|, same 0.999 margin as the
    // per-member check). Kills a ring's top/bottom rows without touching
    // their member vectors.
    const double lo = static_cast<double>(cy) * cell_deg_;
    const double hi = lo + cell_deg_;
    const double gap_deg =
        from.lat_deg < lo ? lo - from.lat_deg
                          : (from.lat_deg > hi ? from.lat_deg - hi : 0.0);
    if (net::kEarthRadiusKm * gap_deg * net::kDegToRad * 0.999 >
        out.back().first) {
      return;
    }
  }
  const auto& members = cells_[ti];
  if (members.size() <= kSortedScanCutoff) {
    for (const Member& m : members) consider(m, from, from_cos_lat, k, out);
    return;
  }
  // Hot cell (hundreds of metro-clustered members): members are sorted by
  // (lat, id), so scan outward from the query latitude with a two-pointer
  // and prune each side once its latitude gap alone proves every remaining
  // member farther than the current k-th best. The bound is rigorous: the
  // central angle between two points is at least their latitude difference,
  // so haversine_km >= R * |dlat_rad|; the 0.999 margin absorbs rounding
  // (ties keep scanning, as in the ring prune). Pruned members are provably
  // outside the final top-k, so the result is identical to a full scan.
  const auto split = std::lower_bound(
      members.begin(), members.end(), from.lat_deg,
      [](const Member& m, double lat) { return m.position.lat_deg < lat; });
  std::ptrdiff_t down = (split - members.begin()) - 1;
  std::ptrdiff_t up = split - members.begin();
  const auto n = static_cast<std::ptrdiff_t>(members.size());
  bool down_alive = down >= 0;
  bool up_alive = up < n;
  while (down_alive || up_alive) {
    bool take_up;
    if (!down_alive) {
      take_up = true;
    } else if (!up_alive) {
      take_up = false;
    } else {
      // Visit the smaller latitude gap first — result-neutral, but it
      // tightens out.back() fastest so both sides prune sooner.
      take_up = members[static_cast<std::size_t>(up)].position.lat_deg -
                    from.lat_deg <=
                from.lat_deg -
                    members[static_cast<std::size_t>(down)].position.lat_deg;
    }
    const Member& m =
        members[static_cast<std::size_t>(take_up ? up : down)];
    if (out.size() == k) {
      const double bound_km =
          net::kEarthRadiusKm *
          std::abs(m.position.lat_deg - from.lat_deg) * net::kDegToRad * 0.999;
      if (bound_km > out.back().first) {
        // Latitude gaps are monotone along each direction of the sorted
        // cell: everything past m on this side is at least as far.
        if (take_up) {
          up_alive = false;
        } else {
          down_alive = false;
        }
        continue;
      }
    }
    consider(m, from, from_cos_lat, k, out);
    if (take_up) {
      ++up;
      up_alive = up < n;
    } else {
      --down;
      down_alive = down >= 0;
    }
  }
}

void GeoGrid::nearest_k(const net::GeoPoint& from, std::size_t k,
                        std::vector<std::pair<double, NodeId>>& out) const {
  nearest_k(from, net::cos_lat(from), k, out);
}

void GeoGrid::nearest_k(const net::GeoPoint& from, double from_cos,
                        std::size_t k,
                        std::vector<std::pair<double, NodeId>>& out) const {
  out.clear();
  if (k == 0 || size_ == 0) return;
  const std::int32_t cx = cell_coord(from.lon_deg);
  const std::int32_t cy = cell_coord(from.lat_deg);
  // Walking out to the ever-inserted envelope visits every occupied cell,
  // so even with pruning disabled the scan is exhaustive.
  const std::int32_t rmax =
      std::max({cx - min_cx_, max_cx_ - cx, cy - min_cy_, max_cy_ - cy,
                std::int32_t{0}});
  const double lon_shrink = std::sqrt(std::max(0.0, from_cos * min_cos_lat_));
  // Longitude gaps wrap at the antimeridian: a member whose *raw* longitude
  // differs by nearly a full turn is geographically close, so a prune bound
  // built from the raw cell gap alone would over-prune. Cap the pruning
  // angle by the smallest wrapped gap any member can have given the
  // roster's raw longitude extent (+1 cell because the query and a member
  // can sit anywhere inside their cells). Rosters spanning < 180 degrees of
  // raw longitude leave the cap >= pi, so it never binds and the
  // continental fast path is unchanged; rosters straddling the
  // antimeridian trade pruning for a (still correct) exhaustive envelope
  // walk.
  const std::int32_t max_gap_cells = std::max(cx - min_cx_, max_cx_ - cx) + 1;
  const double wrap_cap_rad =
      2.0 * kPi -
      static_cast<double>(max_gap_cells) * cell_deg_ * net::kDegToRad;
  for (std::int32_t r = 0; r <= rmax; ++r) {
    if (out.size() == k && r >= 1) {
      // Every member in ring >= r differs from `from` by at least (r-1)
      // cells in latitude or longitude. For a latitude gap of theta,
      // haversine >= 2R*asin(sin(theta/2)); for a longitude gap it is
      // >= 2R*asin(sqrt(cos_from * cos_member) * sin(theta/2)), which is
      // the smaller of the two, so it bounds both cases. A raw longitude
      // gap of g cells means a wrapped (true) gap of at least
      // min(g*cell, wrap_cap), hence the min below. Valid only while
      // theta < pi (sin(theta/2) stops being monotone beyond that); past
      // that we keep scanning unpruned.
      // The 0.999 absorbs rounding so the bound stays strictly below any
      // distance it prunes; ties against the k-th best keep scanning
      // because a same-distance member with a smaller id still wins.
      const double theta_raw = (r - 1) * cell_deg_ * net::kDegToRad;
      const double theta = std::min(theta_raw, wrap_cap_rad);
      if (theta > 0.0 && theta_raw < kPi) {
        const double s = std::min(1.0, lon_shrink * std::sin(0.5 * theta));
        const double bound_km =
            2.0 * net::kEarthRadiusKm * std::asin(s) * 0.999;
        if (bound_km > out.back().first) break;
      }
    }
    if (r == 0) {
      scan_cell(cx, cy, from, from_cos, k, out);
      continue;
    }
    // Visit order within the ring is result-neutral (the top-k by
    // (distance, id) does not depend on it) but not cost-neutral: going
    // center-outward reaches the closest members first, so the k-th best
    // tightens early and the per-member/per-cell prunes kill more of the
    // ring's periphery.
    for (const std::int32_t cyr : {cy - r, cy + r}) {
      // One latitude-band evaluation per row: the band gap is the same for
      // all 2r+1 cells of the row (scan_cell re-derives the identical
      // bound per cell), so a dead row is skipped without probing any of
      // its cells. Rows killed here are exactly the rows whose every cell
      // scan_cell would reject — skipping them cannot change the result.
      if (out.size() == k) {
        const double lo = static_cast<double>(cyr) * cell_deg_;
        const double hi = lo + cell_deg_;
        const double gap_deg =
            from.lat_deg < lo ? lo - from.lat_deg
                              : (from.lat_deg > hi ? from.lat_deg - hi : 0.0);
        if (net::kEarthRadiusKm * gap_deg * net::kDegToRad * 0.999 >
            out.back().first) {
          continue;
        }
      }
      scan_cell(cx, cyr, from, from_cos, k, out);
      for (std::int32_t a = 1; a <= r; ++a) {
        scan_cell(cx - a, cyr, from, from_cos, k, out);
        scan_cell(cx + a, cyr, from, from_cos, k, out);
      }
    }
    for (std::int32_t b = 0; b <= r - 1; ++b) {
      scan_cell(cx - r, cy + b, from, from_cos, k, out);
      scan_cell(cx + r, cy + b, from, from_cos, k, out);
      if (b > 0) {
        scan_cell(cx - r, cy - b, from, from_cos, k, out);
        scan_cell(cx + r, cy - b, from, from_cos, k, out);
      }
    }
  }
}

}  // namespace cloudfog::core
