#include "core/rate_adaptation.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::core {

RateAdaptationController::RateAdaptationController(
    const game::GameProfile& profile, RateAdaptationConfig config,
    int initial_level)
    : profile_(profile), config_(config) {
  CF_CHECK_MSG(config.theta > 0.0 && config.theta <= 1.0,
               "theta must be in (0, 1] (Eq 11)");
  CF_CHECK_MSG(config.consecutive_estimates >= 1,
               "need at least one estimate before acting");
  CF_CHECK_MSG(profile.latency_tolerance > 0.0 && profile.latency_tolerance <= 1.0,
               "latency tolerance degree rho must be in (0, 1]");
  max_level_ = profile.target_quality_level;
  level_ = initial_level < 0 ? max_level_ : initial_level;
  CF_CHECK_MSG(level_ >= game::kMinQualityLevel && level_ <= max_level_,
               "initial level out of range for this game");
}

double RateAdaptationController::up_threshold() const {
  return (1.0 + game::adjust_up_beta()) / profile_.latency_tolerance;
}

double RateAdaptationController::down_threshold() const {
  return config_.theta / profile_.latency_tolerance;
}

RateAdaptationController::Decision RateAdaptationController::observe_rates(
    TimeMs dt_ms, Kbps download_kbps, Kbps playback_kbps, Kbit tau_kbit) {
  CF_CHECK_GT(dt_ms, 0.0);
  CF_CHECK_GE(download_kbps, 0.0);
  CF_CHECK_GT(playback_kbps, 0.0);
  CF_CHECK_GT(tau_kbit, 0.0);
  if (!estimator_initialised_) {
    s_estimate_ = tau_kbit;  // start with one buffered segment
    estimator_initialised_ = true;
  }
  s_estimate_ += (download_kbps - playback_kbps) * dt_ms / 1000.0;  // Eq (7)
  s_estimate_ = std::clamp(s_estimate_, 0.0, 4.0 * tau_kbit);
  return observe(s_estimate_ / tau_kbit);  // Eq (8)
}

RateAdaptationController::Decision RateAdaptationController::observe(
    double buffered_segments) {
  CF_CHECK_GE(buffered_segments, 0.0);  // r (Eq 8) is a buffer count
  const Decision decision = observe_impl(buffered_segments);
  // Trust boundary: whatever path the Eqs (9)/(11) state machine took, the
  // resulting rate must stay inside the encoder's quality ladder and never
  // exceed the game's target level (Section III-B).
  CF_INVARIANT(level_ >= game::kMinQualityLevel && level_ <= max_level_,
               "encoding level outside the game's quality-ladder bounds");
  return decision;
}

RateAdaptationController::Decision RateAdaptationController::observe_impl(
    double buffered_segments) {
  if (buffered_segments > up_threshold()) {
    ++up_count_;
    down_count_ = 0;
    if (up_count_ >= config_.consecutive_estimates) {
      up_count_ = 0;
      if (level_ < max_level_) {
        ++level_;
        CF_OBS_COUNT("core.adaptation.switches_up", 1);
        return Decision::kUp;
      }
    }
  } else if (buffered_segments < down_threshold()) {
    ++down_count_;
    up_count_ = 0;
    if (down_count_ >= config_.consecutive_estimates) {
      down_count_ = 0;
      if (level_ > game::kMinQualityLevel) {
        --level_;
        CF_OBS_COUNT("core.adaptation.switches_down", 1);
        return Decision::kDown;
      }
    }
  } else {
    up_count_ = 0;
    down_count_ = 0;
  }
  return Decision::kHold;
}

}  // namespace cloudfog::core
