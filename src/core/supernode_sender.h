// Packet-level supernode sender: serialises packets onto the supernode's
// uplink under a pluggable discipline and delivers them to players after a
// sampled propagation delay.
//
//   * Discipline::kFifo     — segments transmit in arrival order, no drops
//                             (the CloudFog/B baseline sender).
//   * Discipline::kDeadline — the Section III-C deadline-driven scheduler:
//                             expected-arrival ordering plus Eq (12)–(14)
//                             tolerance-weighted packet dropping.
//
// The sender measures each delivered packet's propagation delay back into
// the scheduler (the paper's "records the propagation delay of m recently
// sent packets for each player", Eq 13).
//
// Burst transmission (DESIGN.md §14): the uplink drains in back-to-back
// trains. A submit on an idle uplink never completes inline — it pops one
// packet and arms its completion event (the submit is often one of a batch
// at the same timestamp, and the later ones are invisible to any peek);
// trains run from the sender's own completion events. There, after popping
// a packet the sender computes its completion time `done` against an
// explicitly threaded clock; if `done` is within the simulator's run
// horizon and no sim event lands at or before it (and the burst limit
// allows) the packet completes *inline* at `done` and the train continues
// — otherwise one sim event is armed at `done` and the train resumes
// there. The timeline is identical to the old
// one-event-per-packet sender: a train only skips event-queue round trips
// that nothing could observe — the run-horizon gate keeps it honest where
// the event queue is blind (direct submits between run_*() calls, shard
// window barriers). Contract this imposes on delivery callbacks:
// they run logically at PacketDelivery::sent_ms, which mid-train is ahead
// of Simulator::now() — take times from the delivery record, never from
// the sim clock.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/deadline_scheduler.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/rng.h"
#include "util/small_function.h"
#include "util/types.h"

namespace cloudfog::cache {
class EdgeCacheService;
}

namespace cloudfog::core {

/// Report of one packet leaving the supernode and reaching the player.
struct PacketDelivery {
  NodeId player = kInvalidNode;
  game::GameId game = -1;
  std::uint64_t segment_id = 0;
  int packet_index = 0;
  Kbit size_kbit = 0.0;
  TimeMs action_ms = 0.0;    // t_m of the segment's triggering action
  TimeMs deadline_ms = 0.0;  // t_a
  TimeMs sent_ms = 0.0;      // last bit left the uplink
  TimeMs arrival_ms = 0.0;   // reached the player (meaningless when lost)
  bool lost = false;         // dropped in the network, never arrived
  std::uint64_t delivery_tag = 0;  // the segment's tag as submitted
  bool on_time() const { return !lost && arrival_ms <= deadline_ms; }
};

class SupernodeSender {
 public:
  enum class Discipline { kFifo, kDeadline };

  /// Samples the propagation delay of one packet to `player`.
  using PropagationFn =
      util::small_function<TimeMs(NodeId player, util::Rng& rng)>;
  /// Optional per-player WAN bottleneck rate (kbps); <= 0 means none. A
  /// packet to a capped player takes size/rate extra transit time after
  /// leaving the uplink — the bottleneck stretches delivery, it does not
  /// block the shared sender queue. `delivery_tag` is the segment's tag so
  /// slab-indexed harnesses can reach their per-session state directly.
  using RateCapFn =
      util::small_function<Kbps(NodeId player, std::uint64_t delivery_tag)>;
  /// Optional per-player network loss probability in [0, 1).
  using LossFn =
      util::small_function<double(NodeId player, std::uint64_t delivery_tag)>;
  /// Observer invoked for every delivered packet. Runs logically at
  /// PacketDelivery::sent_ms — mid-train that is ahead of Simulator::now(),
  /// so read times from the record, not from the sim clock.
  using DeliveryFn = util::small_function<void(const PacketDelivery&), 64>;

  SupernodeSender(sim::Simulator& sim, Kbps uplink_kbps, Discipline discipline,
                  DeadlineSchedulerConfig scheduler_config,
                  PropagationFn propagation, DeliveryFn on_delivery,
                  util::Rng rng);

  /// Movable so slab stores can hold senders by value — but in-flight
  /// completion events capture `this`, so a sender may only be moved while
  /// no transmission is pending: create every sender before the first event
  /// runs and never grow the store afterwards.
  SupernodeSender(SupernodeSender&&) = default;
  SupernodeSender& operator=(SupernodeSender&&) = default;

  /// Accepts a rendered segment at simulator time. With a segment cache
  /// attached the segment is first *sourced* (cache hit / local transcode /
  /// cloud fetch) and enters the uplink queue once the content is available
  /// locally; without one it enqueues immediately. Under kDeadline the
  /// scheduler may drop packets of this or earlier segments per Eq (14).
  void submit(const stream::VideoSegment& segment);

  /// Routes future submissions through the supernode segment cache on
  /// behalf of supernode `self`. Attach before the first submit; the
  /// service must be registered for `self` and outlive this sender.
  void attach_segment_cache(cache::EdgeCacheService* service, NodeId self);

  /// Installs a per-player WAN bottleneck. Call before the first submit.
  /// Optional: null means "no cap", and complete() null-guards before sampling.
  void set_rate_cap(RateCapFn cap) { rate_cap_ = std::move(cap); }  // lint:allow(trust-boundary)

  /// Installs a per-player packet-loss model. Lost packets are reported
  /// through the delivery observer with lost = true.
  /// Optional: null means "lossless", and complete() null-guards before sampling.
  void set_loss_model(LossFn loss) { loss_ = std::move(loss); }  // lint:allow(trust-boundary)

  /// Caps how many packets one train completes inline before the sender
  /// falls back to arming a sim event (default: unlimited). A limit of 1
  /// reproduces the old one-event-per-packet timeline exactly — the
  /// equivalence oracle in tests/core runs both and compares digests.
  void set_burst_limit(std::size_t limit);

  Discipline discipline() const { return discipline_; }
  Kbps uplink_kbps() const { return uplink_kbps_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_submitted() const { return packets_submitted_; }
  /// Packets dropped by the deadline scheduler (0 under FIFO).
  std::uint64_t packets_dropped() const;
  /// Packets lost in the network (set_loss_model).
  std::uint64_t packets_lost() const { return packets_lost_; }

  /// Exposes the scheduler (kDeadline only) for inspection in tests.
  const DeadlineScheduler& scheduler() const { return scheduler_; }

  /// Forwards a drop observer to the scheduler (kDeadline only; no drops
  /// ever occur under FIFO). Pure delegation to the scheduler's optional
  /// observer sink, which is itself waived: null clears, sites null-guard.
  void set_drop_observer(DeadlineScheduler::DropObserver observer) {  // lint:allow(trust-boundary)
    scheduler_.set_drop_observer(std::move(observer));
  }

  /// Abandons the queued backlog (supernode churn): empties whichever
  /// queue the discipline uses and returns the segments that still had
  /// unsent packets. The in-flight packet, if any, still completes.
  std::vector<DeadlineScheduler::PendingSegment> drain_pending();

 private:
  struct FifoPacket {
    stream::Packet packet;
    NodeId player;
    game::GameId game;
    TimeMs action_ms;
    std::uint64_t delivery_tag;
  };

  /// Enqueues a segment whose content is locally available (post-cache).
  void enqueue_ready(const stream::VideoSegment& segment);
  /// If the uplink is idle, pops one packet and arms its completion event
  /// (never inline — same-timestamp submits may still be pending).
  void pump();
  /// Drains the queue back-to-back from `clock` (>= sim time) until it
  /// empties, a sim event intervenes, or the burst limit is hit.
  void run_train(TimeMs clock);
  /// Pops the next packet under the current discipline.
  bool pop_next(FifoPacket& out, TimeMs clock);
  /// Completes one transmission at explicit time `at`: samples loss /
  /// propagation / rate cap and reports the delivery.
  void complete(const FifoPacket& item, TimeMs at);

  // --- segment-granular FIFO ring (kFifo) -------------------------------
  // Stores whole segments with the same implicit packet layout the
  // deadline queue uses; packets are derived on demand, so steady-state
  // pushes and pops never allocate (the ring keeps its high-water size).
  void fifo_push(QueuedSegment qs);
  bool fifo_pop(FifoPacket& out);

  sim::Simulator* sim_;
  Kbps uplink_kbps_;
  Discipline discipline_;
  DeadlineScheduler scheduler_;   // used only under kDeadline
  std::vector<QueuedSegment> fifo_buf_;  // ring storage (kFifo)
  std::size_t fifo_head_ = 0;
  std::size_t fifo_count_ = 0;
  PropagationFn propagation_;
  RateCapFn rate_cap_;
  LossFn loss_;
  DeliveryFn on_delivery_;
  cache::EdgeCacheService* cache_service_ = nullptr;  // optional, not owned
  NodeId cache_self_ = kInvalidNode;  // this supernode's id in the service
  util::Rng rng_;
  bool transmitting_ = false;
  std::size_t burst_limit_ = std::numeric_limits<std::size_t>::max();
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_submitted_ = 0;
  std::uint64_t packets_lost_ = 0;
};

}  // namespace cloudfog::core
