// Packet-level supernode sender: serialises packets onto the supernode's
// uplink under a pluggable discipline and delivers them to players after a
// sampled propagation delay.
//
//   * Discipline::kFifo     — segments transmit in arrival order, no drops
//                             (the CloudFog/B baseline sender).
//   * Discipline::kDeadline — the Section III-C deadline-driven scheduler:
//                             expected-arrival ordering plus Eq (12)–(14)
//                             tolerance-weighted packet dropping.
//
// The sender measures each delivered packet's propagation delay back into
// the scheduler (the paper's "records the propagation delay of m recently
// sent packets for each player", Eq 13).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/deadline_scheduler.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::cache {
class EdgeCacheService;
}

namespace cloudfog::core {

/// Report of one packet leaving the supernode and reaching the player.
struct PacketDelivery {
  NodeId player = kInvalidNode;
  game::GameId game = -1;
  std::uint64_t segment_id = 0;
  int packet_index = 0;
  Kbit size_kbit = 0.0;
  TimeMs action_ms = 0.0;    // t_m of the segment's triggering action
  TimeMs deadline_ms = 0.0;  // t_a
  TimeMs sent_ms = 0.0;      // last bit left the uplink
  TimeMs arrival_ms = 0.0;   // reached the player (meaningless when lost)
  bool lost = false;         // dropped in the network, never arrived
  bool on_time() const { return !lost && arrival_ms <= deadline_ms; }
};

class SupernodeSender {
 public:
  enum class Discipline { kFifo, kDeadline };

  /// Samples the propagation delay of one packet to `player`.
  using PropagationFn = std::function<TimeMs(NodeId player, util::Rng& rng)>;
  /// Optional per-player WAN bottleneck rate (kbps); <= 0 means none. A
  /// packet to a capped player takes size/rate extra transit time after
  /// leaving the uplink — the bottleneck stretches delivery, it does not
  /// block the shared sender queue.
  using RateCapFn = std::function<Kbps(NodeId player)>;
  /// Optional per-player network loss probability in [0, 1).
  using LossFn = std::function<double(NodeId player)>;
  /// Observer invoked for every delivered packet.
  using DeliveryFn = std::function<void(const PacketDelivery&)>;

  SupernodeSender(sim::Simulator& sim, Kbps uplink_kbps, Discipline discipline,
                  DeadlineSchedulerConfig scheduler_config,
                  PropagationFn propagation, DeliveryFn on_delivery,
                  util::Rng rng);

  /// Accepts a rendered segment at simulator time. With a segment cache
  /// attached the segment is first *sourced* (cache hit / local transcode /
  /// cloud fetch) and enters the uplink queue once the content is available
  /// locally; without one it enqueues immediately. Under kDeadline the
  /// scheduler may drop packets of this or earlier segments per Eq (14).
  void submit(const stream::VideoSegment& segment);

  /// Routes future submissions through the supernode segment cache on
  /// behalf of supernode `self`. Attach before the first submit; the
  /// service must be registered for `self` and outlive this sender.
  void attach_segment_cache(cache::EdgeCacheService* service, NodeId self);

  /// Installs a per-player WAN bottleneck. Call before the first submit.
  /// Optional: null means "no cap", and pump() null-guards before sampling.
  void set_rate_cap(RateCapFn cap) { rate_cap_ = std::move(cap); }  // lint:allow(trust-boundary)

  /// Installs a per-player packet-loss model. Lost packets are reported
  /// through the delivery observer with lost = true.
  /// Optional: null means "lossless", and pump() null-guards before sampling.
  void set_loss_model(LossFn loss) { loss_ = std::move(loss); }  // lint:allow(trust-boundary)

  Discipline discipline() const { return discipline_; }
  Kbps uplink_kbps() const { return uplink_kbps_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_submitted() const { return packets_submitted_; }
  /// Packets dropped by the deadline scheduler (0 under FIFO).
  std::uint64_t packets_dropped() const;
  /// Packets lost in the network (set_loss_model).
  std::uint64_t packets_lost() const { return packets_lost_; }

  /// Exposes the scheduler (kDeadline only) for inspection in tests.
  const DeadlineScheduler& scheduler() const { return scheduler_; }

  /// Forwards a drop observer to the scheduler (kDeadline only; no drops
  /// ever occur under FIFO). Pure delegation to the scheduler's optional
  /// observer sink, which is itself waived: null clears, sites null-guard.
  void set_drop_observer(DeadlineScheduler::DropObserver observer) {  // lint:allow(trust-boundary)
    scheduler_.set_drop_observer(std::move(observer));
  }

 private:
  struct FifoPacket {
    stream::Packet packet;
    NodeId player;
    game::GameId game;
    TimeMs action_ms;
  };

  /// Enqueues a segment whose content is locally available (post-cache).
  void enqueue_ready(const stream::VideoSegment& segment);
  /// Starts transmitting the next packet if the uplink is idle.
  void pump();
  void on_transmit_done(const FifoPacket& item);

  sim::Simulator& sim_;
  Kbps uplink_kbps_;
  Discipline discipline_;
  DeadlineScheduler scheduler_;   // used only under kDeadline
  std::deque<FifoPacket> fifo_;   // used only under kFifo
  PropagationFn propagation_;
  RateCapFn rate_cap_;
  LossFn loss_;
  DeliveryFn on_delivery_;
  cache::EdgeCacheService* cache_service_ = nullptr;  // optional, not owned
  NodeId cache_self_ = kInvalidNode;  // this supernode's id in the service
  util::Rng rng_;
  bool transmitting_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_submitted_ = 0;
  std::uint64_t packets_lost_ = 0;
};

}  // namespace cloudfog::core
