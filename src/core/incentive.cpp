#include "core/incentive.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cloudfog::core {

double supernode_profit(const IncentiveParams& params, Kbps upload_kbps,
                        double utilization, double contributor_cost) {
  CF_CHECK_MSG(upload_kbps >= 0.0, "upload capacity must be non-negative");
  CF_CHECK_MSG(utilization >= 0.0 && utilization <= 1.0,
               "utilization must be in [0, 1] (Eq 5)");
  return params.reward_per_kbps * upload_kbps * utilization - contributor_cost;
}

Kbps bandwidth_reduction(const IncentiveParams& params, double n_supported,
                         double m_supernodes) {
  CF_CHECK_MSG(n_supported >= 0.0 && m_supernodes >= 0.0,
               "counts must be non-negative");
  return n_supported * params.stream_rate_kbps -
         params.update_stream_kbps * m_supernodes;
}

namespace {
Kbps contributed_bandwidth(const std::vector<SupernodeOffer>& deployed) {
  return std::accumulate(deployed.begin(), deployed.end(), 0.0,
                         [](Kbps acc, const SupernodeOffer& o) {
                           return acc + o.upload_kbps * o.utilization;
                         });
}
}  // namespace

double provider_saving(const IncentiveParams& params, double n_supported,
                       const std::vector<SupernodeOffer>& deployed) {
  const Kbps b_r = bandwidth_reduction(params, n_supported,
                                       static_cast<double>(deployed.size()));
  const Kbps b_s = contributed_bandwidth(deployed);
  return params.value_per_kbps * b_r - params.reward_per_kbps * b_s;
}

bool deployment_feasible(const IncentiveParams& params, double n_supported,
                         const std::vector<SupernodeOffer>& deployed) {
  for (const auto& o : deployed) {
    if (o.utilization < 0.0 || o.utilization > 1.0) return false;  // Eq (5)
  }
  // Eq (4): total contribution covers the demand of the supported players.
  return contributed_bandwidth(deployed) >=
         n_supported * params.stream_rate_kbps;
}

double marginal_gain(const IncentiveParams& params, const SupernodeOffer& offer) {
  return params.value_per_kbps *
             (offer.new_players_covered * params.stream_rate_kbps -
              params.update_stream_kbps) -
         params.reward_per_kbps * offer.upload_kbps * offer.utilization;
}

std::vector<std::size_t> greedy_deployment(
    const IncentiveParams& params, const std::vector<SupernodeOffer>& offers) {
  std::vector<std::size_t> order(offers.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return marginal_gain(params, offers[a]) > marginal_gain(params, offers[b]);
  });
  std::vector<std::size_t> accepted;
  for (std::size_t i : order) {
    if (marginal_gain(params, offers[i]) > 0.0) accepted.push_back(i);
  }
  return accepted;
}

}  // namespace cloudfog::core
