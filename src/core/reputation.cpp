#include "core/reputation.h"

#include <cmath>

#include "util/check.h"

namespace cloudfog::core {

ReputationSystem::ReputationSystem(ReputationConfig config) : config_(config) {
  CF_CHECK_MSG(config.prior_good > 0.0 && config.prior_bad > 0.0,
               "Beta prior must be positive");
  CF_CHECK_MSG(config.eviction_threshold > 0.0 && config.eviction_threshold < 1.0,
               "eviction threshold must be in (0, 1)");
  CF_CHECK_MSG(config.forgetting > 0.0 && config.forgetting <= 1.0,
               "forgetting factor must be in (0, 1]");
}

void ReputationSystem::report(NodeId supernode, bool ok) {
  Entry& e = ledger_[supernode];
  e.good *= config_.forgetting;
  e.bad *= config_.forgetting;
  if (ok) {
    e.good += 1.0;
  } else {
    e.bad += 1.0;
  }
  ++e.reports;
}

double ReputationSystem::score(NodeId supernode) const {
  double good = config_.prior_good;
  double bad = config_.prior_bad;
  if (const auto it = ledger_.find(supernode); it != ledger_.end()) {
    good += it->second.good;
    bad += it->second.bad;
  }
  return good / (good + bad);
}

std::uint64_t ReputationSystem::observations(NodeId supernode) const {
  const auto it = ledger_.find(supernode);
  return it == ledger_.end() ? 0 : it->second.reports;
}

bool ReputationSystem::should_evict(NodeId supernode) const {
  return observations(supernode) >= config_.min_observations &&
         score(supernode) < config_.eviction_threshold;
}

std::vector<NodeId> ReputationSystem::evictions() const {
  std::vector<NodeId> out;
  for (const auto& [id, entry] : ledger_) {
    if (should_evict(id)) out.push_back(id);
  }
  return out;
}

void ReputationSystem::reset(NodeId supernode) { ledger_.erase(supernode); }

}  // namespace cloudfog::core
