// Deadline-driven sender buffer scheduling — paper Section III-C,
// Equations (12)–(14).
//
// The supernode keeps a single queuing buffer of video segments ordered by
// expected arrival time t_a = t_m + L~_r (the player's action time plus its
// game's response latency requirement); earlier deadlines transmit first.
//
// When a segment is enqueued the supernode estimates every queued segment's
// response latency
//     L_r = l_r + l_s + l_q + l_t + l_p                          (Eq 12)
// with l_q = np/lambda_r (preceding bytes over uplink rate), l_t = s/lambda_r
// and l_p the mean of the last m measured propagation delays to that player
// (Eq 13). A segment predicted to arrive D_i = (L_r - L~_r)/sigma packets
// too late triggers packet drops, allocated over it and its preceding
// segments proportionally to loss tolerance weighted by exponential decay
//     d_k = (L~_t_k * phi_k) / sum_j(L~_t_j * phi_j) * D_i       (Eq 14)
// with phi_k = e^(-lambda * wait_k). sigma is the mean latency shed per
// dropped packet (one packet's transmission time on this uplink).
//
// Interpretation note (documented in DESIGN.md): drops within a segment are
// additionally capped by the segment's loss-tolerance budget
// floor(L~_t * packet_count), so a scheduled game never exceeds its
// tolerable loss rate — this realises the paper's "drop packets while still
// meeting their packet loss rate requirements".
//
// Hot-loop layout (DESIGN.md §14): a queued segment stores no per-packet
// vector. packetize() emits `u` full 12-kbit packets followed by at most one
// tail packet whose size is whatever the iterative min/subtract loop leaves,
// so {packet_total, full_packets, tail_kbit} reconstructs every packet —
// and because drops always claim a suffix of the segment (the tail packets
// are the late ones) and sends always advance a prefix, the live window is
// [next_packet, packet_total - dropped) and remaining_kbit() is a closed
// form that matches the old per-packet summation bit for bit. Enqueue,
// estimate-and-drop and pop therefore run without any steady-state heap
// allocation (the queue vector and the Eq (14) scratch buffers keep their
// high-water capacity).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "stream/video.h"
#include "util/small_function.h"
#include "util/types.h"

namespace cloudfog::core {

/// Equation (14) allocation: splits `total` packet drops across segments
/// proportionally to their weights L~_t_k * phi_k (rounded to nearest).
/// Rounding may under- or over-shoot slightly; the scheduler's residual
/// pass (and per-segment tolerance caps) settles the difference. Exposed
/// for direct testing against the paper's formula.
std::vector<int> allocate_drops(const std::vector<double>& weights, int total);

/// In-place variant used on the hot path: resizes `out` to weights.size()
/// and writes each segment's share without allocating beyond out's capacity.
void allocate_drops_into(const std::vector<double>& weights, int total,
                         std::vector<int>& out);

struct DeadlineSchedulerConfig {
  /// lambda of the exponential decay phi = e^(-lambda * t), t in seconds the
  /// segment has waited (paper default lambda = 1).
  double decay_lambda_per_s = 1.0;
  /// m: how many recent propagation measurements per player to average
  /// (Eq 13). We map the paper's h_2 = 10 default here.
  std::size_t propagation_history = 10;
  /// Sender buffer capacity in segments (paper's h_1 = 100 default);
  /// enqueueing beyond it drops the whole new segment (buffer overflow).
  std::size_t max_queue_segments = 100;
  /// Fallback propagation estimate before any measurement exists.
  TimeMs default_propagation_ms = 20.0;
};

/// One queued segment plus its per-packet drop state, packets implicit:
/// index i < full_packets is a 12-kbit packet, index full_packets (when
/// tail_kbit > 0) is the tail. Sent packets are the prefix [0, next_packet);
/// dropped packets are the suffix [packet_total - dropped, packet_total).
struct QueuedSegment {
  stream::VideoSegment segment;
  TimeMs enqueued_ms = 0.0;
  int packet_total = 0;    // n: packets this segment splits into
  int full_packets = 0;    // u: leading packets of exactly kPacketKbit
  Kbit tail_kbit = 0.0;    // size of packet u (0 when none)
  int next_packet = 0;     // first unsent, possibly-dropped packet index
  int dropped = 0;         // packets marked dropped in this segment

  /// Scheduler-internal memo: index of this player's Eq (13) window in the
  /// scheduler's sorted window array, valid only while window_epoch matches
  /// the scheduler's counter (the array grew otherwise — its indices
  /// shifted). SIZE_MAX = the player had no window when last resolved. Lets
  /// the estimate-and-drop pass read the cached propagation mean with one
  /// indexed load instead of a binary search per queued segment.
  std::size_t window_idx = SIZE_MAX;
  std::uint64_t window_epoch = 0;

  /// Size of packet `index` as packetize() would have emitted it.
  Kbit packet_kbit(int index) const {
    return index < full_packets ? stream::kPacketKbit : tail_kbit;
  }
  int remaining_packets() const;   // unsent and not dropped
  Kbit remaining_kbit() const;     // size still to transmit
  int droppable() const;           // loss-tolerance budget still available
};

/// Builds the vectorless queue record for `segment` enqueued at `now`:
/// derives {packet_total, full_packets, tail_kbit} in closed form from
/// packetize()'s contract (shared by the deadline queue and the sender's
/// FIFO ring) without materialising the packets.
QueuedSegment make_queued_segment(const stream::VideoSegment& segment,
                                  TimeMs now);

/// The sender-buffer scheduler. It owns queue ordering and the drop policy;
/// actual transmission timing is driven by a sender (see SupernodeSender).
class DeadlineScheduler {
 public:
  DeadlineScheduler(Kbps uplink_kbps, DeadlineSchedulerConfig config);

  /// Inserts a segment in ascending expected-arrival order, then runs the
  /// Eq (12)–(14) estimate-and-drop pass over the queue. Returns false if
  /// the buffer was full and the segment was discarded.
  bool enqueue(const stream::VideoSegment& segment, TimeMs now);

  /// Observer invoked for every packet the Eq (14) policy drops — lets
  /// harnesses keep exact per-segment accounting. Receives the owning
  /// segment (carrying its delivery_tag) and the dropped packet's index.
  using DropObserver =
      util::small_function<void(const stream::VideoSegment& segment,
                                int packet_index)>;
  /// Optional pure sink with no legal-value constraint: null clears it,
  /// and every invocation site null-guards (see drop_from_segment).
  void set_drop_observer(DropObserver observer) { on_drop_ = std::move(observer); }  // lint:allow(trust-boundary)

  /// Records a measured propagation delay for a player (Eq 13 history).
  void record_propagation(NodeId player, TimeMs prop_ms);

  /// Mean of the last m measurements, or the configured default (Eq 13).
  TimeMs estimated_propagation_ms(NodeId player) const;

  /// Pops the next packet to transmit (earliest-deadline segment first,
  /// skipping dropped packets). Returns nullopt when the buffer is empty.
  struct NextPacket {
    stream::Packet packet;
    NodeId player = kInvalidNode;
    game::GameId game = -1;
    TimeMs segment_action_ms = 0.0;
    std::uint64_t delivery_tag = 0;  // the segment's tracker slab handle
  };
  std::optional<NextPacket> pop_packet(TimeMs now);

  /// A queued remainder released by drain_pending() (supernode churn: the
  /// departing supernode abandons its queue and the session fails over).
  struct PendingSegment {
    stream::VideoSegment segment;
    int remaining_packets = 0;  // unsent, not dropped
    Kbit remaining_kbit = 0.0;
  };
  /// Empties the queue, returning every segment that still had unsent live
  /// packets. No drop accounting runs — the packets are not shed by the
  /// Eq (14) policy, they leave with the supernode. Rare path; allocates.
  std::vector<PendingSegment> drain_pending();

  bool empty() const;
  std::size_t queued_segments() const { return queue_.size(); }
  std::size_t queued_packets() const;
  std::uint64_t total_dropped_packets() const { return total_dropped_; }
  std::uint64_t total_overflow_segments() const { return overflow_segments_; }
  Kbps uplink_kbps() const { return uplink_kbps_; }

  /// Eq (12) estimate for the queued segment at `position`, at time `now`:
  /// the predicted absolute arrival time of its last packet.
  TimeMs estimated_arrival_ms(std::size_t position, TimeMs now) const;

 private:
  /// Fixed-size Eq (13) sample window: a ring over the last m measurements,
  /// summed oldest-to-newest so the mean reproduces the old deque's
  /// front-to-back accumulation bit for bit. The mean is recomputed once
  /// per recorded sample (it cannot change between records), so the
  /// estimate probe — which estimate_and_drop runs for every queued
  /// segment on every enqueue — is a pure lookup.
  struct PropagationWindow {
    std::vector<TimeMs> samples;  // sized once to m on first record
    std::size_t next = 0;         // slot the next sample overwrites
    bool full = false;
    TimeMs mean = 0.0;  // oldest-to-newest sum / size, valid unless empty
  };

  /// Runs the estimate-and-drop pass (Eq 12 check + Eq 14 allocation).
  void estimate_and_drop(TimeMs now);

  /// Drops up to `want` packets from queue position `k`; returns dropped.
  int drop_from_segment(std::size_t k, int want);

  /// Binary search over the sorted `propagation_` vector; SIZE_MAX when the
  /// player has no window yet.
  std::size_t window_index_of(NodeId player) const;
  /// Same search, as a pointer; null when the player has no window yet.
  const PropagationWindow* find_window(NodeId player) const;
  /// Like find_window but inserts an empty window on miss (rare: once per
  /// player, the only time `propagation_` grows).
  PropagationWindow& window_for(NodeId player);

  Kbps uplink_kbps_;
  DeadlineSchedulerConfig config_;
  std::vector<QueuedSegment> queue_;  // ascending segment.deadline_ms
  DropObserver on_drop_;
  /// Eq (13) windows, sorted by player id. A supernode serves tens of
  /// players, so a binary search over a flat array beats a hash map on the
  /// packet path (record_propagation runs once per delivered packet, and
  /// estimate_and_drop probes a window per queued segment per enqueue).
  std::vector<std::pair<NodeId, PropagationWindow>> propagation_;
  /// One-entry memo for window_for: a segment's packets complete
  /// back-to-back for the same player, so the common case is a repeat of
  /// the previous lookup. An index stays valid across emplaces (window_for
  /// re-assigns it on every call), so no invalidation hook is needed.
  std::size_t last_window_ = SIZE_MAX;
  /// Bumped whenever `propagation_` grows (indices shift); validates the
  /// per-QueuedSegment window_idx memo. Starts at 1 so a fresh segment's
  /// epoch of 0 is always stale.
  std::uint64_t window_epoch_ = 1;
  std::vector<double> weights_scratch_;  // Eq (14) weights, reused per pass
  std::vector<int> shares_scratch_;      // Eq (14) shares, reused per pass
  std::uint64_t total_dropped_ = 0;
  std::uint64_t overflow_segments_ = 0;
};

}  // namespace cloudfog::core
