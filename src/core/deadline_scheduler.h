// Deadline-driven sender buffer scheduling — paper Section III-C,
// Equations (12)–(14).
//
// The supernode keeps a single queuing buffer of video segments ordered by
// expected arrival time t_a = t_m + L~_r (the player's action time plus its
// game's response latency requirement); earlier deadlines transmit first.
//
// When a segment is enqueued the supernode estimates every queued segment's
// response latency
//     L_r = l_r + l_s + l_q + l_t + l_p                          (Eq 12)
// with l_q = np/lambda_r (preceding bytes over uplink rate), l_t = s/lambda_r
// and l_p the mean of the last m measured propagation delays to that player
// (Eq 13). A segment predicted to arrive D_i = (L_r - L~_r)/sigma packets
// too late triggers packet drops, allocated over it and its preceding
// segments proportionally to loss tolerance weighted by exponential decay
//     d_k = (L~_t_k * phi_k) / sum_j(L~_t_j * phi_j) * D_i       (Eq 14)
// with phi_k = e^(-lambda * wait_k). sigma is the mean latency shed per
// dropped packet (one packet's transmission time on this uplink).
//
// Interpretation note (documented in DESIGN.md): drops within a segment are
// additionally capped by the segment's loss-tolerance budget
// floor(L~_t * packet_count), so a scheduled game never exceeds its
// tolerable loss rate — this realises the paper's "drop packets while still
// meeting their packet loss rate requirements".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stream/video.h"
#include "util/types.h"

namespace cloudfog::core {

/// Equation (14) allocation: splits `total` packet drops across segments
/// proportionally to their weights L~_t_k * phi_k (rounded to nearest).
/// Rounding may under- or over-shoot slightly; the scheduler's residual
/// pass (and per-segment tolerance caps) settles the difference. Exposed
/// for direct testing against the paper's formula.
std::vector<int> allocate_drops(const std::vector<double>& weights, int total);

struct DeadlineSchedulerConfig {
  /// lambda of the exponential decay phi = e^(-lambda * t), t in seconds the
  /// segment has waited (paper default lambda = 1).
  double decay_lambda_per_s = 1.0;
  /// m: how many recent propagation measurements per player to average
  /// (Eq 13). We map the paper's h_2 = 10 default here.
  std::size_t propagation_history = 10;
  /// Sender buffer capacity in segments (paper's h_1 = 100 default);
  /// enqueueing beyond it drops the whole new segment (buffer overflow).
  std::size_t max_queue_segments = 100;
  /// Fallback propagation estimate before any measurement exists.
  TimeMs default_propagation_ms = 20.0;
};

/// One queued segment plus its per-packet drop state.
struct QueuedSegment {
  stream::VideoSegment segment;
  TimeMs enqueued_ms = 0.0;
  std::vector<stream::Packet> packets;
  int next_packet = 0;     // first unsent, possibly-dropped packet index
  int dropped = 0;         // packets marked dropped in this segment

  int remaining_packets() const;   // unsent and not dropped
  Kbit remaining_kbit() const;     // size still to transmit
  int droppable() const;           // loss-tolerance budget still available
};

/// The sender-buffer scheduler. It owns queue ordering and the drop policy;
/// actual transmission timing is driven by a sender (see SupernodeSender).
class DeadlineScheduler {
 public:
  DeadlineScheduler(Kbps uplink_kbps, DeadlineSchedulerConfig config);

  /// Inserts a segment in ascending expected-arrival order, then runs the
  /// Eq (12)–(14) estimate-and-drop pass over the queue. Returns false if
  /// the buffer was full and the segment was discarded.
  bool enqueue(const stream::VideoSegment& segment, TimeMs now);

  /// Observer invoked for every packet the Eq (14) policy drops — lets
  /// harnesses keep exact per-segment accounting.
  using DropObserver = std::function<void(std::uint64_t segment_id, int packet_index)>;
  /// Optional pure sink with no legal-value constraint: null clears it,
  /// and every invocation site null-guards (see drop_from_segment).
  void set_drop_observer(DropObserver observer) { on_drop_ = std::move(observer); }  // lint:allow(trust-boundary)

  /// Records a measured propagation delay for a player (Eq 13 history).
  void record_propagation(NodeId player, TimeMs prop_ms);

  /// Mean of the last m measurements, or the configured default (Eq 13).
  TimeMs estimated_propagation_ms(NodeId player) const;

  /// Pops the next packet to transmit (earliest-deadline segment first,
  /// skipping dropped packets). Returns nullopt when the buffer is empty.
  struct NextPacket {
    stream::Packet packet;
    NodeId player = kInvalidNode;
    game::GameId game = -1;
    TimeMs segment_action_ms = 0.0;
  };
  std::optional<NextPacket> pop_packet(TimeMs now);

  bool empty() const;
  std::size_t queued_segments() const { return queue_.size(); }
  std::size_t queued_packets() const;
  std::uint64_t total_dropped_packets() const { return total_dropped_; }
  std::uint64_t total_overflow_segments() const { return overflow_segments_; }
  Kbps uplink_kbps() const { return uplink_kbps_; }

  /// Eq (12) estimate for the queued segment at `position`, at time `now`:
  /// the predicted absolute arrival time of its last packet.
  TimeMs estimated_arrival_ms(std::size_t position, TimeMs now) const;

 private:
  /// Runs the estimate-and-drop pass (Eq 12 check + Eq 14 allocation).
  void estimate_and_drop(TimeMs now);

  /// Drops up to `want` packets from queue position `k`; returns dropped.
  int drop_from_segment(std::size_t k, int want);

  Kbps uplink_kbps_;
  DeadlineSchedulerConfig config_;
  std::deque<QueuedSegment> queue_;  // ascending segment.deadline_ms
  DropObserver on_drop_;
  std::unordered_map<NodeId, std::deque<TimeMs>> propagation_;
  std::uint64_t total_dropped_ = 0;
  std::uint64_t overflow_segments_ = 0;
};

}  // namespace cloudfog::core
