#include "core/session_store.h"

#include <cmath>

#include "obs/metrics.h"

namespace cloudfog::core {

std::int64_t SessionStore::to_millikbps(Kbps kbps) {
  CF_CHECK_MSG(kbps >= 0.0, "bitrate must be non-negative");
  const auto mkbps = static_cast<std::int64_t>(std::llround(kbps * 1000.0));
  // Ledger exactness contract: the integer must reproduce the caller's
  // double bit-identically, or exact accounting would silently change
  // observable demand values.
  CF_CHECK_MSG(from_millikbps(mkbps) == kbps,
               "bitrate is not exactly representable in millikbps");
  return mkbps;
}

std::uint32_t SessionStore::alloc_slot() {
  if (free_head_ != kInvalidSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = next_[slot];
    CF_OBS_COUNT_HOT("core.session.slot_reuse", 1);
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(serve_.size());
  CF_CHECK_MSG(slot != kInvalidSlot, "session slab is full");
  serve_.emplace_back();
  player_.push_back(kInvalidNode);
  game_.push_back(-1);
  bitrate_mkbps_.push_back(0);
  backups_.emplace_back();
  gen_.push_back(0);
  prev_.push_back(kInvalidSlot);
  next_.push_back(kInvalidSlot);
  return slot;
}

SessionIdx SessionStore::open(NodeId player, game::GameId game,
                              Kbps bitrate_kbps) {
  CF_CHECK_MSG(!contains(player), "player already has a session");
  const std::int64_t mkbps = to_millikbps(bitrate_kbps);
  const std::uint32_t slot = alloc_slot();
  serve_[slot] = ServeState{};
  player_[slot] = player;
  game_[slot] = game;
  bitrate_mkbps_[slot] = mkbps;
  backups_[slot].clear();
  prev_[slot] = kInvalidSlot;
  next_[slot] = kInvalidSlot;
  const SessionIdx idx{slot, gen_[slot]};
  if (player >= handle_.size()) handle_.resize(player + 1);
  handle_[player] = idx;
  ++live_;
  CF_OBS_GAUGE_SET_HOT("core.session.slots_live", live_);
  CF_OBS_GAUGE_SET_HOT("core.session.handle_load_factor", handle_load_factor());
  return idx;
}

void SessionStore::close(SessionIdx idx) {
  const std::uint32_t slot = checked(idx);
  CF_CHECK_MSG(serve_[slot].supernode == kInvalidNode,
               "closing a session still attached to a supernode");
  handle_[player_[slot]] = SessionIdx{};
  player_[slot] = kInvalidNode;
  ++gen_[slot];  // invalidate outstanding handles to this slot
  next_[slot] = free_head_;
  free_head_ = slot;
  --live_;
  CF_OBS_GAUGE_SET_HOT("core.session.slots_live", live_);
  CF_OBS_GAUGE_SET_HOT("core.session.handle_load_factor", handle_load_factor());
}

Session SessionStore::snapshot(SessionIdx idx) const {
  const std::uint32_t slot = checked(idx);
  Session s;
  s.player = player_[slot];
  s.game = game_[slot];
  s.supernode = serve_[slot].supernode;
  s.backups = backups_[slot];
  s.stream_delay_ms = serve_[slot].delay_ms;
  s.bitrate_kbps = from_millikbps(bitrate_mkbps_[slot]);
  return s;
}

std::uint32_t SessionStore::server_slot(NodeId server) const {
  CF_CHECK_MSG(server_registered(server), "server is not registered");
  return server_slot_of_[server];
}

void SessionStore::register_server(NodeId server) {
  CF_CHECK_MSG(server != kInvalidNode, "invalid server id");
  CF_CHECK_MSG(!server_registered(server), "server already registered");
  std::uint32_t slot;
  if (!server_free_.empty()) {
    slot = server_free_.back();
    server_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(servers_.size());
    servers_.emplace_back();
  }
  // A recycled slot is guaranteed clean: unregister_server checks emptiness,
  // and the ledger invariant ties empty to zero demand.
  servers_[slot] = ServerEntry{};
  servers_[slot].server = server;
  if (server >= server_slot_of_.size()) {
    server_slot_of_.resize(server + 1, kInvalidSlot);
  }
  server_slot_of_[server] = slot;
}

void SessionStore::unregister_server(NodeId server) {
  const std::uint32_t slot = server_slot(server);
  ServerEntry& e = servers_[slot];
  CF_CHECK_MSG(e.count == 0,
               "unregistering a server with attached sessions — detach them "
               "first");
  CF_INVARIANT(e.demand_mkbps == 0,
               "an empty server's demand ledger must be exactly zero");
  e = ServerEntry{};
  server_slot_of_[server] = kInvalidSlot;
  server_free_.push_back(slot);
}

void SessionStore::attach(SessionIdx idx, NodeId server, TimeMs delay_ms) {
  const std::uint32_t slot = checked(idx);
  CF_CHECK_MSG(serve_[slot].supernode == kInvalidNode,
               "session is already attached");
  const std::uint32_t sslot = server_slot(server);
  ServerEntry& e = servers_[sslot];
  serve_[slot].supernode = server;
  serve_[slot].delay_ms = delay_ms;
  // Append at the tail: member order == attach order, exactly the order the
  // old served_ vector kept.
  prev_[slot] = e.tail;
  next_[slot] = kInvalidSlot;
  if (e.tail != kInvalidSlot) {
    next_[e.tail] = slot;
  } else {
    e.head = slot;
  }
  e.tail = slot;
  ++e.count;
  e.demand_mkbps += bitrate_mkbps_[slot];
  ++attached_;
}

void SessionStore::detach(SessionIdx idx) {
  const std::uint32_t slot = checked(idx);
  const NodeId server = serve_[slot].supernode;
  if (server == kInvalidNode) return;
  ServerEntry& e = servers_[server_slot(server)];
  // O(1) intrusive unlink — relative order of the remaining members is
  // untouched, exactly like the old erase-remove.
  const std::uint32_t p = prev_[slot];
  const std::uint32_t n = next_[slot];
  if (p != kInvalidSlot) next_[p] = n; else e.head = n;
  if (n != kInvalidSlot) prev_[n] = p; else e.tail = p;
  prev_[slot] = kInvalidSlot;
  next_[slot] = kInvalidSlot;
  CF_CHECK_MSG(e.count > 0, "detach from an empty server");
  --e.count;
  e.demand_mkbps -= bitrate_mkbps_[slot];
  CF_INVARIANT(e.demand_mkbps >= 0,
               "exact demand ledger must never go negative");
  serve_[slot].supernode = kInvalidNode;
  serve_[slot].delay_ms = 0.0;
  --attached_;
}

std::int64_t SessionStore::demand_millikbps(NodeId server) const {
  if (!server_registered(server)) return 0;
  return servers_[server_slot_of_[server]].demand_mkbps;
}

std::size_t SessionStore::member_count(NodeId server) const {
  if (!server_registered(server)) return 0;
  return servers_[server_slot_of_[server]].count;
}

void SessionStore::members(NodeId server, std::vector<NodeId>& out) const {
  out.clear();
  if (!server_registered(server)) return;
  const ServerEntry& e = servers_[server_slot_of_[server]];
  out.reserve(e.count);
  for (std::uint32_t slot = e.head; slot != kInvalidSlot; slot = next_[slot]) {
    out.push_back(player_[slot]);
  }
  CF_INVARIANT(out.size() == e.count,
               "member list length must match the server's member count");
}

std::size_t SessionStore::bytes_reserved() const {
  return serve_.capacity() * sizeof(ServeState) +
         player_.capacity() * sizeof(NodeId) +
         game_.capacity() * sizeof(game::GameId) +
         bitrate_mkbps_.capacity() * sizeof(std::int64_t) +
         backups_.capacity() * sizeof(BackupList) +
         gen_.capacity() * sizeof(std::uint32_t) +
         prev_.capacity() * sizeof(std::uint32_t) +
         next_.capacity() * sizeof(std::uint32_t) +
         handle_.capacity() * sizeof(SessionIdx) +
         servers_.capacity() * sizeof(ServerEntry) +
         server_slot_of_.capacity() * sizeof(std::uint32_t) +
         server_free_.capacity() * sizeof(std::uint32_t);
}

}  // namespace cloudfog::core
