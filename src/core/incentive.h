// Economic model of CloudFog — paper Section III-A1/A2, Equations (1)–(6).
//
// Two sides:
//   * A contributor earns  P_s(j) = c_s * c_j * u_j - cost_j   (Eq 1) and
//     contributes when the profit clears its own threshold.
//   * The game service provider saves bandwidth
//     B_r = n*R - Lambda*m                                      (Eq 2)
//     and maximises C_g = c_c * B_r - c_s * B_s                 (Eq 3)
//     subject to sum(c_j u_j) >= n*R (Eq 4) and u_j <= 1 (Eq 5); the
//     marginal value of one more supernode is
//     G_s(j) = c_c * (nu*R - Lambda) - c_s * c_j * u_j          (Eq 6).
//
// Monetary quantities are in reward-units per kbps (the paper leaves the
// unit abstract); bandwidths in kbps.
#pragma once

#include <vector>

#include "util/types.h"

namespace cloudfog::core {

/// Pricing knobs shared by both sides of the market.
struct IncentiveParams {
  double reward_per_kbps = 0.5;   // c_s: reward per unit of contributed upload
  double value_per_kbps = 1.0;    // c_c: provider's value of saved cloud upload
  Kbps update_stream_kbps = 100;  // Lambda: cloud->supernode update bandwidth
  Kbps stream_rate_kbps = 800;    // R: game video streaming rate
};

/// One candidate supernode in the provider's deployment decision.
struct SupernodeOffer {
  NodeId host = kInvalidNode;
  Kbps upload_kbps = 0.0;   // c_j
  double utilization = 1.0; // u_j in [0, 1]
  double contributor_cost = 0.0;  // cost_j (same unit as rewards)
  double new_players_covered = 0.0;  // nu: coverage gain if deployed
};

/// Equation (1): contributor profit of supernode j.
double supernode_profit(const IncentiveParams& params, Kbps upload_kbps,
                        double utilization, double contributor_cost);

/// Equation (2): bandwidth reduction of CloudFog vs. the all-cloud system,
/// for n supernode-supported players and m supernodes.
Kbps bandwidth_reduction(const IncentiveParams& params, double n_supported,
                         double m_supernodes);

/// Equation (3) objective value for a concrete deployment (not maximised):
/// C_g = c_c * B_r - c_s * B_s, where B_s = sum(c_j * u_j).
/// Returns the saving; callers check feasibility with `deployment_feasible`.
double provider_saving(const IncentiveParams& params, double n_supported,
                       const std::vector<SupernodeOffer>& deployed);

/// Equations (4) and (5): the deployment supports n players and respects
/// per-node utilization bounds.
bool deployment_feasible(const IncentiveParams& params, double n_supported,
                         const std::vector<SupernodeOffer>& deployed);

/// Equation (6): provider's marginal gain of deploying offer j.
double marginal_gain(const IncentiveParams& params, const SupernodeOffer& offer);

/// Greedy deployment: accepts offers in descending marginal gain while the
/// gain is positive — the provider-side decision rule the paper derives from
/// Eq (6). Returns indices into `offers` in acceptance order.
std::vector<std::size_t> greedy_deployment(const IncentiveParams& params,
                                           const std::vector<SupernodeOffer>& offers);

}  // namespace cloudfog::core
