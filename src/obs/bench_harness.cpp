#include "obs/bench_harness.h"

#include <algorithm>
#include <iostream>

#include "obs/exporters.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/flags.h"

namespace cloudfog::obs {

const std::string kBenchResultPrefix = "bench.result.";
const std::string kSweepResultPrefix = "bench.sweep.";

const std::vector<std::string>& bench_flag_keys() {
  static const std::vector<std::string> keys{
      "metrics-out", "trace-out", "bench-json", "bench-warmup",
      "bench-repeats"};
  return keys;
}

BenchOptions bench_options_from_flags(const util::Flags& flags,
                                      const std::string& bench_name) {
  BenchOptions o;
  o.metrics_out = flags.get("metrics-out", "");
  o.trace_out = flags.get("trace-out", "");
  if (flags.has("bench-json")) {
    o.bench_json = flags.get("bench-json", "");
    if (o.bench_json.empty()) o.bench_json = "BENCH_" + bench_name + ".json";
  }
  o.warmup = static_cast<int>(flags.get_int("bench-warmup", 0));
  o.repeats = static_cast<int>(flags.get_int("bench-repeats", 1));
  return o;
}

std::string bench_flags_help() {
  return "  --bench-json[=PATH]    emit BENCH_<name>.json (wall time, events/sec,\n"
         "                         peak queue depth, timer breakdown)\n"
         "  --metrics-out=PATH     metrics dump (.json / .csv / .jsonl)\n"
         "  --trace-out=PATH       Chrome trace_event JSON (open in Perfetto)\n"
         "  --bench-warmup=N       unmeasured warmup runs            [0]\n"
         "  --bench-repeats=N      measured runs                     [1]\n";
}

namespace {

std::string bench_json_document(const std::string& name,
                                const BenchOptions& options,
                                const std::vector<double>& wall_ms,
                                const MetricsRegistry& registry) {
  std::string out = "{\"schema_version\":1,\"bench\":\"" + json::escape(name) +
                    "\",\"warmup\":" + std::to_string(options.warmup) +
                    ",\"repeats\":" + std::to_string(options.repeats);

  double total = 0.0, lo = 0.0, hi = 0.0;
  for (std::size_t i = 0; i < wall_ms.size(); ++i) {
    total += wall_ms[i];
    lo = i == 0 ? wall_ms[i] : std::min(lo, wall_ms[i]);
    hi = i == 0 ? wall_ms[i] : std::max(hi, wall_ms[i]);
  }
  const double mean =
      wall_ms.empty() ? 0.0 : total / static_cast<double>(wall_ms.size());
  out += ",\"wall_ms\":{\"runs\":[";
  for (std::size_t i = 0; i < wall_ms.size(); ++i) {
    if (i > 0) out += ",";
    out += json::num(wall_ms[i]);
  }
  out += "],\"mean\":" + json::num(mean) + ",\"min\":" + json::num(lo) +
         ",\"max\":" + json::num(hi) + "}";

  // Events/sec and peak queue depth come from the instrumented simulator;
  // both read 0 when the bench never runs one.
  const Counter* executed = registry.find_counter("sim.events.executed");
  const Gauge* depth = registry.find_gauge("sim.queue.depth");
  const std::uint64_t events = executed != nullptr ? executed->value() : 0;
  const double last_ms = wall_ms.empty() ? 0.0 : wall_ms.back();
  const double per_sec =
      last_ms > 0.0 ? static_cast<double>(events) / (last_ms / 1000.0) : 0.0;
  out += ",\"events\":{\"executed\":" + std::to_string(events) +
         ",\"per_sec\":" + json::num(per_sec) + "}";
  out += ",\"peak_queue_depth\":" +
         json::num(depth != nullptr ? depth->max() : 0.0);

  std::string counters, timers, results, sweeps;
  registry.for_each([&](const std::string& metric, const Counter* c,
                        const Gauge* g, const Histogram* h) {
    if (c != nullptr) {
      if (!counters.empty()) counters += ",";
      counters += "\"" + json::escape(metric) + "\":" + std::to_string(c->value());
    } else if (g != nullptr && metric.rfind(kBenchResultPrefix, 0) == 0) {
      // Per-benchmark results published by the body (google-benchmark
      // reporters, custom timing loops) via record_bench_result().
      if (!results.empty()) results += ",";
      results += "\"" +
                 json::escape(metric.substr(kBenchResultPrefix.size())) +
                 "\":" + json::num(g->value());
    } else if (g != nullptr && metric.rfind(kSweepResultPrefix, 0) == 0) {
      // Per-sweep wall time published via record_sweep_wall_ms().
      if (!sweeps.empty()) sweeps += ",";
      sweeps += "\"" +
                json::escape(metric.substr(kSweepResultPrefix.size())) +
                "\":" + json::num(g->value());
    } else if (h != nullptr && metric.rfind("timers.", 0) == 0) {
      if (!timers.empty()) timers += ",";
      timers += "\"" + json::escape(metric) + "\":{\"count\":" +
                std::to_string(h->count()) + ",\"total\":" + json::num(h->sum()) +
                ",\"mean\":" + json::num(h->mean()) +
                ",\"p95\":" + json::num(h->quantile(0.95)) + "}";
    }
  });
  out += ",\"counters\":{" + counters + "},\"timers_ms\":{" + timers +
         "},\"benchmarks\":{" + results + "},\"sweeps\":{" + sweeps + "}}";
  return out;
}

}  // namespace

void record_bench_result(const std::string& name, double ns_per_op) {
  CF_OBS_GAUGE_SET((kBenchResultPrefix + name), ns_per_op);
}

void record_sweep_wall_ms(const std::string& label, double wall_ms) {
  CF_OBS_GAUGE_SET((kSweepResultPrefix + label), wall_ms);
}

BenchHarness::BenchHarness(std::string name, BenchOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  CF_CHECK_GE(options_.warmup, 0);
  CF_CHECK_GE(options_.repeats, 1);
}

int BenchHarness::run(const std::function<int()>& body) {
  const bool collect = !options_.metrics_out.empty() ||
                       !options_.trace_out.empty() ||
                       !options_.bench_json.empty();
  if (!collect) return body();

  MetricsRegistry registry;
  TraceRecorder recorder;
  ScopedRegistry install_registry(registry);
  ScopedTracer install_tracer(recorder);

  for (int i = 0; i < options_.warmup; ++i) {
    const int rc = body();
    if (rc != 0) return rc;
  }
  registry.reset();
  recorder.clear();

  std::vector<double> wall_ms;
  wall_ms.reserve(static_cast<std::size_t>(options_.repeats));
  for (int i = 0; i < options_.repeats; ++i) {
    // Artifacts snapshot the final repeat; earlier measured repeats
    // contribute wall time only.
    if (i > 0) registry.reset();
    const std::uint64_t start_us = wall_now_us();
    const int rc = body();
    wall_ms.push_back(static_cast<double>(wall_now_us() - start_us) / 1000.0);
    if (rc != 0) return rc;
  }

  int exit_code = 0;
  if (!options_.bench_json.empty()) {
    const std::string doc =
        bench_json_document(name_, options_, wall_ms, registry);
    if (write_file(options_.bench_json, doc)) {
      std::cout << "wrote " << options_.bench_json << "\n";
    } else {
      std::cerr << "cannot write " << options_.bench_json << "\n";
      exit_code = 1;
    }
  }
  if (!options_.metrics_out.empty()) {
    if (write_metrics(registry, options_.metrics_out)) {
      std::cout << "wrote " << options_.metrics_out << "\n";
    } else {
      std::cerr << "cannot write " << options_.metrics_out << "\n";
      exit_code = 1;
    }
  }
  if (!options_.trace_out.empty()) {
    if (write_file(options_.trace_out, recorder.to_chrome_json())) {
      std::cout << "wrote " << options_.trace_out << "\n";
    } else {
      std::cerr << "cannot write " << options_.trace_out << "\n";
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace cloudfog::obs
