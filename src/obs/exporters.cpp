#include "obs/exporters.h"

#include <fstream>

#include "obs/json.h"

namespace cloudfog::obs {

namespace {

std::string histogram_json(const Histogram& h) {
  std::string out = "{\"count\":" + std::to_string(h.count());
  out += ",\"sum\":" + json::num(h.sum());
  out += ",\"mean\":" + json::num(h.mean());
  out += ",\"min\":" + json::num(h.min());
  out += ",\"max\":" + json::num(h.max());
  out += ",\"p50\":" + json::num(h.quantile(0.50));
  out += ",\"p95\":" + json::num(h.quantile(0.95));
  out += ",\"p99\":" + json::num(h.quantile(0.99));
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [edge, count] : h.nonzero_buckets()) {
    if (!first) out += ",";
    first = false;
    out += "[" + json::num(edge) + "," + std::to_string(count) + "]";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& registry) {
  std::string counters, gauges, histograms;
  registry.for_each([&](const std::string& name, const Counter* c,
                        const Gauge* g, const Histogram* h) {
    if (c != nullptr) {
      if (!counters.empty()) counters += ",";
      counters += "\"" + json::escape(name) + "\":" + std::to_string(c->value());
    } else if (g != nullptr) {
      if (!gauges.empty()) gauges += ",";
      gauges += "\"" + json::escape(name) + "\":{\"value\":" +
                json::num(g->value()) + ",\"max\":" + json::num(g->max()) + "}";
    } else if (h != nullptr) {
      if (!histograms.empty()) histograms += ",";
      histograms += "\"" + json::escape(name) + "\":" + histogram_json(*h);
    }
  });
  return "{\"schema_version\":1,\"counters\":{" + counters + "},\"gauges\":{" +
         gauges + "},\"histograms\":{" + histograms + "}}";
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "kind,name,field,value\n";
  const auto row = [&out](const char* kind, const std::string& name,
                          const char* field, const std::string& value) {
    out += kind;
    out += ",";
    // Metric names are identifier-like by convention; quote defensively if
    // one ever contains a comma.
    if (name.find(',') != std::string::npos) {
      out += "\"" + name + "\"";
    } else {
      out += name;
    }
    out += ",";
    out += field;
    out += ",";
    out += value;
    out += "\n";
  };
  registry.for_each([&](const std::string& name, const Counter* c,
                        const Gauge* g, const Histogram* h) {
    if (c != nullptr) {
      row("counter", name, "value", std::to_string(c->value()));
    } else if (g != nullptr) {
      row("gauge", name, "value", json::num(g->value()));
      row("gauge", name, "max", json::num(g->max()));
    } else if (h != nullptr) {
      row("histogram", name, "count", std::to_string(h->count()));
      row("histogram", name, "mean", json::num(h->mean()));
      row("histogram", name, "min", json::num(h->min()));
      row("histogram", name, "max", json::num(h->max()));
      row("histogram", name, "p50", json::num(h->quantile(0.50)));
      row("histogram", name, "p95", json::num(h->quantile(0.95)));
      row("histogram", name, "p99", json::num(h->quantile(0.99)));
    }
  });
  return out;
}

std::string metrics_to_jsonl(const MetricsRegistry& registry) {
  std::string out;
  registry.for_each([&](const std::string& name, const Counter* c,
                        const Gauge* g, const Histogram* h) {
    const std::string quoted = "\"" + json::escape(name) + "\"";
    if (c != nullptr) {
      out += "{\"kind\":\"counter\",\"name\":" + quoted +
             ",\"value\":" + std::to_string(c->value()) + "}\n";
    } else if (g != nullptr) {
      out += "{\"kind\":\"gauge\",\"name\":" + quoted +
             ",\"value\":" + json::num(g->value()) +
             ",\"max\":" + json::num(g->max()) + "}\n";
    } else if (h != nullptr) {
      out += "{\"kind\":\"histogram\",\"name\":" + quoted +
             ",\"stats\":" + histogram_json(*h) + "}\n";
    }
  });
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) return false;
  os << content;
  os.flush();
  return os.good();
}

bool write_metrics(const MetricsRegistry& registry, const std::string& path) {
  const auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".csv")) return write_file(path, metrics_to_csv(registry));
  if (ends_with(".jsonl")) return write_file(path, metrics_to_jsonl(registry));
  return write_file(path, metrics_to_json(registry));
}

}  // namespace cloudfog::obs
