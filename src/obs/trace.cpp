#include "obs/trace.h"

#include <atomic>

#include "obs/json.h"
#include "util/check.h"

namespace cloudfog::obs {

namespace {
// Thread-scoped like the metrics registry install (DESIGN.md §9): a worker
// thread traces only if something running on it installs a recorder. The
// recorder itself stays mutex-guarded, so one recorder explicitly installed
// on several threads still works.
thread_local TraceRecorder* t_tracer = nullptr;
}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  CF_CHECK_GE(capacity, 1u);
}

bool TraceRecorder::admit() {
  // Caller holds mutex_.
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::span(std::string_view name, std::string_view category,
                         double start_us, double duration_us,
                         std::uint32_t track) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!admit()) return;
  events_.push_back(Event{std::string(name), std::string(category),
                          Phase::kComplete, start_us, duration_us, 0.0, track});
}

void TraceRecorder::instant(std::string_view name, std::string_view category,
                            double ts_us, std::uint32_t track) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!admit()) return;
  events_.push_back(Event{std::string(name), std::string(category),
                          Phase::kInstant, ts_us, 0.0, 0.0, track});
}

void TraceRecorder::counter(std::string_view name, double ts_us, double value,
                            std::uint32_t track) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!admit()) return;
  events_.push_back(Event{std::string(name), "counter", Phase::kCounter, ts_us,
                          0.0, value, track});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(events_.size() * 96 + 512);
  out += "{\"traceEvents\":[";
  // Name the two tracks so the viewer labels sim vs wall time.
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"sim time (us = sim ms x1000)\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"wall time\"}}";
  for (const Event& e : events_) {
    out += ",{\"name\":\"";
    out += json::escape(e.name);
    out += "\",\"cat\":\"";
    out += json::escape(e.category.empty() ? "cloudfog" : e.category);
    out += "\",\"ph\":\"";
    out += static_cast<char>(e.phase);
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    out += json::num(e.ts_us);
    if (e.phase == Phase::kComplete) {
      out += ",\"dur\":";
      out += json::num(e.dur_us);
    }
    if (e.phase == Phase::kInstant) {
      out += ",\"s\":\"t\"";
    }
    if (e.phase == Phase::kCounter) {
      out += ",\"args\":{\"value\":";
      out += json::num(e.value);
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":\"cloudfog/obs\","
         "\"droppedEvents\":";
  out += std::to_string(dropped_);
  out += "}}";
  return out;
}

TraceRecorder* tracer() { return t_tracer; }

TraceRecorder* set_tracer(TraceRecorder* t) {
  TraceRecorder* previous = t_tracer;
  t_tracer = t;
  return previous;
}

}  // namespace cloudfog::obs
