// The repo's single wall-clock boundary.
//
// Everything outside src/obs is forbidden to read the host clock
// (scripts/cflint, rule `wall-clock`; src/obs is the exempt measurement
// boundary). Wall time is strictly for *measurement* — scoped
// timers feeding histograms and trace spans — and must never flow back
// into simulation state; simulation time comes from sim::Simulator::now().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace cloudfog::obs {

/// Monotonic wall-clock microseconds since an arbitrary process-local
/// epoch. The only host-clock read in the repo.
std::uint64_t wall_now_us();

/// RAII wall-clock timer: records the scope's duration (in milliseconds)
/// into the named histogram of the active registry, and mirrors it as a
/// trace span when a TraceRecorder is installed (see obs/trace.h). Costs a
/// branch when collection is disabled — no clock read happens.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace cloudfog::obs

// Times the enclosing scope under `name` (a "timers.<subsystem>.<what>"
// histogram plus a trace span). No-op without an installed registry/tracer.
#define CF_TIMED_SCOPE_CAT2(a, b) a##b
#define CF_TIMED_SCOPE_CAT(a, b) CF_TIMED_SCOPE_CAT2(a, b)
#define CF_TIMED_SCOPE(name) \
  ::cloudfog::obs::ScopedTimer CF_TIMED_SCOPE_CAT(cf_timed_scope_, __LINE__)(name)
