// Event tracer with Chrome trace_event JSON export.
//
// Records spans (complete "X" events), instants ("i") and counter samples
// ("C") into an in-memory buffer; to_chrome_json() serialises the buffer in
// the Trace Event Format that chrome://tracing and https://ui.perfetto.dev
// load directly.
//
// Two time domains share one trace, separated by track (tid):
//   * tid 0 ("sim")  — timestamps are simulation milliseconds (recorded as
//     microseconds, the format's unit), fed by callers passing
//     sim::Simulator::now()-derived stamps;
//   * tid 1 ("wall") — wall-clock spans from obs::ScopedTimer, relative to
//     the recorder's construction.
//
// Like the metrics registry, the tracer is a pure sink behind a globally
// installed pointer that defaults to null; see DESIGN.md §7.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cloudfog::obs {

/// Track ids (Chrome trace "tid") separating the two time domains.
inline constexpr std::uint32_t kSimTrack = 0;
inline constexpr std::uint32_t kWallTrack = 1;

class TraceRecorder {
 public:
  /// `capacity` bounds the number of retained events; once full, further
  /// events are counted but dropped (the export notes the drop count).
  explicit TraceRecorder(std::size_t capacity = 1 << 20);

  /// Complete span: [start_us, start_us + duration_us) on `track`.
  void span(std::string_view name, std::string_view category,
            double start_us, double duration_us, std::uint32_t track);

  /// Instant event at `ts_us`.
  void instant(std::string_view name, std::string_view category, double ts_us,
               std::uint32_t track);

  /// Counter sample: renders as a stacked value track in the viewer.
  void counter(std::string_view name, double ts_us, double value,
               std::uint32_t track);

  std::size_t event_count() const;
  std::uint64_t dropped_count() const;

  /// Serialises to Chrome trace JSON: {"traceEvents": [...], ...}.
  std::string to_chrome_json() const;

  void clear();

 private:
  enum class Phase : char { kComplete = 'X', kInstant = 'i', kCounter = 'C' };

  struct Event {
    std::string name;
    std::string category;
    Phase phase;
    double ts_us;
    double dur_us;   // kComplete only
    double value;    // kCounter only
    std::uint32_t track;
  };

  bool admit();

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

/// The calling thread's tracer (null = tracing disabled on this thread),
/// mirroring the metrics registry's thread-scoped install pattern.
TraceRecorder* tracer();
TraceRecorder* set_tracer(TraceRecorder* t);

class ScopedTracer {
 public:
  explicit ScopedTracer(TraceRecorder& t) : previous_(set_tracer(&t)) {}
  ~ScopedTracer() { set_tracer(previous_); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  TraceRecorder* previous_;
};

/// Records an instant on the sim track when tracing is on. `sim_ms` is
/// simulation time in milliseconds.
inline void trace_sim_instant(std::string_view name, std::string_view category,
                              double sim_ms) {
  if (TraceRecorder* t = tracer()) t->instant(name, category, sim_ms * 1000.0, kSimTrack);
}

/// Records a counter sample on the sim track when tracing is on.
inline void trace_sim_counter(std::string_view name, double sim_ms, double value) {
  if (TraceRecorder* t = tracer()) t->counter(name, sim_ms * 1000.0, value, kSimTrack);
}

}  // namespace cloudfog::obs
