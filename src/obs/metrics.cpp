#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace cloudfog::obs {

namespace {

/// Atomic max over a double — CAS loop, relaxed (metrics are sinks; no
/// ordering with simulation state is needed).
void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace internal {
constinit thread_local MetricsRegistry* t_registry = nullptr;
constinit thread_local std::uint64_t t_epoch = 1;
}  // namespace internal

void Gauge::set(double v) {
  value_.store(v, std::memory_order_relaxed);
  atomic_max(max_, v);
  if (!ever_set_.load(std::memory_order_relaxed)) {
    ever_set_.store(true, std::memory_order_relaxed);
  }
}

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  ever_set_.store(false, std::memory_order_relaxed);
}

void Gauge::merge_from(const Gauge& other) {
  if (!other.ever_set()) return;
  value_.store(other.value(), std::memory_order_relaxed);
  atomic_max(max_, other.max());
  ever_set_.store(true, std::memory_order_relaxed);
}

Histogram::Histogram(Options options) : options_(options) {
  CF_CHECK_GE(options_.sub_buckets, 1u);
  CF_CHECK_GE(options_.max_exponent, 1u);
  // One linear range for [0, 1), then max_exponent geometric ranges of
  // sub_buckets slots each, plus a final overflow bucket.
  buckets_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(options_.max_exponent + 1) * options_.sub_buckets + 1);
}

std::size_t Histogram::bucket_index(double v) const {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN clamp to the first bucket
  const auto sub = static_cast<double>(options_.sub_buckets);
  if (v < 1.0) {
    // Linear range [0, 1): sub_buckets equal slots.
    return static_cast<std::size_t>(v * sub);
  }
  const int exponent = std::min(static_cast<int>(std::floor(std::log2(v))),
                                static_cast<int>(options_.max_exponent) - 1);
  // Position within [2^e, 2^(e+1)): which of the sub_buckets linear slots.
  const double base = std::ldexp(1.0, exponent);
  auto slot = static_cast<std::size_t>((v - base) / base * sub);
  slot = std::min<std::size_t>(slot, options_.sub_buckets - 1);
  const std::size_t index =
      (static_cast<std::size_t>(exponent) + 1) * options_.sub_buckets + slot;
  return std::min(index, buckets_.size() - 1);
}

double Histogram::bucket_upper_edge(std::size_t index) const {
  const auto sub = static_cast<double>(options_.sub_buckets);
  if (index < options_.sub_buckets) {
    return (static_cast<double>(index) + 1.0) / sub;  // linear [0, 1) range
  }
  if (index >= buckets_.size() - 1) {
    return std::ldexp(1.0, static_cast<int>(options_.max_exponent));
  }
  const std::size_t range = index / options_.sub_buckets - 1;
  const std::size_t slot = index % options_.sub_buckets;
  const double base = std::ldexp(1.0, static_cast<int>(range));
  return base + base * (static_cast<double>(slot) + 1.0) / sub;
}

void Histogram::record(double v) {
  // Clamp before *all* aggregates, not just the bucket index, so min/sum
  // and the bucketed quantiles agree on what was recorded.
  if (!(v > 0.0)) v = 0.0;  // also maps NaN to 0
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

void Histogram::record_single_writer(double v) {
  if (!(v > 0.0)) v = 0.0;  // same clamp as record()
  auto& bucket = buckets_[bucket_index(v)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  count_.store(count_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  sum_.store(sum_.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
  if (v < min_.load(std::memory_order_relaxed)) {
    min_.store(v, std::memory_order_relaxed);
  }
  if (v > max_.load(std::memory_order_relaxed)) {
    max_.store(v, std::memory_order_relaxed);
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper_edge(i);
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

void Histogram::merge_from(const Histogram& other) {
  CF_CHECK_MSG(options_.sub_buckets == other.options_.sub_buckets &&
                   options_.max_exponent == other.options_.max_exponent,
               "histogram merge requires identical bucket layouts");
  if (other.count() == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  atomic_min(min_, other.min_.load(std::memory_order_relaxed));
  atomic_max(max_, other.max_.load(std::memory_order_relaxed));
}

std::vector<std::pair<double, std::uint64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) out.emplace_back(bucket_upper_edge(i), c);
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    auto inserted = entries_.emplace(std::string(name), std::make_unique<Entry>());
    it = inserted.first;
    it->second->name = it->first;
    order_.push_back(it->second.get());
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name);
  CF_CHECK_MSG(!e.gauge && !e.histogram,
               "metric name already registered with a different kind");
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name);
  CF_CHECK_MSG(!e.counter && !e.histogram,
               "metric name already registered with a different kind");
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Histogram::Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(name);
  CF_CHECK_MSG(!e.counter && !e.gauge,
               "metric name already registered with a different kind");
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(options);
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second->counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second->gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second->histogram.get();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry* e : order_) {
    if (e->counter) e->counter->reset();
    if (e->gauge) e->gauge->reset();
    if (e->histogram) e->histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Instruments are resolved through the public accessors (create on first
  // use, kind checked). `other`'s for_each holds its own mutex; the
  // accessors lock ours — distinct objects, so no lock-order cycle (and
  // merging a registry into itself is a caller error anyway).
  CF_CHECK_MSG(this != &other, "registry cannot merge into itself");
  other.for_each([this](const std::string& name, const Counter* c,
                        const Gauge* g, const Histogram* h) {
    if (c != nullptr) {
      counter(name).merge_from(*c);
    } else if (g != nullptr) {
      gauge(name).merge_from(*g);
    } else if (h != nullptr) {
      histogram(name, h->options()).merge_from(*h);
    }
  });
}

MetricsRegistry* set_registry(MetricsRegistry* r) {
  // Epoch first: a callsite cache that observes the new registry is then
  // guaranteed to also observe a moved epoch and re-resolve. Both slots
  // are thread-local, so this swaps the calling thread's install only.
  ++internal::t_epoch;
  MetricsRegistry* previous = internal::t_registry;
  internal::t_registry = r;
  return previous;
}

}  // namespace cloudfog::obs
