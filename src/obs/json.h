// Minimal JSON support for the observability exporters.
//
// Writing: escape() and num() format strings/doubles the way every obs
// exporter needs (doubles print round-trippable and locale-independent,
// NaN/inf degrade to null — JSON has no representation for them).
//
// Reading: a small recursive-descent parser used by the schema tests to
// prove that emitted Chrome traces and BENCH_*.json artifacts are
// well-formed without taking a third-party dependency. It is not a general
// JSON library: good errors and strictness over speed, document sizes are
// test-scale.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cloudfog::obs::json {

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(std::string_view s);

/// Formats a double as a JSON number token (shortest round-trip form);
/// NaN/inf become "null".
std::string num(double v);

/// Parsed JSON value (object keys keep lexicographic order via std::map —
/// deterministic, which is all the tests need).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;       // human message when !ok
  std::size_t error_pos = 0;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
ParseResult parse(std::string_view text);

}  // namespace cloudfog::obs::json
