#include "obs/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace cloudfog::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc()) return "null";
  return std::string(buf.data(), ptr);
}

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      result.error_pos = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after JSON document";
      result.error_pos = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::kString; return parse_string(out.string);
      case 't':
      case 'f': return parse_literal(out);
      case 'n': return parse_literal(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(Value& out) {
    const auto rest = text_.substr(pos_);
    if (rest.starts_with("true")) {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (rest.starts_with("false")) {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (rest.starts_with("null")) {
      out.kind = Value::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    const std::string_view token = text_.substr(start, pos_ - start);
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // Tests only need BMP round-tripping; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Value element;
      skip_ws();
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cloudfog::obs::json
