#include "obs/timer.h"

#include <chrono>

#include "obs/trace.h"

namespace cloudfog::obs {

std::uint64_t wall_now_us() {
  // The one sanctioned host-clock read (lint rule obs-clock exempts
  // src/obs); results feed measurement sinks only, never simulation state.
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}

namespace {
/// Process-local epoch so wall trace timestamps start near zero.
std::uint64_t wall_epoch_us() {
  static const std::uint64_t epoch = wall_now_us();
  return epoch;
}
}  // namespace

ScopedTimer::ScopedTimer(std::string_view name) {
  // Only pay for the clock read when someone is listening.
  if (registry() == nullptr && tracer() == nullptr) return;
  name_ = std::string(name);
  wall_epoch_us();  // pin the epoch before the first span starts
  start_us_ = wall_now_us();
  active_ = true;
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const std::uint64_t end_us = wall_now_us();
  const double elapsed_us = static_cast<double>(end_us - start_us_);
  if (MetricsRegistry* r = registry()) {
    r->histogram(name_).record(elapsed_us / 1000.0);  // milliseconds
  }
  if (TraceRecorder* t = tracer()) {
    t->span(name_, "timer",
            static_cast<double>(start_us_ - wall_epoch_us()), elapsed_us,
            kWallTrack);
  }
}

}  // namespace cloudfog::obs
