// Serialisation of a MetricsRegistry snapshot.
//
//   * metrics_to_json — one self-describing JSON document (counters,
//     gauges with peak, histograms with count/mean/min/max/quantiles and
//     the non-empty bucket list). Schema below.
//   * metrics_to_csv  — flat rows `kind,name,field,value` for spreadsheet
//     ingestion.
//   * metrics_to_jsonl — one JSON object per metric per line, suited to
//     appending snapshots over time into a single stream.
//
// JSON schema (schema_version 1):
//   { "schema_version": 1,
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": {"value": <num>, "max": <num>}, ... },
//     "histograms": { "<name>": {"count": <uint>, "sum": <num>,
//                                "mean": <num>, "min": <num>, "max": <num>,
//                                "p50": <num>, "p95": <num>, "p99": <num>,
//                                "buckets": [[<upper_edge>, <count>], ...]},
//                     ... } }
#pragma once

#include <string>

#include "obs/metrics.h"

namespace cloudfog::obs {

std::string metrics_to_json(const MetricsRegistry& registry);
std::string metrics_to_csv(const MetricsRegistry& registry);
std::string metrics_to_jsonl(const MetricsRegistry& registry);

/// Writes `content` to `path` atomically enough for our purposes (truncate
/// + write + close). Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

/// Dispatches on extension: ".csv" -> CSV, ".jsonl" -> JSONL, anything
/// else -> the JSON document. Returns false on I/O failure.
bool write_metrics(const MetricsRegistry& registry, const std::string& path);

}  // namespace cloudfog::obs
