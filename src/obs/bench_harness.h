// Bench-harness: wraps a benchmark binary's body in warmup + repeated
// timed runs and emits machine-readable artifacts.
//
//   --bench-json[=PATH]   BENCH_<name>.json (default name when bare):
//                         wall-time per repeat, events/sec, peak simulator
//                         queue depth, counter snapshot and per-subsystem
//                         timer breakdown. Schema documented below.
//   --metrics-out=PATH    full metrics dump (extension picks json/csv/jsonl,
//                         see obs/exporters.h)
//   --trace-out=PATH      Chrome trace_event JSON (chrome://tracing,
//                         https://ui.perfetto.dev)
//   --bench-warmup=N      unmeasured runs of the body first        [0]
//   --bench-repeats=N     measured runs (artifacts snapshot the last) [1]
//
// All outputs default to off; without any, the body runs exactly once with
// collection disabled — the binary behaves as it did before the harness
// existed.
//
// BENCH_<name>.json schema (schema_version 1):
//   { "schema_version": 1, "bench": "<name>",
//     "warmup": <int>, "repeats": <int>,
//     "wall_ms": {"runs": [<num>...], "mean": <num>, "min": <num>,
//                 "max": <num>},
//     "events": {"executed": <uint>, "per_sec": <num>},
//     "peak_queue_depth": <num>,
//     "counters": {"<name>": <uint>, ...},
//     "timers_ms": {"<name>": {"count": <uint>, "total": <num>,
//                              "mean": <num>, "p95": <num>}, ...},
//     "benchmarks": {"<case>": <ns_per_op>, ...},
//     "sweeps": {"<label>": <wall_ms>, ...} }
//
// The "sweeps" object carries end-to-end wall-clock per executed sweep
// (bench::run_sweep / driver batch helpers), published via
// record_sweep_wall_ms(). scripts/bench_compare.py flattens these as
// "sweep/<label>" — the series the --jobs speedup gate compares.
//
// The "benchmarks" object carries per-case results published by the bench
// body through record_bench_result() — e.g. bench_microbench forwards every
// google-benchmark case's adjusted real time (ns/op). It is empty for bench
// bodies that publish nothing. scripts/bench_compare.py diffs two of these
// documents case-by-case.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace cloudfog::util {
class Flags;
}  // namespace cloudfog::util

namespace cloudfog::obs {

struct BenchOptions {
  std::string metrics_out;  // empty = off
  std::string trace_out;    // empty = off
  std::string bench_json;   // empty = off
  int warmup = 0;
  int repeats = 1;
};

/// The harness flag keys, for callers assembling a known-flags list.
const std::vector<std::string>& bench_flag_keys();

/// Extracts the harness options from parsed flags. A bare `--bench-json`
/// resolves to "BENCH_<bench_name>.json". Throws std::logic_error on
/// unparseable numeric values (matching util::Flags behaviour).
BenchOptions bench_options_from_flags(const util::Flags& flags,
                                      const std::string& bench_name);

/// One-line usage text for the harness flags (benches append it to --help).
std::string bench_flags_help();

/// Gauge-name prefix under which per-case results travel through the
/// metrics registry into the BENCH json "benchmarks" section.
extern const std::string kBenchResultPrefix;

/// Publishes one per-case result (ns/op) into the active registry; a no-op
/// when collection is off, like every CF_OBS_* path.
void record_bench_result(const std::string& name, double ns_per_op);

/// Gauge-name prefix for sweep wall-clock results ("sweeps" json section).
extern const std::string kSweepResultPrefix;

/// Publishes one sweep's end-to-end wall time (ms) under `label`; a no-op
/// when collection is off.
void record_sweep_wall_ms(const std::string& label, double wall_ms);

class BenchHarness {
 public:
  BenchHarness(std::string name, BenchOptions options);

  /// Runs `body` warmup+repeats times (once, uninstrumented, when no output
  /// was requested). Returns the body's first non-zero exit code, 1 on
  /// artifact-write failure, else 0.
  int run(const std::function<int()>& body);

 private:
  std::string name_;
  BenchOptions options_;
};

}  // namespace cloudfog::obs
