// Periodic simulation-time sampler.
//
// install_sim_sampler() schedules a periodic event on a Simulator that, on
// every tick, snapshots queue depth and executed-event throughput into the
// active metrics registry and emits sim-track counter samples to the active
// tracer. The hook is a pure observer: its callback never mutates
// simulation state, draws no randomness and reads no wall clock, so
// installing it (or not) leaves every QoE metric bit-identical —
// interleaved sampler events shift event ids and sequence numbers, but
// nothing in the simulation depends on their values, only on the relative
// order of *other* events, which a strictly monotone sequence preserves.
// The obs-on-vs-off determinism test enforces this.
//
// Header-only on purpose: obs must not link against cloudfog_sim (sim
// links obs for the CF_OBS_* macros; a .cpp here would make the
// dependency circular).
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"
// The one sanctioned obs->sim edge: this header-only sampler bridges the
// two layers without linking (see the header comment above); only code
// above both layers (systems, bench) ever instantiates it.
#include "sim/simulator.h"  // lint:allow(include-layering)

namespace cloudfog::obs {

/// Starts a periodic sampler on `sim` with the given period (simulation
/// milliseconds). Returns the event handle so callers can cancel it.
inline sim::EventId install_sim_sampler(sim::Simulator& sim, TimeMs period_ms) {
  return sim.schedule_every(period_ms, period_ms, [&sim] {
    const double depth = static_cast<double>(sim.pending());
    const double executed = static_cast<double>(sim.executed());
    if (MetricsRegistry* r = registry()) {
      // Same gauge the simulator's own instrumentation sets, so its max()
      // tracks the true peak even between sampler ticks.
      r->gauge("sim.queue.depth").set(depth);
    }
    if (tracer() != nullptr) {
      trace_sim_counter("sim.queue.depth", sim.now(), depth);
      trace_sim_counter("sim.events.executed", sim.now(), executed);
    }
  });
}

}  // namespace cloudfog::obs
