// Observability metrics — named counters, gauges and quantile histograms.
//
// Design rules (the "no observer effect" contract, DESIGN.md §7):
//   * Metrics are pure sinks: nothing in the simulation may ever read one
//     back to make a decision, so QoE results and determinism digests are
//     bit-identical with instrumentation enabled or disabled.
//   * Collection is off by default. Instrumented code uses the CF_OBS_*
//     macros below, which compile to a single relaxed load + branch when no
//     registry is installed (and to nothing at all when the library is
//     built with CLOUDFOG_OBS_DISABLED).
//   * Individual instruments are thread-safe (relaxed atomics; the registry
//     map is guarded by a mutex) because timers/registries are the first
//     code in this repo that may plausibly be shared across threads.
//   * Registry iteration is insertion-ordered so exports are deterministic.
//   * The *install* is thread-scoped (DESIGN.md §9): registry()/set_registry
//     operate on a thread-local slot, so a worker thread sees no registry
//     until something running on that thread installs one. This is what
//     lets exec::RunExecutor give each parallel run its own registry —
//     runs never contend on instruments, and per-run snapshots are merged
//     into the submitting thread's registry in submission order after the
//     pool joins, keeping every export bit-identical to a sequential run.
//
// Wall-clock time never appears here — see obs/timer.h, the only file in
// the repo allowed to read the host clock (lint rule `obs-clock`).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cloudfog::obs {

/// Monotone event count (events dispatched, packets dropped, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Single-writer add: plain load+store instead of a locked RMW — several
  /// times cheaper on the hot path, race-free (both halves are atomic ops)
  /// but loses increments if a *second* thread writes concurrently. Only
  /// the Cached* callsite wrappers use it; they are restricted to
  /// single-threaded callsites already.
  void add_single_writer(std::uint64_t n = 1) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  /// Folds another counter in (value addition) — the per-run snapshot merge.
  void merge_from(const Counter& other) { add(other.value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, assigned capacity). Tracks the maximum
/// value ever set so "peak queue depth" falls out for free.
class Gauge {
 public:
  void set(double v);
  /// Single-writer set: skips the CAS max-loop (plain load+compare+store).
  /// Exact when this gauge has one writing thread — the Cached* wrappers'
  /// contract. See Counter::add_single_writer.
  void set_single_writer(double v) {
    value_.store(v, std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
    if (!ever_set_.load(std::memory_order_relaxed)) {
      ever_set_.store(true, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// Highest value ever set since construction/reset (0 if never set).
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// Whether set() has ever been called (distinguishes "level is 0" from
  /// "never sampled" — merge_from skips gauges that were never set).
  bool ever_set() const { return ever_set_.load(std::memory_order_relaxed); }
  void reset();

  /// Folds another gauge in: its last value wins (merge callers proceed in
  /// submission order, mirroring a sequential run's last-set-wins), and the
  /// peak is the max of both. No-op when `other` was never set.
  void merge_from(const Gauge& other);

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> ever_set_{false};
};

/// HDR-style log-bucketed histogram: values are assigned to buckets of
/// geometrically increasing width (each power of two is split into
/// `sub_buckets` linear slots), giving a bounded relative quantile error of
/// ~1/sub_buckets across many orders of magnitude in O(1) per record and a
/// few KB of memory. Negative values clamp to 0.
class Histogram {
 public:
  struct Options {
    /// Linear slots per power-of-two range; 32 bounds relative quantile
    /// error at ~3%.
    std::uint32_t sub_buckets = 32;
    /// Values at or above 2^max_exponent clamp into the last range.
    std::uint32_t max_exponent = 40;
  };

  Histogram() : Histogram(Options()) {}
  explicit Histogram(Options options);

  void record(double v);
  /// Single-writer record: plain load+store aggregates instead of five
  /// atomic RMW/CAS operations. Exact when this histogram has one writing
  /// thread — the Cached* wrappers' contract. See Counter::add_single_writer.
  void record_single_writer(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  /// Quantile estimate, q in [0, 1]: the upper edge of the bucket holding
  /// the q-th sample (relative error bounded by the bucket width). 0 when
  /// empty.
  double quantile(double q) const;

  void reset();

  const Options& options() const { return options_; }

  /// Folds another histogram in: bucket-wise count addition plus the
  /// count/sum/min/max aggregates. Requires identical Options (bucket
  /// layouts must line up). The FP sum accumulates `other.sum()` as one
  /// term, so merging per-run histograms in submission order is
  /// deterministic for a fixed run partition.
  void merge_from(const Histogram& other);

  /// (bucket upper edge, count) pairs for non-empty buckets, ascending —
  /// the export format.
  std::vector<std::pair<double, std::uint64_t>> nonzero_buckets() const;

 private:
  std::size_t bucket_index(double v) const;
  double bucket_upper_edge(std::size_t index) const;

  Options options_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Sentinels so the atomic min/max CAS loops need no "first sample" case;
  // the accessors report 0 while count() == 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name → instrument table. Lookups create on first use; returned references
/// stay valid for the registry's lifetime (instruments are heap-pinned).
/// Iteration order is insertion order, so exports are deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, Histogram::Options options = {});

  /// Lookup without creation; nullptr when absent or of a different kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes every instrument but keeps the name table (handles stay valid).
  void reset();

  /// Folds `other` into this registry: instruments are created here on
  /// demand (in `other`'s insertion order) and merged kind-wise — counters
  /// add, gauges last-set-wins + peak max, histograms merge bucket-wise.
  /// This is how exec::RunExecutor folds per-run snapshots back into the
  /// caller's registry; callers invoke it run-by-run in submission order,
  /// which pins every aggregate (including FP sums) deterministically.
  /// Throws (CF_CHECK) if a name is registered here with a different kind.
  void merge_from(const MetricsRegistry& other);

  std::size_t size() const;

  /// Insertion-ordered visitation — exactly one of the three pointers is
  /// non-null per call.
  template <typename Fn>  // Fn(name, const Counter*, const Gauge*, const Histogram*)
  void for_each(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& e : order_) {
      fn(e->name, e->counter.get(), e->gauge.get(), e->histogram.get());
    }
  }

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> entries_;
  std::vector<Entry*> order_;  // insertion order for deterministic export
};

namespace internal {
/// Storage behind registry(); only set_registry() may write it. One slot
/// per thread: installing a registry affects the calling thread only, so
/// parallel runs (exec::RunExecutor workers) each install their own
/// registry without synchronising, and a registry shared between threads
/// must be installed on each of them explicitly.
/// `constinit` guarantees constant initialization, so every TU accesses
/// the TLS slot directly instead of through the thread-local init wrapper
/// (which would otherwise sit on the hottest instrumentation path, and
/// which GCC's UBSan mis-flags as a null load from worker threads).
extern constinit thread_local MetricsRegistry* t_registry;
/// Bumped by every set_registry() call on this thread (starts at 1, never
/// reused), so callsite caches can tell "same registry still installed"
/// apart from "different registry at the same address" (registries are
/// routinely stack-allocated and a successor can reuse the predecessor's
/// storage). Thread-local like the slot it guards — epochs never cross
/// threads, matching the thread-local Cached* callsite caches.
extern constinit thread_local std::uint64_t t_epoch;
}  // namespace internal

/// The calling thread's active registry — what the CF_OBS_* macros feed.
/// Null (collection disabled) by default and on any thread that has not
/// installed one. Inline so the macros' off-path is a single thread-local
/// load + branch at every instrumentation site rather than a function call.
inline MetricsRegistry* registry() { return internal::t_registry; }

/// Install-count of this thread's registry; see internal::t_epoch.
inline std::uint64_t registry_epoch() { return internal::t_epoch; }

/// Installs `r` as the calling thread's active registry (nullptr disables
/// collection on this thread). Returns the previously installed registry.
MetricsRegistry* set_registry(MetricsRegistry* r);

/// RAII install/uninstall — the idiom harnesses use around a measured run
/// and RunExecutor workers use around each run. Scopes the calling thread.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry& r) : previous_(set_registry(&r)) {}
  ~ScopedRegistry() { set_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

// ---------------------------------------------------------------------------
// Per-callsite instrument caches for hot paths.
//
// `MetricsRegistry::counter("name")` takes the registry mutex and walks a
// string map — tens of nanoseconds, which dwarfs the instrument update
// itself on paths that fire millions of times per second (the simulator's
// schedule/fire cycle). A Cached* object remembers the resolved instrument
// pointer together with the registry epoch it was resolved under and only
// re-resolves when the epoch moves (i.e. after any set_registry()). The
// epoch check makes the cache immune to a new registry reusing a destroyed
// one's address.
//
// The caller reads `registry()` / `registry_epoch()` once and passes them
// to every cache at the site, so a multi-instrument site pays the two
// atomic loads once. Caches are constexpr-constructible and trivially
// destructible, so a block-scope `static` cache has no init guard.
//
// Caveat: the cache members are deliberately plain (non-atomic), and the
// updates go through the instruments' *_single_writer fast paths (plain
// load+store instead of locked RMW). A given Cached* object must only be
// used from one thread at a time. Block-scope caches are therefore
// declared `thread_local` (the CF_OBS_*_HOT macros do this): each worker
// thread gets its own cache resolving against its own thread-local
// registry, so concurrent parallel runs never share a cache or an
// instrument fast path. The *_single_writer contract holds because a
// per-run registry has exactly one writing thread for the run's duration.
// ---------------------------------------------------------------------------

class CachedCounter {
 public:
  explicit constexpr CachedCounter(const char* name) : name_(name) {}
  void add(MetricsRegistry* r, std::uint64_t epoch, std::uint64_t n = 1) {
    if (epoch != epoch_) {
      counter_ = &r->counter(name_);
      epoch_ = epoch;
    }
    counter_->add_single_writer(n);
  }

 private:
  const char* name_;
  Counter* counter_ = nullptr;
  std::uint64_t epoch_ = 0;  // g_epoch starts at 1, so 0 = never resolved
};

class CachedGauge {
 public:
  explicit constexpr CachedGauge(const char* name) : name_(name) {}
  void set(MetricsRegistry* r, std::uint64_t epoch, double v) {
    if (epoch != epoch_) {
      gauge_ = &r->gauge(name_);
      epoch_ = epoch;
    }
    gauge_->set_single_writer(v);
  }

 private:
  const char* name_;
  Gauge* gauge_ = nullptr;
  std::uint64_t epoch_ = 0;
};

class CachedHistogram {
 public:
  explicit constexpr CachedHistogram(const char* name) : name_(name) {}
  void record(MetricsRegistry* r, std::uint64_t epoch, double v) {
    if (epoch != epoch_) {
      histogram_ = &r->histogram(name_);
      epoch_ = epoch;
    }
    histogram_->record_single_writer(v);
  }

 private:
  const char* name_;
  Histogram* histogram_ = nullptr;
  std::uint64_t epoch_ = 0;
};

}  // namespace cloudfog::obs

// Instrumentation macros. A disabled build compiles them away entirely;
// otherwise they cost one load + branch when no registry is installed.
#ifdef CLOUDFOG_OBS_DISABLED
#define CF_OBS_COUNT(name, n) \
  do {                        \
  } while (0)
#define CF_OBS_GAUGE_SET(name, v) \
  do {                            \
  } while (0)
#define CF_OBS_HIST(name, v) \
  do {                       \
  } while (0)
#define CF_OBS_BLOCK(body) \
  do {                     \
  } while (0)
#define CF_OBS_COUNT_HOT(name, n) \
  do {                            \
  } while (0)
#define CF_OBS_GAUGE_SET_HOT(name, v) \
  do {                                \
  } while (0)
#define CF_OBS_HIST_HOT(name, v) \
  do {                           \
  } while (0)
#else
#define CF_OBS_COUNT(name, n)                                     \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      cf_obs_r->counter(name).add(                                \
          static_cast<std::uint64_t>(n));                         \
    }                                                             \
  } while (0)
#define CF_OBS_GAUGE_SET(name, v)                                 \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      cf_obs_r->gauge(name).set(static_cast<double>(v));          \
    }                                                             \
  } while (0)
#define CF_OBS_HIST(name, v)                                      \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      cf_obs_r->histogram(name).record(static_cast<double>(v));   \
    }                                                             \
  } while (0)
// For hot paths that update several instruments at once: one registry
// load + branch for the whole block. `body` sees the non-null registry as
// `cf_obs_r` (e.g. `cf_obs_r->counter("x").add(1);`).
#define CF_OBS_BLOCK(body)                                        \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      body                                                        \
    }                                                             \
  } while (0)
// Cached-instrument variants for single-threaded hot paths (see the
// CachedCounter block comment; same semantics as CF_OBS_COUNT/CF_OBS_HIST,
// minus the per-call name lookup).
#define CF_OBS_COUNT_HOT(name, n)                                 \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      thread_local ::cloudfog::obs::CachedCounter cf_obs_cc{name}; \
      cf_obs_cc.add(cf_obs_r, ::cloudfog::obs::registry_epoch(),  \
                    static_cast<std::uint64_t>(n));               \
    }                                                             \
  } while (0)
#define CF_OBS_GAUGE_SET_HOT(name, v)                             \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      thread_local ::cloudfog::obs::CachedGauge cf_obs_cg{name};  \
      cf_obs_cg.set(cf_obs_r, ::cloudfog::obs::registry_epoch(),  \
                    static_cast<double>(v));                      \
    }                                                             \
  } while (0)
#define CF_OBS_HIST_HOT(name, v)                                  \
  do {                                                            \
    if (::cloudfog::obs::MetricsRegistry* cf_obs_r =              \
            ::cloudfog::obs::registry()) {                        \
      thread_local ::cloudfog::obs::CachedHistogram cf_obs_ch{name}; \
      cf_obs_ch.record(cf_obs_r,                                  \
                       ::cloudfog::obs::registry_epoch(),         \
                       static_cast<double>(v));                   \
    }                                                             \
  } while (0)
#endif
