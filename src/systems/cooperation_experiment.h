// Cooperative transmission experiment — the second half of the paper's
// Section-V future work: "cooperation among supernodes in rendering and
// *transmitting* game videos to further reduce response latency".
//
// Two supernodes, A and B, serve a shared player pool with skewed primary
// assignment (A is the hot one). Baseline: each player's segments go
// entirely through its primary. Cooperative striping: each segment's
// packets are split across A and B, so a hot primary sheds half of every
// segment to its neighbour and the last-packet arrival follows the less
// congested path. The response-latency gain under skew quantifies the
// paper's conjecture.
#pragma once

#include <cstdint>

#include "core/cloudfog_config.h"
#include "exec/run_executor.h"
#include "util/types.h"

namespace cloudfog::systems {

struct CooperationExperimentConfig {
  std::size_t num_players = 24;   // across both supernodes
  /// Per-supernode uplink sized so a heavily skewed assignment overloads
  /// the hot node (~1.1x at skew 0.95) while the pair together has slack.
  Kbps uplink_kbps = 16'000.0;
  /// Fraction of players whose primary is supernode A (the hot node).
  double primary_skew = 0.85;
  /// Stripe each segment's packets across both supernodes.
  bool enable_striping = false;

  TimeMs warmup_ms = 4'000.0;
  TimeMs duration_ms = 16'000.0;
  TimeMs drain_ms = 1'000.0;
  TimeMs pipeline_ms = 8.0;
  double pipeline_jitter_sigma = 0.10;
  TimeMs prop_mean_ms = 12.0;
  double prop_spread_sigma = 0.45;
  double prop_jitter_sigma = 0.10;
  double fps = 30.0;
  double segment_size_sigma = 0.30;
  std::uint64_t seed = 7;
};

struct CooperationExperimentResult {
  double satisfied_fraction = 0.0;
  double mean_continuity = 0.0;
  double mean_response_latency_ms = 0.0;
  /// Uplink utilization actually offered to each supernode.
  double offered_load_a = 0.0;
  double offered_load_b = 0.0;
};

CooperationExperimentResult run_cooperation_experiment(
    const CooperationExperimentConfig& config);

/// Fans independent experiment configs across `executor`; results are
/// ordered by submission index, so aggregation is bit-identical at any
/// --jobs value.
std::vector<CooperationExperimentResult> run_cooperation_experiments(
    const std::vector<CooperationExperimentConfig>& configs,
    exec::RunExecutor& executor);

}  // namespace cloudfog::systems
