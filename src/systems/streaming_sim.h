// End-to-end streaming simulation — drives paper Figures 8 (response
// latency) and 9 (playback continuity).
//
// Pipeline per player segment (period = frames_per_segment / fps):
//
//   action t0 at the player
//     -> action uplink to the state server (home DC; the edge server for
//        EdgeCloud-served players)                    [sampled one-way]
//     -> game-state computation                       [compute_ms]
//     -> CloudFog only: update feed to the supernode  [sampled one-way]
//     -> video rendering                              [render_ms]
//     -> segment enqueued at the streaming server's sender buffer
//     -> transmission (queuing + serialisation on the uplink)
//     -> propagation to the player                    [sampled one-way]
//
// Senders:
//   * datacenters, edge servers, and supernodes under CloudFog/B or
//     CloudFog-adapt use the fluid FIFO QueuedSender;
//   * supernodes under CloudFog-schedule or CloudFog/A use the packet-level
//     SupernodeSender with the Section III-C deadline scheduler.
//
// CloudFog-adapt / CloudFog/A players additionally run the Section III-B
// receiver-driven rate adaptation: a ReceiverBuffer tracks s(t) (Eq 7) and
// a RateAdaptationController steps the encoding level from r (Eqs 8-11).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/edge_cache_service.h"
#include "core/cloudfog_config.h"
#include "exec/run_executor.h"
#include "systems/assignment.h"
#include "systems/scenario.h"

namespace cloudfog::systems {

/// One scripted supernode membership toggle (sharded engine only): at
/// `when_ms` the supernode hosted by player `pop_index` leaves (its
/// players fail over to a provisioned queue at their home datacenter and
/// its cache is released, cancelling in-flight jobs) or (re)joins (cache
/// re-registered empty, players return). Events for one supernode must
/// alternate; a supernode whose first event is a join starts the run
/// absent.
struct SupernodeChurnEvent {
  TimeMs when_ms = 0.0;
  std::size_t pop_index = 0;
  bool leave = true;
};

struct StreamingOptions {
  std::size_t num_players = 2'000;
  /// When non-empty, these population indices play (num_players ignored) —
  /// lets scenarios model localized load spikes.
  std::vector<std::size_t> explicit_players;
  TimeMs warmup_ms = 3'000.0;
  TimeMs duration_ms = 15'000.0;   // measurement window after warmup
  TimeMs drain_ms = 2'000.0;       // extra run so in-flight packets land
  TimeMs adaptation_tick_ms = 500.0;  // estimation cadence for Eq (8)
  core::CloudFogConfig cloudfog = core::CloudFogConfig::defaults();
  std::uint64_t seed_salt = 0;     // distinguishes repeated runs

  // --- sharded engine only (ScenarioParams::sim_shards, DESIGN.md §13) ----
  /// Dynamic supernode join/leave script. Under the packet-level deadline
  /// scheduler a leave drains the departed sender's queued backlog and
  /// streams each remainder through the player's failover fluid queue.
  std::vector<SupernodeChurnEvent> supernode_churn;
  /// Worker threads driving the shard rounds; 0 = exec::default_jobs().
  std::size_t shard_workers = 0;
};

struct StreamingResult {
  double mean_response_latency_ms = 0.0;  // mean of per-player means
  double p95_response_latency_ms = 0.0;   // 95th pct of per-player means
  double mean_continuity = 0.0;           // paper Fig 9 metric
  double satisfied_fraction = 0.0;        // >= 95% packets on time
  double cloud_uplink_mbps = 0.0;         // measured avg cloud traffic
  double mean_quality_level = 0.0;        // avg encoding level of segments
  std::uint64_t segments_generated = 0;
  std::uint64_t packets_dropped = 0;      // deadline-scheduler drops
  std::size_t supernode_supported = 0;
  std::size_t edge_supported = 0;

  /// Per-game breakdown (index = game id): player counts, mean continuity
  /// and satisfied fraction — the paper's premise is that games differ in
  /// tolerance, so their QoE under the same system differs too.
  std::array<std::size_t, 5> players_by_game{};
  std::array<double, 5> continuity_by_game{};
  std::array<double, 5> satisfied_by_game{};

  /// Segment-cache subsystem counters (all zero with use_segment_cache
  /// off); bytes_cloud_kbit is the egress the ablation economises.
  cache::CacheTotals cache;
};

/// Runs one streaming simulation of `kind` over the scenario. Dispatches
/// to the sharded engine when ScenarioParams::sim_shards > 1 (or
/// sim_force_sharded is set); otherwise runs the sequential engine.
StreamingResult run_streaming(SystemKind kind, const Scenario& scenario,
                              const StreamingOptions& options);

/// The space-parallel engine (src/shard): partitions the world into
/// geographic shards, runs one slab event engine per shard under
/// conservative time windows, and produces a QoE digest that is invariant
/// in the shard count and the worker count (tests/integration pins this
/// against the single-shard oracle). Called via run_streaming's dispatch;
/// exposed for tests that want a specific engine regardless of params.
StreamingResult run_streaming_sharded(SystemKind kind,
                                      const Scenario& scenario,
                                      const StreamingOptions& options);

/// One self-contained streaming run for the parallel batch entry point:
/// the scenario is specified by parameters, not by reference, so every run
/// builds (and exclusively owns) its own Scenario — required because the
/// scenario's latency-model memo caches are not safe to share across
/// concurrently executing runs.
struct StreamingRunSpec {
  SystemKind kind = SystemKind::kCloud;
  ScenarioParams scenario;
  StreamingOptions options;
};

/// Fans independent streaming runs across `executor`; results are ordered
/// by submission index (never completion order), so aggregation is
/// bit-identical at any --jobs value.
std::vector<StreamingResult> run_streaming_batch(
    const std::vector<StreamingRunSpec>& runs, exec::RunExecutor& executor);

}  // namespace cloudfog::systems
