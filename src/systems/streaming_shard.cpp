// Space-parallel streaming engine — DESIGN.md §13.
//
// One run, many cores, one digest: the world is split into K geographic
// shards along supernode geography (shard/partition.h), each shard owns a
// private slab event engine plus private copies of every piece of mutable
// state its entities touch (topology latency memo, sender/buffer slabs,
// QoE collector, cache service), and a shard::ShardCluster advances all K
// in conservative time windows whose lookahead is the minimum latency any
// cross-shard message can carry.
//
// Sharding invariants:
//   * A supernode and every player it serves live on the same shard, so
//     the only cross-shard traffic is the cooperative cache protocol
//     (probe + response between supernode pairs). With cooperation off
//     there are no cross-shard edges at all, the lookahead is infinite and
//     the run is embarrassingly parallel (a single window).
//   * Every stochastic entity draws from its own RNG stream (player:
//     jitter/p<pop>, packet sender: jitter/sn<node>), so its sample
//     sequence is a function of its own event order only — the reason the
//     digest is invariant in the shard count. This is also why the sharded
//     engine is NOT bit-equal to the sequential one (which threads a
//     single shared jitter stream through all entities): the single-shard
//     sharded run is the oracle the multi-shard digests are pinned to.
//   * All result reduction happens in a canonical order: per-player
//     accumulators in global slot order, per-supernode byte ledgers in
//     NodeId order, shard QoE maps merged per-player (each player lives in
//     exactly one shard). Remaining caveat: two *different* entities
//     colliding on an identical event timestamp could order differently
//     across shard counts — phases are continuous uniforms, so ties are
//     measure-zero.
//
// Supernode churn (sharded engine only): scripted leave/join toggles.
// Leave releases the node's cache (cancelling in-flight jobs) and fails
// its players over to a per-player fluid queue at their home datacenter,
// provisioned at setup with a static share of the DC uplink (base DC load
// plus every at-risk player homed there); join re-registers an empty cache
// and the players return. Churn is shard-local by the co-location
// invariant. Under the packet-level scheduler kinds a leave additionally
// drains the departed sender's queued backlog and streams each segment's
// unsent remainder through the owning player's failover fluid queue (the
// in-flight packet, if any, still completes on the old path).
#include "systems/streaming_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/edge_cache_service.h"
#include "core/rate_adaptation.h"
#include "core/supernode_sender.h"
#include "metrics/qoe.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "shard/cluster.h"
#include "shard/partition.h"
#include "sim/simulator.h"
#include "stream/queued_sender.h"
#include "stream/receiver_buffer.h"
#include "stream/stream_store.h"
#include "stream/video.h"
#include "util/check.h"
#include "util/stats.h"

namespace cloudfog::systems {

namespace {

/// Per-segment bookkeeping for packet-level (deadline-scheduled) delivery.
/// Lives in the owning shard's tracker slab; the slab handle travels with
/// the segment as VideoSegment::delivery_tag, so every per-packet hook
/// reaches this record (and through `slot`, the player) without a hash
/// lookup.
struct SegmentTracker {
  std::size_t pop_index = 0;
  std::size_t slot = 0;  // global player slot (players_ index)
  TimeMs action_ms = 0.0;
  int live_packets = 0;
  TimeMs last_arrival = 0.0;
  bool delivered_any = false;
  bool measured = false;
};

struct ShardPlayer {
  std::size_t pop_index = 0;
  NodeId host = kInvalidNode;
  game::GameProfile profile;
  PlayerAssignment assignment;
  int level = 0;
  Kbps wan_cap_kbps = 0.0;
  double loss_prob = 0.0;
  Kbit arrived_at_last_tick = 0.0;
  std::optional<core::RateAdaptationController> controller;
  stream::StoreHandle buffer = stream::kNullHandle;
  stream::StoreHandle queue = stream::kNullHandle;  // DC/edge private queue
  // Churn fallback: per-player queue at the home DC, plus the loss of that
  // path; provisioned at setup for at-risk players only.
  stream::StoreHandle failover_queue = stream::kNullHandle;
  double failover_loss_prob = 0.0;
  bool failed_over = false;
  /// Handle of this player's supernode packet sender in the owning shard's
  /// packet_store (scheduling kinds only) — submit never hashes.
  stream::StoreHandle packet_sender = stream::kNullHandle;
  /// Private sample stream: every stochastic draw this player causes
  /// (pipeline jitter, VBR size, fluid propagation) comes from here.
  util::Rng rng{0};
  std::size_t shard = 0;
  // K-invariant accumulators, reduced in global slot order after the run.
  Kbit cloud_kbit = 0.0;
  double level_sum = 0.0;
  std::uint64_t level_count = 0;
  std::uint64_t segments = 0;
};

/// Per-supernode byte ledger, filled in the node's own event order by the
/// cache serve observer and reduced in NodeId order — the K-invariant
/// replacement for the service's fleet-order byte accumulators.
struct NodeLedger {
  double edge_kbit = 0.0;
  double cloud_kbit = 0.0;
  double peer_kbit = 0.0;
  double window_cloud_kbit = 0.0;  // cloud fetches inside the window
};

/// Everything one shard's entities may mutate at run time. No instance of
/// anything below is ever touched by two shards: the window barrier is the
/// only synchronisation the run needs.
struct Shard {
  explicit Shard(const net::Topology& t) : topo(t) {}

  sim::Simulator* sim = nullptr;  // owned by the cluster
  net::Topology topo;  // private copy: the latency memo is not shareable
  stream::FluidSenderStore fluid_store;
  stream::ReceiverBufferStore buffer_store;
  stream::SegmentFactory factory;
  metrics::QoECollector qoe;
  std::optional<cache::EdgeCacheService> cache;
  // Keyed by node, setup/churn only — never touched per packet.
  std::unordered_map<NodeId, stream::StoreHandle> sn_fluid;
  std::unordered_map<NodeId, stream::StoreHandle> packet;
  // Packet senders by value; completion events capture sender addresses,
  // so the slab must not grow once the first event runs — every sender is
  // created in setup_senders().
  stream::SlabStore<core::SupernodeSender> packet_store;
  // Per-segment trackers; handles travel as VideoSegment::delivery_tag.
  // Grows freely (no tracker address ever escapes into a callback).
  stream::SlabStore<SegmentTracker> tracker_store;
  std::map<NodeId, NodeLedger> ledger;  // NodeId order: canonical reduce
  std::uint64_t drops = 0;
};

struct SupernodeInfo {
  NodeId server = kInvalidNode;
  int slots = 1;
  Kbps uplink_kbps = 0.0;
  std::size_t shard = 0;
  std::vector<std::size_t> player_slots;  // global slots, ascending
  bool initially_absent = false;
  std::vector<SupernodeChurnEvent> churn;  // sorted, alternation-checked
};

/// One entry of a supernode's cooperative-probe rank order: the m nearest
/// other supernodes by (expected one-way latency, NodeId).
struct CoopNeighbor {
  NodeId id = kInvalidNode;
  std::size_t shard = 0;
  TimeMs latency_ms = 0.0;
};

/// One in-flight cooperative lookup. Written by the requester's shard;
/// peers only read `segment` (published before the probes are posted, so
/// the window barrier orders the accesses).
struct ProbeRound {
  enum class Resp : std::uint8_t { kPending, kHit, kMiss };
  std::size_t shard = 0;  // requester's shard
  NodeId requester = kInvalidNode;
  stream::VideoSegment segment;
  cache::EdgeCacheService::DeliverFn deliver;
  std::vector<Resp> responses;  // by neighbor rank
  bool resolved = false;
};

class ShardedStreamingRun {
 public:
  ShardedStreamingRun(SystemKind kind, const Scenario& scenario,
                      const StreamingOptions& options)
      : kind_(kind), scenario_(scenario), options_(options) {}

  StreamingResult run();

 private:
  void setup_players();
  void setup_supernode_infos();
  void setup_partition();
  void setup_coop();
  void build_shards();
  void setup_cache_services();
  void setup_senders();
  void setup_failover();
  void setup_churn();
  void start_segment_ticks();

  void on_action(std::size_t slot);
  void enqueue_segment(std::size_t slot, TimeMs t0);
  void submit_fluid(std::size_t slot, const stream::VideoSegment& seg);
  void submit_packet(std::size_t slot, stream::VideoSegment seg);
  void on_packet_delivery(std::size_t s, const core::PacketDelivery& d);
  void adaptation_tick(std::size_t slot);
  void apply_churn(NodeId server, bool leave);
  void fail_over_segment(Shard& sh,
                         const core::DeadlineScheduler::PendingSegment& pending);
  void start_probe_round(std::size_t s, NodeId node,
                         const stream::VideoSegment& seg, Kbit kbit,
                         cache::EdgeCacheService::DeliverFn deliver);
  void on_probe_response(const std::shared_ptr<ProbeRound>& round,
                         std::size_t rank, bool hit);
  /// Same-shard "messages" stay plain engine events (the exchange rejects
  /// src == dst); cross-shard ones go through the inbox.
  void post_or_local(std::size_t src, std::size_t dst, TimeMs when,
                     std::function<void()> fn);

  bool in_window(TimeMs t0) const {
    return t0 >= options_.warmup_ms &&
           t0 < options_.warmup_ms + options_.duration_ms;
  }
  StreamingResult assemble();

  SystemKind kind_;
  const Scenario& scenario_;
  StreamingOptions options_;

  // Declared before shards_ (destroyed after them): per-shard caches and
  // senders reference the cluster's simulators and must tear down first.
  std::optional<shard::ShardCluster> cluster_;
  std::vector<std::unique_ptr<Shard>> shards_;

  util::Rng jitter_base_{0};  // parent of every per-entity stream
  std::vector<ShardPlayer> players_;
  std::map<NodeId, SupernodeInfo> sn_infos_;  // NodeId order everywhere
  std::map<NodeId, std::vector<CoopNeighbor>> coop_;
  std::vector<shard::PartitionSite> sites_;  // parallel to sn_infos_ order
  shard::Partition partition_;
  TimeMs lookahead_ = std::numeric_limits<double>::infinity();
  std::size_t shard_count_ = 1;
  std::size_t active_supernodes_ = 0;
};

void ShardedStreamingRun::setup_players() {
  // Identical fork labels and draw order as the sequential engine, so the
  // active set and the assignment plan match it exactly.
  util::Rng rng = scenario_.fork_rng("streaming");
  const std::string salt = std::to_string(options_.seed_salt);
  jitter_base_ = rng.fork("jitter" + salt);
  util::Rng select_rng = rng.fork("select" + salt);

  std::vector<std::size_t> active;
  if (!options_.explicit_players.empty()) {
    active = options_.explicit_players;
    for (std::size_t p : active)
      CF_CHECK_MSG(p < scenario_.population().size(), "unknown player index");
  } else {
    CF_CHECK_MSG(options_.num_players <= scenario_.population().size(),
                 "more players requested than the population holds");
    const auto sample = select_rng.sample_indices(scenario_.population().size(),
                                                  options_.num_players);
    active.assign(sample.begin(), sample.end());
  }

  util::Rng assign_rng = rng.fork("assign" + salt);
  AssignmentPlan plan = assign_players(kind_, scenario_, active, assign_rng);
  active_supernodes_ = plan.active_supernodes.size();

  const ScenarioParams& params = scenario_.params();
  players_.reserve(plan.players.size());
  for (const PlayerAssignment& pa : plan.players) {
    ShardPlayer ps;
    ps.pop_index = pa.pop_index;
    ps.host = scenario_.player_host(pa.pop_index);
    ps.profile = game::game_by_id(scenario_.player_game(pa.pop_index));
    ps.assignment = pa;
    ps.level = ps.profile.target_quality_level;
    ps.rng = jitter_base_.fork("p" + std::to_string(pa.pop_index));
    ps.loss_prob = scenario_.topology().server_loss_probability(
        pa.server, ps.host);
    if (params.tcp_window_kbit > 0.0) {
      const TimeMs rtt = std::max(
          1.0, scenario_.topology().expected_server_rtt_ms(pa.server, ps.host));
      ps.wan_cap_kbps = params.tcp_window_kbit / (rtt / 1000.0);
    }
    players_.push_back(std::move(ps));
  }
}

void ShardedStreamingRun::setup_supernode_infos() {
  for (std::size_t slot = 0; slot < players_.size(); ++slot) {
    const ShardPlayer& ps = players_[slot];
    if (ps.assignment.type != ServerType::kSupernode) continue;
    const NodeId server = ps.assignment.server;
    auto it = sn_infos_.find(server);
    if (it == sn_infos_.end()) {
      SupernodeInfo info;
      info.server = server;
      info.uplink_kbps = scenario_.params().supernode_kbps_per_slot;
      for (std::size_t sn : scenario_.supernode_players()) {
        if (scenario_.player_host(sn) == server) {
          info.uplink_kbps = scenario_.supernode_uplink_kbps(sn);
          info.slots = scenario_.supernode_capacity(sn);
          break;
        }
      }
      it = sn_infos_.emplace(server, std::move(info)).first;
    }
    it->second.player_slots.push_back(slot);
  }

  for (const SupernodeChurnEvent& ev : options_.supernode_churn) {
    CF_CHECK_MSG(scenario_.is_supernode_player(ev.pop_index),
                 "churn event names a non-supernode player");
    const NodeId server = scenario_.player_host(ev.pop_index);
    const auto it = sn_infos_.find(server);
    // A supernode that serves nobody under this run's assignment plan has
    // no state to toggle; its events are inert (the caller cannot know the
    // plan up front, so scripting churn over all supernodes must be legal).
    if (it == sn_infos_.end()) continue;
    it->second.churn.push_back(ev);
  }
  for (auto& [server, info] : sn_infos_) {
    if (info.churn.empty()) continue;
    std::sort(info.churn.begin(), info.churn.end(),
              [](const SupernodeChurnEvent& a, const SupernodeChurnEvent& b) {
                return a.when_ms < b.when_ms;
              });
    for (std::size_t i = 1; i < info.churn.size(); ++i) {
      CF_CHECK_MSG(info.churn[i].when_ms > info.churn[i - 1].when_ms,
                   "churn events for one supernode must be strictly ordered");
      CF_CHECK_MSG(info.churn[i].leave != info.churn[i - 1].leave,
                   "churn events for one supernode must alternate");
    }
    info.initially_absent = !info.churn.front().leave;
  }
}

void ShardedStreamingRun::setup_partition() {
  for (const auto& [server, info] : sn_infos_) {
    sites_.push_back({server, scenario_.topology().host(server).position,
                      static_cast<double>(info.player_slots.size())});
  }
  const std::size_t want =
      std::max<std::size_t>(1, scenario_.params().sim_shards);
  partition_ = shard::partition_sites(sites_, want);
  std::size_t site = 0;
  for (auto& [server, info] : sn_infos_) {
    info.shard = partition_.site_shard[site];
    ++site;
  }
  if (partition_.shard_count > 1) {
    const shard::AnchorIndex anchors(sites_, partition_);
    for (ShardPlayer& ps : players_) {
      if (ps.assignment.type == ServerType::kSupernode) {
        ps.shard = sn_infos_.at(ps.assignment.server).shard;
      } else {
        ps.shard =
            anchors.shard_of(scenario_.topology().host(ps.host).position);
      }
    }
  }
}

void ShardedStreamingRun::setup_coop() {
  const ScenarioParams& params = scenario_.params();
  if (params.use_segment_cache && params.cache_coop_neighbors > 0) {
    for (const auto& [a, info_a] : sn_infos_) {
      std::vector<std::pair<TimeMs, NodeId>> ranked;
      ranked.reserve(sn_infos_.size() - 1);
      for (const auto& [b, info_b] : sn_infos_) {
        if (b == a) continue;
        ranked.emplace_back(
            scenario_.topology().expected_server_one_way_ms(a, b), b);
      }
      std::sort(ranked.begin(), ranked.end());
      const std::size_t m =
          std::min(params.cache_coop_neighbors, ranked.size());
      std::vector<CoopNeighbor>& list = coop_[a];
      list.reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        list.push_back({ranked[i].second, sn_infos_.at(ranked[i].second).shard,
                        ranked[i].first});
      }
    }
  }

  // Lookahead: the minimum latency any cross-shard message can carry. The
  // only cross-shard edges are coop probes/responses, each at least the
  // pair's expected one-way latency after its sending event; with no edges
  // the lookahead is infinite (a single window). Derived from the actual
  // edge set, not net::LatencyModel::min_route_ms() — the pair bias is
  // multiplicative and may undercut that closed-form floor.
  for (const auto& [a, list] : coop_) {
    const std::size_t sa = sn_infos_.at(a).shard;
    for (const CoopNeighbor& nb : list) {
      if (nb.shard != sa) lookahead_ = std::min(lookahead_, nb.latency_ms);
    }
  }
  shard_count_ =
      shard::effective_shard_count(partition_.shard_count, lookahead_);
  if (shard_count_ < partition_.shard_count) {
    // Zero-lookahead degenerate case: collapse to one shard (no windows,
    // no cross-shard edges). Unreachable with the current latency model
    // (expected one-way latencies are strictly positive) but kept sound.
    for (ShardPlayer& ps : players_) ps.shard = 0;
    for (auto& [server, info] : sn_infos_) info.shard = 0;
    for (auto& [a, list] : coop_)
      for (CoopNeighbor& nb : list) nb.shard = 0;
    lookahead_ = std::numeric_limits<double>::infinity();
  }
}

void ShardedStreamingRun::build_shards() {
  cluster_.emplace(shard_count_, options_.shard_workers);
  shards_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>(scenario_.topology()));
    shards_[s]->sim = &cluster_->sim(s);
  }
}

void ShardedStreamingRun::setup_cache_services() {
  const ScenarioParams& params = scenario_.params();
  if (!params.use_segment_cache) return;
  cache::EdgeCacheServiceConfig cfg;
  cfg.kbit_per_slot = params.cache_kbit_per_slot;
  cfg.content_loop_segments = params.cache_content_loop_segments;
  cfg.admission.transcode.base_ms = params.cache_transcode_base_ms;
  cfg.admission.transcode.ms_per_kbit = params.cache_transcode_ms_per_kbit;
  cfg.admission.fetch_kbps = params.cache_fetch_kbps;
  cfg.admission.fetch_base_ms = params.cache_fetch_base_ms;
  cfg.admission.egress_cost_ms_per_kbit = params.cache_egress_cost_ms_per_kbit;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& sh = *shards_[s];
    sh.cache.emplace(*sh.sim, cfg);
    sh.cache->set_serve_observer(
        [this, s](NodeId node, const stream::VideoSegment& seg,
                  const cache::EdgeCacheService::ServeOutcome& outcome) {
          NodeLedger& led = shards_[s]->ledger[node];
          switch (outcome.source) {
            case cache::ServeSource::kCacheHit:
            case cache::ServeSource::kTranscode:
              led.edge_kbit += outcome.content_kbit;
              break;
            case cache::ServeSource::kCloudFetch:
              led.cloud_kbit += outcome.content_kbit;
              if (in_window(seg.action_time_ms))
                led.window_cloud_kbit += outcome.content_kbit;
              break;
            case cache::ServeSource::kPeerHit:
              led.peer_kbit += outcome.content_kbit;
              break;
            case cache::ServeSource::kPeerProbe:
              break;  // bytes accounted at resolution (peer hit or fallback)
          }
        });
    if (!coop_.empty()) {
      sh.cache->set_fetch_interceptor(
          [this, s](NodeId node, const stream::VideoSegment& seg, Kbit kbit,
                    cache::EdgeCacheService::DeliverFn deliver) {
            const auto it = coop_.find(node);
            if (it == coop_.end() || it->second.empty()) return false;
            start_probe_round(s, node, seg, kbit, std::move(deliver));
            return true;
          });
    }
  }
  for (const auto& [server, info] : sn_infos_) {
    if (info.initially_absent) continue;
    shards_[info.shard]->cache->add_supernode(server, info.slots);
  }
}

void ShardedStreamingRun::setup_senders() {
  const ScenarioParams& params = scenario_.params();
  std::unordered_map<NodeId, std::size_t> load;
  for (const ShardPlayer& ps : players_) ++load[ps.assignment.server];

  for (std::size_t slot = 0; slot < players_.size(); ++slot) {
    ShardPlayer& ps = players_[slot];
    Shard& sh = *shards_[ps.shard];
    if (uses_adaptation(kind_)) {
      ps.controller.emplace(ps.profile, options_.cloudfog.adaptation);
      ps.buffer =
          sh.buffer_store.create(game::quality_for_level(ps.level).bitrate_kbps);
    }
    if (ps.assignment.type == ServerType::kSupernode) continue;
    const Kbps uplink = ps.assignment.type == ServerType::kDatacenter
                            ? params.dc_uplink_kbps
                            : params.edge_uplink_kbps;
    Kbps share = uplink / static_cast<double>(load.at(ps.assignment.server));
    if (ps.wan_cap_kbps > 0.0) share = std::min(share, ps.wan_cap_kbps);
    ps.queue = sh.fluid_store.create(share);
  }

  for (const auto& [server, info] : sn_infos_) {
    const std::size_t s = info.shard;
    Shard& sh = *shards_[s];
    if (uses_scheduling(kind_)) {
      const stream::StoreHandle handle = sh.packet_store.create(
          *sh.sim, info.uplink_kbps,
          core::SupernodeSender::Discipline::kDeadline,
          options_.cloudfog.scheduler,
          core::SupernodeSender::PropagationFn(
              [this, server, s](NodeId player, util::Rng& rng) {
                return shards_[s]->topo.sample_server_one_way_ms(server, player,
                                                                 rng);
              }),
          core::SupernodeSender::DeliveryFn(
              [this, s](const core::PacketDelivery& d) {
                on_packet_delivery(s, d);
              }),
          jitter_base_.fork("sn" + std::to_string(server)));
      core::SupernodeSender& sender = sh.packet_store.get(handle);
      // The delivery tag is the tracker slab handle: every per-packet hook
      // reaches its player's state with two array indexes, never a hash.
      sender.set_rate_cap([this, s](NodeId, std::uint64_t tag) {
        return players_[shards_[s]->tracker_store.get(tag).slot].wan_cap_kbps;
      });
      sender.set_loss_model([this, s](NodeId, std::uint64_t tag) {
        return players_[shards_[s]->tracker_store.get(tag).slot].loss_prob;
      });
      sender.set_drop_observer(
          [this, s](const stream::VideoSegment& seg, int) {
            Shard& owner = *shards_[s];
            if (!owner.tracker_store.contains(seg.delivery_tag)) return;
            SegmentTracker& t = owner.tracker_store.get(seg.delivery_tag);
            --t.live_packets;
            if (t.measured) ++owner.drops;
            if (t.live_packets <= 0) {
              if (t.delivered_any && t.measured) {
                owner.qoe.add_latency(static_cast<NodeId>(t.pop_index),
                                      t.last_arrival - t.action_ms);
              }
              owner.tracker_store.destroy(seg.delivery_tag);
            }
          });
      if (sh.cache) sender.attach_segment_cache(&*sh.cache, server);
      sh.packet.emplace(server, handle);
      for (std::size_t slot : info.player_slots)
        players_[slot].packet_sender = handle;
    } else {
      sh.sn_fluid.emplace(server, sh.fluid_store.create(info.uplink_kbps));
    }
  }
}

void ShardedStreamingRun::setup_failover() {
  const ScenarioParams& params = scenario_.params();
  std::unordered_map<NodeId, std::size_t> dc_base;
  std::unordered_map<NodeId, std::size_t> at_risk;
  for (const ShardPlayer& ps : players_) {
    if (ps.assignment.type == ServerType::kDatacenter)
      ++dc_base[ps.assignment.server];
  }
  for (const auto& [server, info] : sn_infos_) {
    if (info.churn.empty()) continue;
    for (std::size_t slot : info.player_slots)
      ++at_risk[players_[slot].assignment.home_dc];
  }
  for (const auto& [server, info] : sn_infos_) {
    if (info.churn.empty()) continue;
    for (std::size_t slot : info.player_slots) {
      ShardPlayer& ps = players_[slot];
      Shard& sh = *shards_[ps.shard];
      const NodeId dc = ps.assignment.home_dc;
      ps.failover_loss_prob =
          scenario_.topology().server_loss_probability(dc, ps.host);
      // Static provisioning: the DC splits its uplink across its baseline
      // load plus every player that could fail over to it, so the share is
      // a setup-time constant (a dynamic share would couple all at-risk
      // players' state across shards).
      Kbps share = params.dc_uplink_kbps /
                   static_cast<double>(dc_base[dc] + at_risk[dc]);
      if (params.tcp_window_kbit > 0.0) {
        const TimeMs rtt = std::max(
            1.0, scenario_.topology().expected_server_rtt_ms(dc, ps.host));
        share = std::min(share, params.tcp_window_kbit / (rtt / 1000.0));
      }
      ps.failover_queue = sh.fluid_store.create(share);
      if (info.initially_absent) ps.failed_over = true;
    }
  }
}

void ShardedStreamingRun::setup_churn() {
  for (const auto& [server, info] : sn_infos_) {
    for (const SupernodeChurnEvent& ev : info.churn) {
      shards_[info.shard]->sim->schedule_at(
          ev.when_ms, [this, srv = info.server, leave = ev.leave] {
            apply_churn(srv, leave);
          });
    }
  }
}

void ShardedStreamingRun::start_segment_ticks() {
  const TimeMs period = scenario_.params().segment_period_ms();
  for (std::size_t slot = 0; slot < players_.size(); ++slot) {
    ShardPlayer& ps = players_[slot];
    Shard& sh = *shards_[ps.shard];
    const TimeMs phase = ps.rng.uniform(0.0, period);
    sh.sim->schedule_every(phase, period, [this, slot] { on_action(slot); });
    if (uses_adaptation(kind_)) {
      const Kbit tau =
          game::quality_for_level(ps.level).bitrate_kbps * period / 1000.0;
      sh.buffer_store.get(ps.buffer).on_arrival(0.0, tau);
      const TimeMs tick_phase =
          ps.rng.uniform(0.0, options_.adaptation_tick_ms);
      sh.sim->schedule_every(tick_phase, options_.adaptation_tick_ms,
                             [this, slot] { adaptation_tick(slot); });
    }
  }
}

void ShardedStreamingRun::on_action(std::size_t slot) {
  ShardPlayer& ps = players_[slot];
  Shard& sh = *shards_[ps.shard];
  const TimeMs t0 = sh.sim->now();
  if (t0 >= options_.warmup_ms + options_.duration_ms) return;

  const ScenarioParams& params = scenario_.params();
  TimeMs pipeline = 0.0;
  if (ps.failed_over) {
    // Fallback pipeline: the home DC computes and renders; no update feed.
    pipeline +=
        sh.topo.sample_one_way_ms(ps.host, ps.assignment.home_dc, ps.rng);
    pipeline += params.compute_ms + params.render_ms;
  } else {
    if (ps.assignment.type == ServerType::kEdge) {
      pipeline += sh.topo.sample_one_way_ms(ps.host, ps.assignment.server,
                                            ps.rng);
    } else {
      pipeline += sh.topo.sample_one_way_ms(ps.host, ps.assignment.home_dc,
                                            ps.rng);
    }
    pipeline += params.compute_ms;
    if (ps.assignment.type == ServerType::kSupernode) {
      pipeline += sh.topo.sample_server_one_way_ms(
          ps.assignment.server, ps.assignment.home_dc, ps.rng);
    }
    pipeline += params.render_ms;
  }
  sh.sim->schedule_after(pipeline,
                         [this, slot, t0] { enqueue_segment(slot, t0); });
}

void ShardedStreamingRun::enqueue_segment(std::size_t slot, TimeMs t0) {
  ShardPlayer& ps = players_[slot];
  Shard& sh = *shards_[ps.shard];
  const TimeMs period = scenario_.params().segment_period_ms();
  stream::VideoSegment seg =
      sh.factory.make(ps.host, ps.profile.id, ps.level, period, t0);
  const double sigma = scenario_.params().segment_size_sigma;
  if (sigma > 0.0) {
    seg.size_kbit *= ps.rng.lognormal(-0.5 * sigma * sigma, sigma);
  }
  if (in_window(t0)) {
    ++ps.segments;
    ps.level_sum += static_cast<double>(ps.level);
    ++ps.level_count;
    if (ps.assignment.type == ServerType::kDatacenter || ps.failed_over) {
      ps.cloud_kbit += seg.size_kbit;
    }
  }
  if (ps.failed_over) {
    submit_fluid(slot, seg);  // streams from the home DC, cache bypassed
  } else if (ps.assignment.type == ServerType::kSupernode &&
             uses_scheduling(kind_)) {
    submit_packet(slot, seg);
  } else if (ps.assignment.type == ServerType::kSupernode && sh.cache) {
    sh.cache->request(ps.assignment.server, seg,
                      [this, slot, seg] { submit_fluid(slot, seg); });
  } else {
    submit_fluid(slot, seg);
  }
}

void ShardedStreamingRun::submit_fluid(std::size_t slot,
                                       const stream::VideoSegment& seg) {
  ShardPlayer& ps = players_[slot];
  Shard& sh = *shards_[ps.shard];
  const bool failed = ps.failed_over;
  const bool shared_queue =
      !failed && ps.assignment.type == ServerType::kSupernode;
  const stream::StoreHandle handle =
      failed ? ps.failover_queue
             : (shared_queue ? sh.sn_fluid.at(ps.assignment.server)
                             : ps.queue);
  stream::QueuedSender& sender = sh.fluid_store.get(handle);
  stream::SendSchedule sched = sender.enqueue(sh.sim->now(), seg.size_kbit);
  if (shared_queue && ps.wan_cap_kbps > 0.0 &&
      ps.wan_cap_kbps < sender.capacity()) {
    sched.end = sched.start + transmission_ms(seg.size_kbit, ps.wan_cap_kbps);
  }
  const NodeId origin = failed ? ps.assignment.home_dc : ps.assignment.server;
  const double loss = failed ? ps.failover_loss_prob : ps.loss_prob;
  const TimeMs prop = sh.topo.sample_server_one_way_ms(origin, ps.host, ps.rng);
  const TimeMs last_arrival = sched.end + prop;
  if (in_window(seg.action_time_ms)) {
    const NodeId key = static_cast<NodeId>(ps.pop_index);
    sh.qoe.add_latency(key, last_arrival - seg.action_time_ms);
    const Kbit on_time =
        sched.sent_by(seg.deadline_ms - prop, seg.size_kbit) * (1.0 - loss);
    sh.qoe.add_units(key, seg.size_kbit, on_time);
  }
  if (ps.buffer != stream::kNullHandle) {
    const Kbit size = seg.size_kbit;
    sh.sim->schedule_at(last_arrival, [this, slot, size] {
      ShardPlayer& p = players_[slot];
      Shard& owner = *shards_[p.shard];
      owner.buffer_store.get(p.buffer).on_arrival(owner.sim->now(), size);
    });
  }
}

void ShardedStreamingRun::submit_packet(std::size_t slot,
                                        stream::VideoSegment seg) {
  ShardPlayer& ps = players_[slot];
  Shard& sh = *shards_[ps.shard];
  const stream::StoreHandle tag = sh.tracker_store.create();
  SegmentTracker& tracker = sh.tracker_store.get(tag);
  tracker.pop_index = ps.pop_index;
  tracker.slot = slot;
  tracker.action_ms = seg.action_time_ms;
  tracker.live_packets = stream::packet_count(seg.size_kbit);
  tracker.measured = in_window(seg.action_time_ms);
  if (tracker.measured) {
    sh.qoe.player(static_cast<NodeId>(ps.pop_index)).units_total +=
        static_cast<double>(tracker.live_packets);
  }
  seg.delivery_tag = tag;
  // submit() may fire the drop observer, which can destroy trackers (this
  // one included) — don't touch `tracker` past this point.
  sh.packet_store.get(ps.packet_sender).submit(seg);
}

void ShardedStreamingRun::on_packet_delivery(std::size_t s,
                                             const core::PacketDelivery& d) {
  Shard& sh = *shards_[s];
  if (!sh.tracker_store.contains(d.delivery_tag)) return;
  SegmentTracker& tracker = sh.tracker_store.get(d.delivery_tag);
  const auto key = static_cast<NodeId>(tracker.pop_index);
  if (tracker.measured && d.on_time()) {
    sh.qoe.player(key).units_on_time += 1.0;
  }
  if (!d.lost) {
    tracker.delivered_any = true;
    tracker.last_arrival = std::max(tracker.last_arrival, d.arrival_ms);
  }
  --tracker.live_packets;
  const std::size_t slot = tracker.slot;
  if (tracker.live_packets <= 0) {
    if (tracker.measured && tracker.delivered_any) {
      sh.qoe.add_latency(key, tracker.last_arrival - tracker.action_ms);
    }
    sh.tracker_store.destroy(d.delivery_tag);
  }
  if (players_[slot].buffer != stream::kNullHandle && !d.lost) {
    const Kbit size = d.size_kbit;
    const TimeMs when = std::max(d.arrival_ms, sh.sim->now());
    sh.sim->schedule_at(when, [this, slot, size] {
      ShardPlayer& p = players_[slot];
      Shard& owner = *shards_[p.shard];
      owner.buffer_store.get(p.buffer).on_arrival(owner.sim->now(), size);
    });
  }
}

void ShardedStreamingRun::adaptation_tick(std::size_t slot) {
  ShardPlayer& ps = players_[slot];
  Shard& sh = *shards_[ps.shard];
  stream::ReceiverBuffer& buffer = sh.buffer_store.get(ps.buffer);
  const TimeMs period = scenario_.params().segment_period_ms();
  const Kbps playback = game::quality_for_level(ps.level).bitrate_kbps;
  const Kbit tau = playback * period / 1000.0;
  const Kbit arrived = buffer.total_arrived_kbit();
  const Kbps download = (arrived - ps.arrived_at_last_tick) /
                        options_.adaptation_tick_ms * 1000.0;
  ps.arrived_at_last_tick = arrived;
  const auto decision = ps.controller->observe_rates(
      options_.adaptation_tick_ms, download, playback, tau);
  if (decision != core::RateAdaptationController::Decision::kHold) {
    ps.level = ps.controller->level();
    buffer.set_playback_rate(sh.sim->now(),
                             game::quality_for_level(ps.level).bitrate_kbps);
  }
}

void ShardedStreamingRun::apply_churn(NodeId server, bool leave) {
  const SupernodeInfo& info = sn_infos_.at(server);
  Shard& sh = *shards_[info.shard];
  if (leave) {
    if (sh.cache && sh.cache->has_supernode(server)) {
      sh.cache->remove_supernode(server);
    }
    for (std::size_t slot : info.player_slots)
      players_[slot].failed_over = true;
    if (uses_scheduling(kind_)) {
      // The departing sender abandons its queued backlog; each segment's
      // unsent remainder streams from the owning player's home DC through
      // the failover fluid queue. The in-flight packet (if any) still
      // completes on the old path and settles its tracker normally.
      core::SupernodeSender& sender =
          sh.packet_store.get(sh.packet.at(server));
      for (const core::DeadlineScheduler::PendingSegment& pending :
           sender.drain_pending()) {
        fail_over_segment(sh, pending);
      }
    }
  } else {
    if (sh.cache && !sh.cache->has_supernode(server)) {
      sh.cache->add_supernode(server, info.slots);
    }
    for (std::size_t slot : info.player_slots)
      players_[slot].failed_over = false;
  }
}

void ShardedStreamingRun::fail_over_segment(
    Shard& sh, const core::DeadlineScheduler::PendingSegment& pending) {
  const stream::VideoSegment& seg = pending.segment;
  if (!sh.tracker_store.contains(seg.delivery_tag)) return;
  SegmentTracker& tracker = sh.tracker_store.get(seg.delivery_tag);
  ShardPlayer& ps = players_[tracker.slot];
  stream::QueuedSender& fluid = sh.fluid_store.get(ps.failover_queue);
  const stream::SendSchedule sched =
      fluid.enqueue(sh.sim->now(), pending.remaining_kbit);
  const TimeMs prop =
      sh.topo.sample_server_one_way_ms(ps.assignment.home_dc, ps.host, ps.rng);
  const TimeMs last_arrival = sched.end + prop;
  if (in_window(seg.action_time_ms)) ps.cloud_kbit += pending.remaining_kbit;
  if (tracker.measured && pending.remaining_kbit > 0.0) {
    // Fluid on-time fraction scaled to packet units and discounted by the
    // fallback path's loss — the fluid analogue of per-packet on_time().
    const Kbit on_time_kbit =
        sched.sent_by(seg.deadline_ms - prop, pending.remaining_kbit);
    sh.qoe.player(static_cast<NodeId>(tracker.pop_index)).units_on_time +=
        on_time_kbit / pending.remaining_kbit *
        static_cast<double>(pending.remaining_packets) *
        (1.0 - ps.failover_loss_prob);
  }
  tracker.delivered_any = true;
  tracker.last_arrival = std::max(tracker.last_arrival, last_arrival);
  tracker.live_packets -= pending.remaining_packets;
  if (ps.buffer != stream::kNullHandle) {
    const Kbit size = pending.remaining_kbit;
    const std::size_t slot = tracker.slot;
    sh.sim->schedule_at(last_arrival, [this, slot, size] {
      ShardPlayer& p = players_[slot];
      Shard& owner = *shards_[p.shard];
      owner.buffer_store.get(p.buffer).on_arrival(owner.sim->now(), size);
    });
  }
  if (tracker.live_packets <= 0) {
    if (tracker.measured && tracker.delivered_any) {
      sh.qoe.add_latency(static_cast<NodeId>(tracker.pop_index),
                         tracker.last_arrival - tracker.action_ms);
    }
    sh.tracker_store.destroy(seg.delivery_tag);
  }
}

void ShardedStreamingRun::start_probe_round(
    std::size_t s, NodeId node, const stream::VideoSegment& seg, Kbit kbit,
    cache::EdgeCacheService::DeliverFn deliver) {
  const std::vector<CoopNeighbor>& neighbors = coop_.at(node);
  auto round = std::make_shared<ProbeRound>();
  round->shard = s;
  round->requester = node;
  round->segment = seg;
  round->deliver = std::move(deliver);
  round->responses.assign(neighbors.size(), ProbeRound::Resp::kPending);
  const TimeMs t0 = shards_[s]->sim->now();
  const Kbps coop_kbps = scenario_.params().cache_coop_kbps;
  for (std::size_t rank = 0; rank < neighbors.size(); ++rank) {
    const CoopNeighbor nb = neighbors[rank];
    post_or_local(s, nb.shard, t0 + nb.latency_ms,
                  [this, round, rank, nb, kbit, coop_kbps] {
                    Shard& peer = *shards_[nb.shard];
                    const bool hit =
                        peer.cache && peer.cache->probe_hit(nb.id, round->segment);
                    TimeMs back = peer.sim->now() + nb.latency_ms;
                    if (hit && coop_kbps > 0.0)
                      back += transmission_ms(kbit, coop_kbps);
                    post_or_local(nb.shard, round->shard, back,
                                  [this, round, rank, hit] {
                                    on_probe_response(round, rank, hit);
                                  });
                  });
  }
}

void ShardedStreamingRun::on_probe_response(
    const std::shared_ptr<ProbeRound>& round, std::size_t rank, bool hit) {
  round->responses[rank] = hit ? ProbeRound::Resp::kHit : ProbeRound::Resp::kMiss;
  if (round->resolved) return;
  Shard& sh = *shards_[round->shard];
  // Rank-canonical resolution: the winner is the lowest-rank peer that
  // hit, declared only once every lower rank has answered — K-invariant
  // because it depends on the rank order, never on response arrival order.
  for (const ProbeRound::Resp resp : round->responses) {
    if (resp == ProbeRound::Resp::kPending) return;
    if (resp == ProbeRound::Resp::kHit) {
      round->resolved = true;
      sh.cache->complete_peer_fetch(round->requester, round->segment,
                                    std::move(round->deliver));
      return;
    }
  }
  round->resolved = true;
  sh.cache->cloud_fetch_fallback(round->requester, round->segment,
                                 std::move(round->deliver));
}

void ShardedStreamingRun::post_or_local(std::size_t src, std::size_t dst,
                                        TimeMs when,
                                        std::function<void()> fn) {
  if (src == dst) {
    shards_[src]->sim->schedule_at(when, std::move(fn));
  } else {
    cluster_->post(src, dst, when, std::move(fn));
  }
}

StreamingResult ShardedStreamingRun::assemble() {
  // Trackers for segments still in flight at the horizon stay in their
  // shard's slab; the stores die with the shards.

  // Each player lives in exactly one shard, so the merged collector is a
  // disjoint union; the map key order makes every aggregate canonical.
  metrics::QoECollector merged;
  for (const auto& sh : shards_) {
    for (const auto& [id, q] : sh->qoe.all()) merged.player(id) = q;
  }
  std::map<NodeId, NodeLedger> ledger;
  for (const auto& sh : shards_) {
    for (const auto& [node, led] : sh->ledger) ledger[node] = led;
  }

  Kbit cloud_kbit = 0.0;
  double level_sum = 0.0;
  std::uint64_t level_count = 0;
  std::uint64_t segments = 0;
  for (const ShardPlayer& ps : players_) {
    cloud_kbit += ps.cloud_kbit;
    level_sum += ps.level_sum;
    level_count += ps.level_count;
    segments += ps.segments;
  }
  for (const auto& [node, led] : ledger) cloud_kbit += led.window_cloud_kbit;
  std::uint64_t drops = 0;
  for (const auto& sh : shards_) drops += sh->drops;

  StreamingResult result;
  result.mean_response_latency_ms = merged.mean_response_latency_ms();
  util::SampleSet per_player;
  for (const auto& [id, q] : merged.all()) {
    if (q.response_latency_ms.count() > 0)
      per_player.add(q.response_latency_ms.mean());
  }
  result.p95_response_latency_ms =
      per_player.empty() ? 0.0 : per_player.percentile(95.0);
  result.mean_continuity = merged.mean_continuity();
  result.satisfied_fraction = merged.satisfied_fraction();
  // Update-feed cost stays nominal (the assignment plan's active set):
  // churned supernodes keep their slot in the plan.
  const Kbps update_feed = scenario_.params().update_stream_kbps *
                           static_cast<double>(active_supernodes_);
  result.cloud_uplink_mbps =
      (cloud_kbit / (options_.duration_ms / 1000.0) + update_feed) / 1000.0;
  result.mean_quality_level =
      level_count > 0 ? level_sum / static_cast<double>(level_count) : 0.0;
  result.segments_generated = segments;
  result.packets_dropped = drops;
  std::size_t sn_served = 0, edge_served = 0;
  for (const ShardPlayer& ps : players_) {
    if (ps.assignment.type == ServerType::kSupernode) ++sn_served;
    if (ps.assignment.type == ServerType::kEdge) ++edge_served;
  }
  result.supernode_supported = sn_served;
  result.edge_supported = edge_served;

  if (scenario_.params().use_segment_cache) {
    cache::CacheTotals totals;
    for (const auto& sh : shards_) {
      const cache::CacheTotals& t = sh->cache->totals();
      totals.hits += t.hits;
      totals.misses += t.misses;
      totals.transcodes += t.transcodes;
      totals.evictions += t.evictions;
      totals.cancelled_jobs += t.cancelled_jobs;
      totals.coop_probes += t.coop_probes;
      totals.coop_hits += t.coop_hits;
    }
    // Byte totals from the NodeId-ordered ledgers, not the services' own
    // fleet-order accumulators — canonical summation order.
    for (const auto& [node, led] : ledger) {
      totals.bytes_edge_kbit += led.edge_kbit;
      totals.bytes_cloud_kbit += led.cloud_kbit;
      totals.bytes_peer_kbit += led.peer_kbit;
    }
    result.cache = totals;
  }

  std::array<double, 5> continuity_sum{};
  std::array<std::size_t, 5> satisfied_count{};
  for (const ShardPlayer& ps : players_) {
    const auto g = static_cast<std::size_t>(ps.profile.id);
    const metrics::PlayerQoE& q =
        merged.player(static_cast<NodeId>(ps.pop_index));
    ++result.players_by_game[g];
    continuity_sum[g] += q.continuity();
    if (q.satisfied()) ++satisfied_count[g];
  }
  for (std::size_t g = 0; g < 5; ++g) {
    if (result.players_by_game[g] > 0) {
      const auto n = static_cast<double>(result.players_by_game[g]);
      result.continuity_by_game[g] = continuity_sum[g] / n;
      result.satisfied_by_game[g] =
          static_cast<double>(satisfied_count[g]) / n;
    }
  }
  CF_OBS_COUNT("systems.streaming.segments_generated", segments);
  return result;
}

StreamingResult ShardedStreamingRun::run() {
  CF_TIMED_SCOPE("timers.systems.run_streaming_sharded");
  {
    CF_TIMED_SCOPE("timers.systems.shard_setup");
    setup_players();
    setup_supernode_infos();
    setup_partition();
    setup_coop();
    build_shards();
    setup_cache_services();
    setup_senders();
    setup_failover();
    setup_churn();
    start_segment_ticks();
  }
  {
    CF_TIMED_SCOPE("timers.systems.shard_event_loop");
    cluster_->run(
        options_.warmup_ms + options_.duration_ms + options_.drain_ms,
        lookahead_);
  }
  CF_OBS_COUNT("systems.streaming.runs", 1);
  return assemble();
}

}  // namespace

StreamingResult run_streaming_sharded(SystemKind kind, const Scenario& scenario,
                                      const StreamingOptions& options) {
  CF_CHECK_MSG(options.num_players >= 1, "need at least one player");
  CF_CHECK_MSG(options.duration_ms > 0.0, "measurement window must be positive");
  ShardedStreamingRun run(kind, scenario, options);
  return run.run();
}

}  // namespace cloudfog::systems
