// User-coverage experiments — paper Figures 5 and 6.
//
// Definition (paper Section IV): "A user is covered by datacenter if the
// response latency is no more than the latency requirement of the user's
// game." We evaluate coverage of the *online* population (driven by the
// churn process) against a series of network latency requirements
// (30..110 ms), as the paper's figures do:
//
//   * datacenter sweep — coverage when only the first k datacenters exist
//     (datacenters have no capacity limit);
//   * supernode sweep  — coverage with the base datacenters plus the first
//     m selected supernodes, where supernodes are capacity-constrained
//     (a supernode serves at most its Pareto capacity of players) and a
//     player is covered if either its nearest datacenter or an available
//     supernode is within the latency requirement.
//
// Latency here is the expected round-trip between player and server — the
// action-up plus video-down network path.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/run_executor.h"
#include "systems/scenario.h"
#include "util/types.h"

namespace cloudfog::systems {

struct CoverageConfig {
  std::vector<std::size_t> datacenter_counts{5, 10, 15, 20, 25};
  std::vector<std::size_t> supernode_counts{0, 100, 200, 300, 400, 500, 600};
  std::vector<TimeMs> latency_requirements{30, 50, 70, 90, 110};
  /// Datacenters used in the supernode sweep (the paper's "current cloud
  /// infrastructure": 5 in simulation, 2 on PlanetLab).
  std::size_t base_datacenters = 5;
  /// Online-population snapshots averaged over.
  std::size_t samples = 3;
  TimeMs sample_interval_ms = 30.0 * kMsPerMinute;
  TimeMs warmup_ms = 10.0 * kMsPerMinute;
};

struct CoverageResult {
  /// dc_sweep[i][j]: coverage with datacenter_counts[i] datacenters at
  /// latency_requirements[j].
  std::vector<std::vector<double>> dc_sweep;
  /// sn_sweep[i][j]: coverage with base datacenters + supernode_counts[i]
  /// supernodes at latency_requirements[j].
  std::vector<std::vector<double>> sn_sweep;
  /// Mean online players per snapshot (context for the report).
  double mean_online = 0.0;
};

/// Runs the coverage experiment over `scenario`. The scenario must be built
/// with at least max(datacenter_counts) datacenters and
/// max(supernode_counts) supernodes.
CoverageResult measure_coverage(const Scenario& scenario,
                                const CoverageConfig& config);

/// Seed-averaged parallel coverage (Figs 5/6 with CLOUDFOG_BENCH_SEEDS).
struct CoverageSweepOutcome {
  /// Element-wise mean over the per-seed CoverageResults, accumulated in
  /// seed order — identical at any executor width.
  CoverageResult mean;
  /// The config actually swept: supernode_counts.back() is clamped to the
  /// smallest capable pool any seed's scenario produced (the PlanetLab
  /// profile samples its pool), so every seed sweeps the same axis.
  CoverageConfig effective;
};

/// Builds one scenario per entry of `seed_params` and measures its
/// coverage, fanning both phases across `executor`; per-seed results are
/// averaged in seed order. Runs are self-contained (each scenario is built
/// and consumed by exactly one run at a time), so the outcome is
/// bit-identical at any --jobs value.
CoverageSweepOutcome measure_coverage_averaged(
    const std::vector<ScenarioParams>& seed_params, CoverageConfig config,
    exec::RunExecutor& executor);

}  // namespace cloudfog::systems
