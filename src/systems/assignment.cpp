#include "systems/assignment.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace cloudfog::systems {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kCloud: return "Cloud";
    case SystemKind::kEdgeCloud: return "EdgeCloud";
    case SystemKind::kCloudFogB: return "CloudFog/B";
    case SystemKind::kCloudFogAdapt: return "CloudFog-adapt";
    case SystemKind::kCloudFogSchedule: return "CloudFog-schedule";
    case SystemKind::kCloudFogA: return "CloudFog/A";
  }
  return "?";
}

bool uses_supernodes(SystemKind kind) {
  return kind == SystemKind::kCloudFogB || kind == SystemKind::kCloudFogAdapt ||
         kind == SystemKind::kCloudFogSchedule || kind == SystemKind::kCloudFogA;
}

bool uses_adaptation(SystemKind kind) {
  return kind == SystemKind::kCloudFogAdapt || kind == SystemKind::kCloudFogA;
}

bool uses_scheduling(SystemKind kind) {
  return kind == SystemKind::kCloudFogSchedule || kind == SystemKind::kCloudFogA;
}

std::size_t AssignmentPlan::supernode_supported() const {
  return static_cast<std::size_t>(
      std::count_if(players.begin(), players.end(), [](const PlayerAssignment& p) {
        return p.type == ServerType::kSupernode;
      }));
}

std::size_t AssignmentPlan::edge_supported() const {
  return static_cast<std::size_t>(
      std::count_if(players.begin(), players.end(), [](const PlayerAssignment& p) {
        return p.type == ServerType::kEdge;
      }));
}

std::size_t AssignmentPlan::cloud_supported() const {
  return players.size() - supernode_supported() - edge_supported();
}

AssignmentPlan assign_players(SystemKind kind, const Scenario& scenario,
                              const std::vector<std::size_t>& active_players,
                              util::Rng& rng) {
  const net::Topology& topo = scenario.topology();
  const std::vector<NodeId> dcs = scenario.datacenters();
  CF_CHECK_MSG(!dcs.empty(), "scenario has no datacenters");

  AssignmentPlan plan;
  plan.kind = kind;
  plan.players.reserve(active_players.size());

  // CloudFog: build the cloud-side supernode table.
  core::SupernodeManager manager(topo, core::SupernodeManagerConfig{},
                                 rng.fork("probe"));
  std::unordered_map<NodeId, std::size_t> supernode_pop;  // host -> pop index
  if (uses_supernodes(kind)) {
    for (std::size_t sn : scenario.supernode_players()) {
      const NodeId host = scenario.player_host(sn);
      manager.add_supernode(host, scenario.supernode_capacity(sn),
                            scenario.supernode_uplink_kbps(sn));
      supernode_pop.emplace(host, sn);
    }
  }

  // Edge capacity tracking.
  const std::vector<NodeId> edges = scenario.edge_servers();
  std::unordered_map<NodeId, std::size_t> edge_load;

  // Players are processed in randomized order: capacity contention then has
  // no bias toward low population indices.
  std::vector<std::size_t> order = active_players;
  rng.shuffle(order);

  std::unordered_map<NodeId, bool> supernode_active;
  for (std::size_t pop_index : order) {
    const NodeId host = scenario.player_host(pop_index);
    PlayerAssignment pa;
    pa.pop_index = pop_index;
    pa.home_dc = topo.nearest(host, dcs);

    bool assigned = false;
    if (uses_supernodes(kind) && manager.supernode_count() > 0) {
      const game::GameProfile& profile =
          game::game_by_id(scenario.player_game(pop_index));
      const core::Assignment& a =
          manager.assign(host, profile.latency_requirement_ms);
      if (!a.direct_to_cloud()) {
        pa.server = a.supernode;
        pa.type = ServerType::kSupernode;
        pa.stream_one_way_ms = topo.expected_server_one_way_ms(a.supernode, host);
        supernode_active[a.supernode] = true;
        assigned = true;
      }
    } else if (kind == SystemKind::kEdgeCloud && !edges.empty()) {
      const NodeId best_edge = topo.nearest(host, edges);
      const TimeMs edge_lat = topo.expected_server_one_way_ms(best_edge, host);
      const TimeMs dc_lat = topo.expected_one_way_ms(host, pa.home_dc);
      if (edge_lat < dc_lat &&
          edge_load[best_edge] < scenario.params().edge_capacity) {
        pa.server = best_edge;
        pa.type = ServerType::kEdge;
        pa.stream_one_way_ms = edge_lat;
        ++edge_load[best_edge];
        assigned = true;
      }
    }
    if (!assigned) {
      pa.server = pa.home_dc;
      pa.type = ServerType::kDatacenter;
      pa.stream_one_way_ms = topo.expected_one_way_ms(host, pa.home_dc);
    }
    plan.players.push_back(pa);
  }

  // Stable output order (by population index) regardless of shuffle.
  std::sort(plan.players.begin(), plan.players.end(),
            [](const PlayerAssignment& a, const PlayerAssignment& b) {
              return a.pop_index < b.pop_index;
            });

  for (const auto& [host, active] : supernode_active) {
    if (active) plan.active_supernodes.push_back(supernode_pop.at(host));
  }
  std::sort(plan.active_supernodes.begin(), plan.active_supernodes.end());
  return plan;
}

}  // namespace cloudfog::systems
