#include "systems/dynamic_sim.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "p2p/churn.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/stats.h"

namespace cloudfog::systems {

DynamicSimResult run_dynamic_sim(const Scenario& scenario,
                                 const DynamicSimOptions& options) {
  CF_CHECK_MSG(options.duration_ms > 0.0, "duration must be positive");
  CF_CHECK_MSG(options.supernode_mtbf_hours > 0.0, "MTBF must be positive");

  sim::Simulator sim;
  util::Rng rng = scenario.fork_rng("dynamic-sim");
  util::Rng sn_rng = rng.fork("sn-churn" + std::to_string(options.seed_salt));

  core::SessionManagerConfig sm_config;
  sm_config.enable_failover = options.enable_failover;
  sm_config.enable_cooperation = options.enable_cooperation;
  sm_config.shed_utilization = options.shed_utilization;
  core::SessionManager sessions(scenario.topology(),
                                core::SupernodeManagerConfig{}, sm_config,
                                rng.fork("sessions"));

  DynamicSimResult result;

  // --- supernode lifecycle ---------------------------------------------------
  const double departure_rate =
      1.0 / (options.supernode_mtbf_hours * kMsPerHour);  // per ms
  // Recursive lifecycle per supernode: up -> leave -> downtime -> rejoin.
  struct SupernodeInfo {
    NodeId host;
    int capacity;
    Kbps uplink;
  };
  std::vector<SupernodeInfo> roster;
  for (std::size_t sn : scenario.supernode_players()) {
    roster.push_back({scenario.player_host(sn), scenario.supernode_capacity(sn),
                      scenario.supernode_uplink_kbps(sn)});
  }
  // std::function allows the recursive re-arm; captured by copy per node.
  std::function<void(std::size_t)> schedule_departure =
      [&](std::size_t index) {
        const TimeMs dwell = sn_rng.exponential(departure_rate);
        sim.schedule_after(dwell, [&, index] {
          const SupernodeInfo& info = roster[index];
          if (!sessions.is_supernode(info.host)) return;  // already down
          const core::FailoverReport report =
              sessions.supernode_leave(info.host);
          ++result.supernode_departures;
          result.disruptions += report.players_affected;
          result.recovered_to_backup += report.recovered_to_backup;
          result.reassigned += report.reassigned;
          result.fell_to_cloud += report.fell_to_cloud;
          sim.schedule_after(options.supernode_downtime_ms, [&, index] {
            const SupernodeInfo& back = roster[index];
            if (sim.now() >= options.duration_ms) return;
            sessions.supernode_join(back.host, back.capacity, back.uplink);
            schedule_departure(index);
          });
        });
      };
  for (std::size_t i = 0; i < roster.size(); ++i) {
    sessions.supernode_join(roster[i].host, roster[i].capacity,
                            roster[i].uplink);
    schedule_departure(i);
  }

  // --- player churn ----------------------------------------------------------
  p2p::ChurnProcess churn(sim, scenario.population(), &scenario.social(),
                          p2p::ChurnConfig{},
                          rng.fork("player-churn" + std::to_string(options.seed_salt)));
  churn.set_callbacks(
      [&](std::size_t player) {
        ++result.player_joins;
        sessions.player_join(scenario.player_host(player),
                             churn.game_of(player));
      },
      [&](std::size_t player) {
        sessions.player_leave(scenario.player_host(player));
      });

  // --- cooperation and sampling ----------------------------------------------
  if (options.enable_cooperation) {
    sim.schedule_every(options.rebalance_period_ms, options.rebalance_period_ms,
                       [&] {
                         result.rebalance_moves +=
                             sessions.rebalance().players_moved;
                       });
  }
  util::RunningStats fog_fraction, stream_delay, hot_fraction;
  sim.schedule_every(options.sample_period_ms, options.sample_period_ms, [&] {
    const std::size_t total = sessions.session_count();
    if (total > 0) {
      fog_fraction.add(static_cast<double>(sessions.supernode_sessions()) /
                       static_cast<double>(total));
    }
    // Hot-supernode fraction and mean stream delay.
    std::size_t hot = 0, up = 0;
    for (NodeId sn : sessions.manager().supernodes()) {
      ++up;
      if (sessions.utilization(sn) > options.shed_utilization) ++hot;
    }
    if (up > 0)
      hot_fraction.add(static_cast<double>(hot) / static_cast<double>(up));
  });
  // Sample stream delays at a coarser cadence (walks all sessions).
  sim.schedule_every(2.0 * options.sample_period_ms,
                     2.0 * options.sample_period_ms, [&] {
                       util::RunningStats snapshot;
                       for (std::size_t p : churn.online_players()) {
                         const NodeId host = scenario.player_host(p);
                         if (!sessions.has_session(host)) continue;
                         const core::Session& s = sessions.session(host);
                         if (!s.on_cloud()) snapshot.add(s.stream_delay_ms);
                       }
                       if (snapshot.count() > 0) stream_delay.add(snapshot.mean());
                     });

  churn.start();
  sim.run_until(options.duration_ms);

  result.mean_supernode_session_fraction = fog_fraction.mean();
  result.mean_stream_delay_ms = stream_delay.mean();
  result.mean_hot_supernode_fraction = hot_fraction.mean();
  return result;
}

std::vector<DynamicSimResult> run_dynamic_sims(
    const std::vector<DynamicRunSpec>& runs, exec::RunExecutor& executor) {
  std::vector<std::pair<std::string, std::function<DynamicSimResult()>>> tasks;
  tasks.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const DynamicRunSpec& spec = runs[i];
    tasks.emplace_back(
        "run=" + std::to_string(i) +
            " seed=" + std::to_string(spec.scenario.seed) +
            " salt=" + std::to_string(spec.options.seed_salt),
        [&spec] {
          const Scenario scenario = Scenario::build(spec.scenario);
          return run_dynamic_sim(scenario, spec.options);
        });
  }
  return executor.map(std::move(tasks));
}

}  // namespace cloudfog::systems
