#include "systems/streaming_sim.h"

#include <optional>
#include <unordered_map>

#include "core/rate_adaptation.h"
#include "core/supernode_sender.h"
#include "metrics/qoe.h"
#include "obs/metrics.h"
#include "obs/sim_hook.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "stream/queued_sender.h"
#include "stream/receiver_buffer.h"
#include "stream/stream_store.h"
#include "stream/video.h"
#include "util/check.h"
#include "util/stats.h"

namespace cloudfog::systems {

namespace {

/// Per-segment bookkeeping for packet-level (deadline-scheduled) delivery.
/// Lives in a slab store; the segment's delivery_tag is its handle, so the
/// sender hands every delivery and drop straight back to its tracker slot —
/// no per-packet hash lookup.
struct SegmentTracker {
  std::size_t slot = 0;       // owning player's index in players_
  std::size_t pop_index = 0;
  TimeMs action_ms = 0.0;
  int live_packets = 0;       // not yet delivered nor dropped
  TimeMs last_arrival = 0.0;
  bool delivered_any = false;
  bool measured = false;      // t0 inside the measurement window
};

struct PlayerState {
  std::size_t pop_index = 0;
  NodeId host = kInvalidNode;
  game::GameProfile profile;
  PlayerAssignment assignment;
  int level = 0;
  Kbps wan_cap_kbps = 0.0;   // per-flow WAN throughput cap (0 = none)
  double loss_prob = 0.0;    // per-packet network loss on the serving path
  Kbit arrived_at_last_tick = 0.0;
  std::optional<core::RateAdaptationController> controller;
  stream::StoreHandle buffer = stream::kNullHandle;  // in buffer_store_
  stream::StoreHandle packet_sender = stream::kNullHandle;  // in packet_store_
};

/// The whole simulation state, wired together in run_streaming.
class StreamingRun {
 public:
  StreamingRun(SystemKind kind, const Scenario& scenario,
               const StreamingOptions& options)
      : kind_(kind), scenario_(scenario), options_(options) {}

  StreamingResult run();

 private:
  void setup_players();
  void setup_cache();
  void setup_senders();
  void start_segment_ticks();
  void on_action(std::size_t slot);
  void enqueue_segment(std::size_t slot, TimeMs t0);
  void submit_fluid(std::size_t slot, const stream::VideoSegment& seg);
  void submit_packet(std::size_t slot, stream::VideoSegment seg);
  void on_packet_delivery(const core::PacketDelivery& d);
  void adaptation_tick(std::size_t slot);
  bool in_window(TimeMs t0) const {
    return t0 >= options_.warmup_ms &&
           t0 < options_.warmup_ms + options_.duration_ms;
  }

  SystemKind kind_;
  const Scenario& scenario_;
  StreamingOptions options_;

  sim::Simulator sim_;
  // Declared after sim_ (destroyed first): pending cache events may still
  // reference the service when the run tears down.
  std::optional<cache::EdgeCacheService> cache_;
  util::Rng jitter_rng_{0};
  stream::SegmentFactory factory_;
  metrics::QoECollector qoe_;
  std::vector<PlayerState> players_;

  // Datacenters and edge servers serve flows in parallel: each player gets
  // a private queue at rate min(fair share, WAN cap). Supernodes follow the
  // paper's single-queuing-buffer model: one shared queue per supernode
  // (fluid FIFO for CloudFog/B and -adapt, packet-level deadline sender for
  // -schedule and /A). Senders and receive buffers live in slab stores
  // (stream/stream_store.h) — one per-player heap object each was the
  // dominant allocator traffic at 100k+ players.
  stream::FluidSenderStore fluid_store_;
  stream::ReceiverBufferStore buffer_store_;
  std::vector<stream::StoreHandle> per_player_queue_;
  std::unordered_map<NodeId, stream::StoreHandle> sn_fluid_;
  // Packet senders and segment trackers are slab-stored too: a segment's
  // delivery_tag is its tracker handle and each player caches its sender
  // handle, so the per-packet hot path (pop, deliver, drop) runs without a
  // single hash lookup. Every sender is created in setup_senders(), before
  // any event runs — in-flight completion events capture the sender's
  // address, so the slab must never grow (move values) after that.
  stream::SlabStore<core::SupernodeSender> packet_store_;
  stream::SlabStore<SegmentTracker> tracker_store_;

  // Measurement accumulators.
  Kbit cloud_kbit_ = 0.0;
  std::uint64_t segments_ = 0;
  std::uint64_t drops_ = 0;
  std::size_t active_supernodes_ = 0;
  util::RunningStats level_mean_;
};

void StreamingRun::setup_players() {
  util::Rng rng = scenario_.fork_rng("streaming");
  jitter_rng_ = rng.fork("jitter" + std::to_string(options_.seed_salt));
  util::Rng select_rng = rng.fork("select" + std::to_string(options_.seed_salt));

  std::vector<std::size_t> active;
  if (!options_.explicit_players.empty()) {
    active = options_.explicit_players;
    for (std::size_t p : active)
      CF_CHECK_MSG(p < scenario_.population().size(), "unknown player index");
  } else {
    CF_CHECK_MSG(options_.num_players <= scenario_.population().size(),
                 "more players requested than the population holds");
    const auto sample = select_rng.sample_indices(scenario_.population().size(),
                                                  options_.num_players);
    active.assign(sample.begin(), sample.end());
  }

  util::Rng assign_rng = rng.fork("assign" + std::to_string(options_.seed_salt));
  AssignmentPlan plan = assign_players(kind_, scenario_, active, assign_rng);
  active_supernodes_ = plan.active_supernodes.size();

  players_.reserve(plan.players.size());
  for (const PlayerAssignment& pa : plan.players) {
    PlayerState ps;
    ps.pop_index = pa.pop_index;
    ps.host = scenario_.player_host(pa.pop_index);
    ps.profile = game::game_by_id(scenario_.player_game(pa.pop_index));
    ps.assignment = pa;
    ps.level = ps.profile.target_quality_level;
    if (uses_adaptation(kind_)) {
      ps.controller.emplace(ps.profile, options_.cloudfog.adaptation);
      ps.buffer =
          buffer_store_.create(game::quality_for_level(ps.level).bitrate_kbps);
    }
    players_.push_back(std::move(ps));
  }
}

void StreamingRun::setup_cache() {
  const ScenarioParams& params = scenario_.params();
  if (!params.use_segment_cache) return;
  cache::EdgeCacheServiceConfig cfg;
  cfg.kbit_per_slot = params.cache_kbit_per_slot;
  cfg.content_loop_segments = params.cache_content_loop_segments;
  cfg.admission.transcode.base_ms = params.cache_transcode_base_ms;
  cfg.admission.transcode.ms_per_kbit = params.cache_transcode_ms_per_kbit;
  cfg.admission.fetch_kbps = params.cache_fetch_kbps;
  cfg.admission.fetch_base_ms = params.cache_fetch_base_ms;
  cfg.admission.egress_cost_ms_per_kbit = params.cache_egress_cost_ms_per_kbit;
  cache_.emplace(sim_, cfg);
  // Cloud-egress attribution: every variant fetched inside the measurement
  // window crosses the cloud's uplink, like datacenter-served segments.
  cache_->set_serve_observer(
      [this](NodeId, const stream::VideoSegment& seg,
             const cache::EdgeCacheService::ServeOutcome& outcome) {
        if (outcome.source == cache::ServeSource::kCloudFetch &&
            in_window(seg.action_time_ms)) {
          cloud_kbit_ += outcome.content_kbit;
        }
      });
}

void StreamingRun::setup_senders() {
  const ScenarioParams& params = scenario_.params();
  // Count players per shared server for fair-share computation.
  std::unordered_map<NodeId, std::size_t> load;
  for (const PlayerState& ps : players_) ++load[ps.assignment.server];

  // Setup-only index: which packet-sender slab handle serves each shared
  // supernode. Players cache their handle; the map dies with this scope.
  std::unordered_map<NodeId, stream::StoreHandle> packet_by_server;
  per_player_queue_.resize(players_.size());
  for (std::size_t slot = 0; slot < players_.size(); ++slot) {
    PlayerState& ps = players_[slot];
    ps.loss_prob = scenario_.topology().server_loss_probability(
        ps.assignment.server, ps.host);
    // WAN throughput cap over the serving path.
    if (params.tcp_window_kbit > 0.0) {
      const TimeMs rtt = std::max(
          1.0, scenario_.topology().expected_server_rtt_ms(ps.assignment.server,
                                                           ps.host));
      ps.wan_cap_kbps = params.tcp_window_kbit / (rtt / 1000.0);
    }
    const NodeId server = ps.assignment.server;
    switch (ps.assignment.type) {
      case ServerType::kDatacenter:
      case ServerType::kEdge: {
        const Kbps uplink = ps.assignment.type == ServerType::kDatacenter
                                ? params.dc_uplink_kbps
                                : params.edge_uplink_kbps;
        Kbps share = uplink / static_cast<double>(load.at(server));
        if (ps.wan_cap_kbps > 0.0) share = std::min(share, ps.wan_cap_kbps);
        per_player_queue_[slot] = fluid_store_.create(share);
        break;
      }
      case ServerType::kSupernode: {
        // Identify the supernode's population index for its uplink size.
        // assignment guarantees the server host belongs to a selected SN.
        Kbps uplink = params.supernode_kbps_per_slot;
        int slots = 1;
        for (std::size_t sn : scenario_.supernode_players()) {
          if (scenario_.player_host(sn) == server) {
            uplink = scenario_.supernode_uplink_kbps(sn);
            slots = scenario_.supernode_capacity(sn);
            break;
          }
        }
        if (cache_ && !cache_->has_supernode(server)) {
          cache_->add_supernode(server, slots);
        }
        if (uses_scheduling(kind_)) {
          auto handle_it = packet_by_server.find(server);
          if (handle_it == packet_by_server.end()) {
            const stream::StoreHandle h = packet_store_.create(
                sim_, uplink, core::SupernodeSender::Discipline::kDeadline,
                options_.cloudfog.scheduler,
                core::SupernodeSender::PropagationFn(
                    [this, server](NodeId player, util::Rng& rng) {
                      return scenario_.topology().sample_server_one_way_ms(
                          server, player, rng);
                    }),
                core::SupernodeSender::DeliveryFn(
                    [this](const core::PacketDelivery& d) {
                      on_packet_delivery(d);
                    }),
                jitter_rng_.fork("sn" + std::to_string(server)));
            core::SupernodeSender& sender = packet_store_.get(h);
            // The delivery_tag is the segment's tracker handle: the hooks
            // reach their player state through the tracker slot directly.
            sender.set_rate_cap([this](NodeId, std::uint64_t tag) {
              return players_[tracker_store_.get(tag).slot].wan_cap_kbps;
            });
            sender.set_loss_model([this](NodeId, std::uint64_t tag) {
              return players_[tracker_store_.get(tag).slot].loss_prob;
            });
            sender.set_drop_observer(
                [this](const stream::VideoSegment& seg, int) {
                  if (!tracker_store_.contains(seg.delivery_tag)) return;
                  SegmentTracker& t = tracker_store_.get(seg.delivery_tag);
                  --t.live_packets;
                  if (t.measured) ++drops_;
                  // Dropped packets count against continuity; units were
                  // added at submit time, so nothing to add here.
                  if (t.live_packets <= 0) {
                    if (t.delivered_any && t.measured) {
                      qoe_.add_latency(static_cast<NodeId>(t.pop_index),
                                       t.last_arrival - t.action_ms);
                    }
                    tracker_store_.destroy(seg.delivery_tag);
                  }
                });
            if (cache_) sender.attach_segment_cache(&*cache_, server);
            handle_it = packet_by_server.emplace(server, h).first;
          }
          ps.packet_sender = handle_it->second;
        } else {
          if (!sn_fluid_.contains(server))
            sn_fluid_.emplace(server, fluid_store_.create(uplink));
        }
        break;
      }
    }
  }
}

void StreamingRun::start_segment_ticks() {
  const TimeMs period = scenario_.params().segment_period_ms();
  for (std::size_t slot = 0; slot < players_.size(); ++slot) {
    const TimeMs phase = jitter_rng_.uniform(0.0, period);
    sim_.schedule_every(phase, period, [this, slot] { on_action(slot); });
    if (uses_adaptation(kind_)) {
      // Prime the receive buffer with one segment of video so the first
      // estimates are meaningful, then start the estimation cadence.
      PlayerState& ps = players_[slot];
      const Kbit tau = game::quality_for_level(ps.level).bitrate_kbps * period / 1000.0;
      buffer_store_.get(ps.buffer).on_arrival(0.0, tau);
      const TimeMs tick_phase = jitter_rng_.uniform(0.0, options_.adaptation_tick_ms);
      sim_.schedule_every(tick_phase, options_.adaptation_tick_ms,
                          [this, slot] { adaptation_tick(slot); });
    }
  }
}

void StreamingRun::on_action(std::size_t slot) {
  const TimeMs t0 = sim_.now();
  // Stop generating segments once the measurement window plus drain is over.
  if (t0 >= options_.warmup_ms + options_.duration_ms) return;

  PlayerState& ps = players_[slot];
  const net::Topology& topo = scenario_.topology();
  const ScenarioParams& params = scenario_.params();

  // Action uplink target: the state server.
  TimeMs pipeline = 0.0;
  if (ps.assignment.type == ServerType::kEdge) {
    pipeline += topo.sample_one_way_ms(ps.host, ps.assignment.server, jitter_rng_);
  } else {
    pipeline += topo.sample_one_way_ms(ps.host, ps.assignment.home_dc, jitter_rng_);
  }
  pipeline += params.compute_ms;
  if (ps.assignment.type == ServerType::kSupernode) {
    // Update feed: datacenter egress to the supernode's wired interface
    // (both endpoints server-grade, no residential access delay).
    pipeline += topo.sample_server_one_way_ms(ps.assignment.server,
                                              ps.assignment.home_dc, jitter_rng_);
  }
  pipeline += params.render_ms;
  sim_.schedule_after(pipeline, [this, slot, t0] { enqueue_segment(slot, t0); });
}

void StreamingRun::enqueue_segment(std::size_t slot, TimeMs t0) {
  PlayerState& ps = players_[slot];
  const TimeMs period = scenario_.params().segment_period_ms();
  stream::VideoSegment seg =
      factory_.make(ps.host, ps.profile.id, ps.level, period, t0);
  // VBR: per-segment size variation (I- vs P-frame mix), mean-preserving.
  const double sigma = scenario_.params().segment_size_sigma;
  if (sigma > 0.0) {
    seg.size_kbit *= jitter_rng_.lognormal(-0.5 * sigma * sigma, sigma);
  }
  if (in_window(t0)) {
    ++segments_;
    level_mean_.add(static_cast<double>(ps.level));
    if (ps.assignment.type == ServerType::kDatacenter) {
      cloud_kbit_ += seg.size_kbit;
    }
  }
  if (ps.assignment.type == ServerType::kSupernode && uses_scheduling(kind_)) {
    submit_packet(slot, seg);  // the packet sender routes through the cache
  } else if (ps.assignment.type == ServerType::kSupernode && cache_) {
    // Fluid supernode senders have no cache hook: source the content here,
    // then enqueue once it is locally available.
    cache_->request(ps.assignment.server, seg,
                    [this, slot, seg] { submit_fluid(slot, seg); });
  } else {
    submit_fluid(slot, seg);
  }
}

void StreamingRun::submit_fluid(std::size_t slot, const stream::VideoSegment& seg) {
  PlayerState& ps = players_[slot];
  const bool shared_queue = ps.assignment.type == ServerType::kSupernode;
  stream::QueuedSender& sender = fluid_store_.get(
      shared_queue ? sn_fluid_.at(ps.assignment.server) : per_player_queue_[slot]);
  // Per-player queues already serialize at min(share, WAN cap). The shared
  // supernode queue serializes at the supernode uplink; a slower WAN hop to
  // this particular player then stretches the *delivery*, not the queue —
  // other players' segments are not blocked behind the bottleneck.
  stream::SendSchedule sched = sender.enqueue(sim_.now(), seg.size_kbit);
  if (shared_queue && ps.wan_cap_kbps > 0.0 &&
      ps.wan_cap_kbps < sender.capacity()) {
    sched.end = sched.start + transmission_ms(seg.size_kbit, ps.wan_cap_kbps);
  }
  const TimeMs prop = scenario_.topology().sample_server_one_way_ms(
      ps.assignment.server, ps.host, jitter_rng_);
  const TimeMs last_arrival = sched.end + prop;
  if (in_window(seg.action_time_ms)) {
    const NodeId key = static_cast<NodeId>(ps.pop_index);
    qoe_.add_latency(key, last_arrival - seg.action_time_ms);
    // Fluid loss model: each bit survives the path with prob (1 - p).
    const Kbit on_time = sched.sent_by(seg.deadline_ms - prop, seg.size_kbit) *
                         (1.0 - ps.loss_prob);
    qoe_.add_units(key, seg.size_kbit, on_time);
  }
  if (ps.buffer != stream::kNullHandle) {
    const Kbit size = seg.size_kbit;
    sim_.schedule_at(last_arrival, [this, slot, size] {
      buffer_store_.get(players_[slot].buffer).on_arrival(sim_.now(), size);
    });
  }
}

void StreamingRun::submit_packet(std::size_t slot, stream::VideoSegment seg) {
  PlayerState& ps = players_[slot];
  // One slab slot per in-flight segment; the handle rides in the segment's
  // delivery_tag and comes back on every delivery/drop/hook call.
  const stream::StoreHandle tag = tracker_store_.create();
  SegmentTracker& tracker = tracker_store_.get(tag);
  tracker.slot = slot;
  tracker.pop_index = ps.pop_index;
  tracker.action_ms = seg.action_time_ms;
  tracker.live_packets = stream::packet_count(seg.size_kbit);
  tracker.measured = in_window(seg.action_time_ms);
  if (tracker.measured) {
    // Continuity denominator: every packet of the segment.
    qoe_.player(static_cast<NodeId>(ps.pop_index)).units_total +=
        static_cast<double>(tracker.live_packets);
  }
  seg.delivery_tag = tag;
  // submit() can drop packets of this segment synchronously (Eq 14), which
  // may destroy the tracker — don't touch `tracker` past this point.
  packet_store_.get(ps.packet_sender).submit(seg);
}

void StreamingRun::on_packet_delivery(const core::PacketDelivery& d) {
  if (!tracker_store_.contains(d.delivery_tag)) return;
  SegmentTracker& tracker = tracker_store_.get(d.delivery_tag);
  const auto key = static_cast<NodeId>(tracker.pop_index);
  if (tracker.measured && d.on_time()) {
    qoe_.player(key).units_on_time += 1.0;
  }
  if (!d.lost) {
    tracker.delivered_any = true;
    tracker.last_arrival = std::max(tracker.last_arrival, d.arrival_ms);
  }
  --tracker.live_packets;
  const std::size_t slot = tracker.slot;
  if (tracker.live_packets <= 0) {
    // Only segments with at least one real delivery yield a latency sample
    // (a fully lost/dropped segment has no arrival to measure — it already
    // counts fully against continuity).
    if (tracker.measured && tracker.delivered_any) {
      qoe_.add_latency(key, tracker.last_arrival - tracker.action_ms);
    }
    tracker_store_.destroy(d.delivery_tag);
  }
  // Feed the receive buffer for adaptation (deliveries are in sent order;
  // arrival jitter may reorder slightly, so the buffer event is scheduled).
  if (players_[slot].buffer != stream::kNullHandle && !d.lost) {
    const Kbit size = d.size_kbit;
    const TimeMs when = std::max(d.arrival_ms, sim_.now());
    sim_.schedule_at(when, [this, slot, size] {
      buffer_store_.get(players_[slot].buffer).on_arrival(sim_.now(), size);
    });
  }
}

void StreamingRun::adaptation_tick(std::size_t slot) {
  PlayerState& ps = players_[slot];
  stream::ReceiverBuffer& buffer = buffer_store_.get(ps.buffer);
  const TimeMs period = scenario_.params().segment_period_ms();
  const Kbps playback = game::quality_for_level(ps.level).bitrate_kbps;
  const Kbit tau = playback * period / 1000.0;
  // Windowed download rate d(t_k): data received since the last tick.
  const Kbit arrived = buffer.total_arrived_kbit();
  const Kbps download = (arrived - ps.arrived_at_last_tick) /
                        options_.adaptation_tick_ms * 1000.0;
  ps.arrived_at_last_tick = arrived;
  const auto decision = ps.controller->observe_rates(
      options_.adaptation_tick_ms, download, playback, tau);
  if (decision != core::RateAdaptationController::Decision::kHold) {
    ps.level = ps.controller->level();
    buffer.set_playback_rate(sim_.now(),
                             game::quality_for_level(ps.level).bitrate_kbps);
  }
}

StreamingResult StreamingRun::run() {
  CF_TIMED_SCOPE("timers.systems.run_streaming");
  {
    CF_TIMED_SCOPE("timers.systems.setup");
    setup_players();
    setup_cache();
    setup_senders();
    start_segment_ticks();
  }
  // Periodic queue-depth/throughput sampling for the trace and metrics —
  // a pure observer (see obs/sim_hook.h), so it may be installed only when
  // collection is on without perturbing the QoE digest.
  if (obs::registry() != nullptr || obs::tracer() != nullptr) {
    obs::trace_sim_instant("streaming.start", "systems", sim_.now());
    obs::install_sim_sampler(sim_, options_.adaptation_tick_ms);
  }
  {
    CF_TIMED_SCOPE("timers.systems.event_loop");
    sim_.run_until(options_.warmup_ms + options_.duration_ms + options_.drain_ms);
  }
  obs::trace_sim_instant("streaming.end", "systems", sim_.now());
  CF_OBS_COUNT("systems.streaming.runs", 1);
  CF_OBS_COUNT("systems.streaming.segments_generated", segments_);

  // Still-live trackers (segments in flight at the horizon) simply stay in
  // the slab until it is destroyed with the run: their undelivered packets
  // remain counted in units_total (missed), and completed-latency samples
  // are skipped.

  StreamingResult result;
  result.mean_response_latency_ms = qoe_.mean_response_latency_ms();
  util::SampleSet per_player;
  for (const auto& [id, q] : qoe_.all()) {
    if (q.response_latency_ms.count() > 0)
      per_player.add(q.response_latency_ms.mean());
  }
  result.p95_response_latency_ms =
      per_player.empty() ? 0.0 : per_player.percentile(95.0);
  result.mean_continuity = qoe_.mean_continuity();
  result.satisfied_fraction = qoe_.satisfied_fraction();
  const Kbps update_feed = scenario_.params().update_stream_kbps *
                           static_cast<double>(active_supernodes_);
  result.cloud_uplink_mbps =
      (cloud_kbit_ / (options_.duration_ms / 1000.0) + update_feed) / 1000.0;
  result.mean_quality_level = level_mean_.mean();
  result.segments_generated = segments_;
  result.packets_dropped = drops_;
  std::size_t sn_served = 0, edge_served = 0;
  for (const PlayerState& ps : players_) {
    if (ps.assignment.type == ServerType::kSupernode) ++sn_served;
    if (ps.assignment.type == ServerType::kEdge) ++edge_served;
  }
  result.supernode_supported = sn_served;
  result.edge_supported = edge_served;
  if (cache_) result.cache = cache_->totals();

  // Per-game QoE breakdown.
  std::array<double, 5> continuity_sum{};
  std::array<std::size_t, 5> satisfied_count{};
  for (const PlayerState& ps : players_) {
    const auto g = static_cast<std::size_t>(ps.profile.id);
    const metrics::PlayerQoE& q =
        qoe_.player(static_cast<NodeId>(ps.pop_index));
    ++result.players_by_game[g];
    continuity_sum[g] += q.continuity();
    if (q.satisfied()) ++satisfied_count[g];
  }
  for (std::size_t g = 0; g < 5; ++g) {
    if (result.players_by_game[g] > 0) {
      const auto n = static_cast<double>(result.players_by_game[g]);
      result.continuity_by_game[g] = continuity_sum[g] / n;
      result.satisfied_by_game[g] =
          static_cast<double>(satisfied_count[g]) / n;
    }
  }
  return result;
}

}  // namespace

StreamingResult run_streaming(SystemKind kind, const Scenario& scenario,
                              const StreamingOptions& options) {
  CF_CHECK_MSG(options.num_players >= 1, "need at least one player");
  CF_CHECK_MSG(options.duration_ms > 0.0, "measurement window must be positive");
  const ScenarioParams& params = scenario.params();
  if (params.sim_shards > 1 || params.sim_force_sharded) {
    return run_streaming_sharded(kind, scenario, options);
  }
  CF_CHECK_MSG(options.supernode_churn.empty(),
               "supernode churn requires the sharded engine "
               "(sim_shards > 1 or sim_force_sharded)");
  StreamingRun run(kind, scenario, options);
  return run.run();
}

std::vector<StreamingResult> run_streaming_batch(
    const std::vector<StreamingRunSpec>& runs, exec::RunExecutor& executor) {
  std::vector<std::pair<std::string, std::function<StreamingResult()>>> tasks;
  tasks.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const StreamingRunSpec& spec = runs[i];
    tasks.emplace_back(
        "run=" + std::to_string(i) + " kind=" + std::string(to_string(spec.kind)) +
            " seed=" + std::to_string(spec.scenario.seed) +
            " salt=" + std::to_string(spec.options.seed_salt),
        [&spec] {
          const Scenario scenario = Scenario::build(spec.scenario);
          return run_streaming(spec.kind, scenario, spec.options);
        });
  }
  return executor.map(std::move(tasks));
}

}  // namespace cloudfog::systems
