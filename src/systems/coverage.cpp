#include "systems/coverage.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "p2p/churn.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace cloudfog::systems {

namespace {

/// Per-player precomputed latencies: prefix-min RTT to the first k
/// datacenters, and the sorted (rtt, supernode slot) candidate list.
struct PlayerGeometry {
  std::vector<TimeMs> dc_prefix_min_rtt;              // index k-1 = best of first k
  std::vector<std::pair<TimeMs, std::size_t>> sn_rtt; // ascending rtt; slot = index into supernode_players()
};

PlayerGeometry compute_geometry(const Scenario& scenario, std::size_t pop_index,
                                const std::vector<NodeId>& dcs) {
  const net::Topology& topo = scenario.topology();
  const NodeId host = scenario.player_host(pop_index);
  PlayerGeometry g;
  g.dc_prefix_min_rtt.reserve(dcs.size());
  TimeMs best = std::numeric_limits<TimeMs>::max();
  for (NodeId dc : dcs) {
    best = std::min(best, topo.expected_rtt_ms(host, dc));
    g.dc_prefix_min_rtt.push_back(best);
  }
  const auto& sns = scenario.supernode_players();
  g.sn_rtt.reserve(sns.size());
  for (std::size_t slot = 0; slot < sns.size(); ++slot) {
    const NodeId sn_host = scenario.player_host(sns[slot]);
    g.sn_rtt.emplace_back(topo.expected_server_rtt_ms(sn_host, host), slot);
  }
  std::sort(g.sn_rtt.begin(), g.sn_rtt.end());
  return g;
}

}  // namespace

CoverageResult measure_coverage(const Scenario& scenario,
                                const CoverageConfig& config) {
  const auto& dcs = scenario.datacenters();
  CF_CHECK_MSG(!config.datacenter_counts.empty() &&
                   !config.supernode_counts.empty() &&
                   !config.latency_requirements.empty(),
               "coverage sweep axes must be non-empty");
  CF_CHECK_MSG(*std::max_element(config.datacenter_counts.begin(),
                                 config.datacenter_counts.end()) <= dcs.size(),
               "scenario has fewer datacenters than the sweep needs");
  CF_CHECK_MSG(*std::max_element(config.supernode_counts.begin(),
                                 config.supernode_counts.end()) <=
                   scenario.supernode_players().size(),
               "scenario has fewer supernodes than the sweep needs");
  CF_CHECK_MSG(config.base_datacenters >= 1 &&
                   config.base_datacenters <= dcs.size(),
               "base datacenter count out of range");
  CF_CHECK_MSG(config.samples >= 1, "need at least one snapshot");

  // Drive churn to collect online-population snapshots.
  sim::Simulator sim;
  p2p::ChurnProcess churn(sim, scenario.population(), &scenario.social(),
                          p2p::ChurnConfig{}, scenario.fork_rng("coverage-churn"));
  churn.start();
  sim.run_until(config.warmup_ms);

  std::vector<std::vector<std::size_t>> snapshots;
  for (std::size_t s = 0; s < config.samples; ++s) {
    snapshots.push_back(churn.online_players());
    sim.run_until(sim.now() + config.sample_interval_ms);
  }

  // Geometry cache, filled lazily for players that appear in any snapshot.
  std::vector<PlayerGeometry> geometry(scenario.population().size());
  std::vector<bool> have_geometry(scenario.population().size(), false);
  auto geo = [&](std::size_t p) -> const PlayerGeometry& {
    if (!have_geometry[p]) {
      geometry[p] = compute_geometry(scenario, p, dcs);
      have_geometry[p] = true;
    }
    return geometry[p];
  };

  CoverageResult result;
  result.dc_sweep.assign(config.datacenter_counts.size(),
                         std::vector<double>(config.latency_requirements.size(), 0.0));
  result.sn_sweep.assign(config.supernode_counts.size(),
                         std::vector<double>(config.latency_requirements.size(), 0.0));

  util::Rng order_rng = scenario.fork_rng("coverage-order");
  double online_total = 0.0;

  for (const auto& online : snapshots) {
    online_total += static_cast<double>(online.size());
    if (online.empty()) continue;
    const double denom = static_cast<double>(online.size());

    // --- datacenter sweep (no capacity limits) ---------------------------
    for (std::size_t di = 0; di < config.datacenter_counts.size(); ++di) {
      const std::size_t k = config.datacenter_counts[di];
      for (std::size_t ri = 0; ri < config.latency_requirements.size(); ++ri) {
        const TimeMs req = config.latency_requirements[ri];
        std::size_t covered = 0;
        for (std::size_t p : online) {
          if (geo(p).dc_prefix_min_rtt[k - 1] <= req) ++covered;
        }
        result.dc_sweep[di][ri] +=
            static_cast<double>(covered) / denom / static_cast<double>(config.samples);
      }
    }

    // --- supernode sweep (base DCs + first m supernodes, with capacity) --
    for (std::size_t si = 0; si < config.supernode_counts.size(); ++si) {
      const std::size_t m = config.supernode_counts[si];
      for (std::size_t ri = 0; ri < config.latency_requirements.size(); ++ri) {
        const TimeMs req = config.latency_requirements[ri];
        // Remaining capacity of each of the first m supernodes.
        std::vector<int> slots(m);
        for (std::size_t j = 0; j < m; ++j) {
          slots[j] =
              scenario.supernode_capacity(scenario.supernode_players()[j]);
        }
        // Greedy assignment in randomized player order.
        std::vector<std::size_t> order = online;
        order_rng.shuffle(order);
        std::size_t covered = 0;
        for (std::size_t p : order) {
          const PlayerGeometry& g = geo(p);
          if (g.dc_prefix_min_rtt[config.base_datacenters - 1] <= req) {
            ++covered;
            continue;
          }
          for (const auto& [rtt, slot] : g.sn_rtt) {
            if (rtt > req) break;  // sorted: no further candidate qualifies
            if (slot < m && slots[slot] > 0) {
              --slots[slot];
              ++covered;
              break;
            }
          }
        }
        result.sn_sweep[si][ri] +=
            static_cast<double>(covered) / denom / static_cast<double>(config.samples);
      }
    }
  }
  result.mean_online = online_total / static_cast<double>(config.samples);
  return result;
}

CoverageSweepOutcome measure_coverage_averaged(
    const std::vector<ScenarioParams>& seed_params, CoverageConfig config,
    exec::RunExecutor& executor) {
  CF_CHECK_MSG(!seed_params.empty(), "need at least one seed");

  // Phase 1 — build one scenario per seed (each inside its own run: the
  // latency-model memo caches are per-instance and single-threaded).
  using ScenarioPtr = std::shared_ptr<const Scenario>;
  std::vector<std::pair<std::string, std::function<ScenarioPtr()>>> builds;
  builds.reserve(seed_params.size());
  for (const ScenarioParams& p : seed_params) {
    builds.emplace_back("scenario seed=" + std::to_string(p.seed), [p] {
      return std::make_shared<const Scenario>(Scenario::build(p));
    });
  }
  const std::vector<ScenarioPtr> scenarios = executor.map(std::move(builds));

  // Clamp the sweep to the smallest capable pool any seed produced, so the
  // axis (and the printed rows) is identical across seeds.
  if (!config.supernode_counts.empty()) {
    std::size_t pool = scenarios.front()->supernode_players().size();
    for (const ScenarioPtr& s : scenarios) {
      pool = std::min(pool, s->supernode_players().size());
    }
    if (config.supernode_counts.back() > pool) {
      config.supernode_counts.back() = pool;
    }
  }

  // Phase 2 — per-seed coverage; each scenario is consumed by exactly one
  // run, so nothing mutable is shared across workers.
  std::vector<std::pair<std::string, std::function<CoverageResult()>>> tasks;
  tasks.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    tasks.emplace_back(
        "coverage seed=" + std::to_string(seed_params[i].seed),
        [scenario = scenarios[i], &config] {
          return measure_coverage(*scenario, config);
        });
  }
  const std::vector<CoverageResult> per_seed = executor.map(std::move(tasks));

  // Element-wise mean, accumulated in seed (submission) order.
  const double denom = static_cast<double>(per_seed.size());
  CoverageSweepOutcome out;
  out.effective = config;
  out.mean.dc_sweep.assign(
      config.datacenter_counts.size(),
      std::vector<double>(config.latency_requirements.size(), 0.0));
  out.mean.sn_sweep.assign(
      config.supernode_counts.size(),
      std::vector<double>(config.latency_requirements.size(), 0.0));
  for (const CoverageResult& r : per_seed) {
    for (std::size_t i = 0; i < out.mean.dc_sweep.size(); ++i) {
      for (std::size_t j = 0; j < out.mean.dc_sweep[i].size(); ++j) {
        out.mean.dc_sweep[i][j] += r.dc_sweep[i][j] / denom;
      }
    }
    for (std::size_t i = 0; i < out.mean.sn_sweep.size(); ++i) {
      for (std::size_t j = 0; j < out.mean.sn_sweep[i].size(); ++j) {
        out.mean.sn_sweep[i][j] += r.sn_sweep[i][j] / denom;
      }
    }
    out.mean.mean_online += r.mean_online / denom;
  }
  return out;
}

}  // namespace cloudfog::systems
