// Malicious-supernode experiment — quantifies the Section-V future-work
// reputation defence end to end.
//
// A roster of supernodes serves players round by round; a fraction of the
// roster is malicious and sabotages (drops, corrupts or delays) part of its
// deliveries. Players report every delivery outcome to the cloud's
// ReputationSystem. With eviction enabled, a supernode flagged by the
// ledger is removed and replaced by a freshly vetted honest machine.
//
// Reported metrics: detection precision/recall, time-to-detection, and the
// system-wide bad-delivery rate early vs. late in the run (the QoE proxy
// that eviction is supposed to repair).
#pragma once

#include <cstdint>

#include "core/reputation.h"
#include "util/types.h"

namespace cloudfog::systems {

struct ReputationExperimentConfig {
  std::size_t num_supernodes = 40;
  std::size_t players_per_supernode = 4;
  double malicious_fraction = 0.2;
  /// Probability a malicious supernode sabotages one delivery.
  double sabotage_rate = 0.30;
  /// Background failure rate of honest supernodes (congestion, jitter).
  double honest_failure_rate = 0.03;
  std::size_t rounds = 400;  // one delivery per player per round
  bool enable_eviction = true;
  core::ReputationConfig reputation{};
  std::uint64_t seed = 13;
};

struct ReputationExperimentResult {
  std::size_t malicious = 0;
  std::size_t evicted_total = 0;
  std::size_t true_positives = 0;   // malicious nodes evicted
  std::size_t false_positives = 0;  // honest nodes evicted
  /// Rounds until the first malicious node was caught (0 if none).
  std::size_t rounds_to_first_detection = 0;
  /// Bad-delivery fraction over the first and last 10% of rounds.
  double early_bad_rate = 0.0;
  double late_bad_rate = 0.0;

  double precision() const {
    return evicted_total == 0 ? 1.0
                              : static_cast<double>(true_positives) /
                                    static_cast<double>(evicted_total);
  }
  double recall() const {
    return malicious == 0 ? 1.0
                          : static_cast<double>(true_positives) /
                                static_cast<double>(malicious);
  }
};

ReputationExperimentResult run_reputation_experiment(
    const ReputationExperimentConfig& config);

}  // namespace cloudfog::systems
