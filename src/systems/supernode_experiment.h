// Single-supernode packet-level experiment — paper Figures 10 and 11.
//
// One supernode with a fixed uplink serves K players (the paper sweeps
// K = 5..25). Each player runs one of the five catalog games (round-robin,
// so the mix is balanced) and receives per-frame video segments whose
// deadlines follow its game's response latency requirement. The experiment
// toggles the two Section-III strategies independently:
//
//   adaptation = false, scheduling = false   -> CloudFog/B
//   adaptation = true,  scheduling = false   -> CloudFog-adapt   (Fig 10)
//   adaptation = false, scheduling = true    -> CloudFog-schedule(Fig 11)
//   adaptation = true,  scheduling = true    -> CloudFog/A
//
// A player is satisfied when >= 95% of its packets arrive within its game's
// response latency (the paper's definition).
#pragma once

#include <cstdint>

#include "core/cloudfog_config.h"
#include "exec/run_executor.h"
#include "stream/encoder.h"
#include "util/types.h"

namespace cloudfog::systems {

struct SupernodeExperimentConfig {
  std::size_t num_players = 15;
  Kbps uplink_kbps = 23'000.0;  // supernode upload capacity
  TimeMs warmup_ms = 6'000.0;  // lets the adaptation loop converge
  TimeMs duration_ms = 30'000.0;
  TimeMs drain_ms = 1'000.0;

  bool adaptation = false;
  bool scheduling = false;

  /// Action -> rendered-segment-at-supernode delay (player->cloud uplink +
  /// state computation + update feed + rendering), lognormally jittered.
  TimeMs pipeline_ms = 8.0;
  double pipeline_jitter_sigma = 0.10;

  /// Supernode -> player propagation: per-player mean spread around
  /// prop_mean_ms (lognormal sigma prop_spread_sigma), per-packet jitter on
  /// top (lognormal sigma prop_jitter_sigma).
  TimeMs prop_mean_ms = 12.0;
  double prop_spread_sigma = 0.45;
  double prop_jitter_sigma = 0.10;

  /// Per-packet network loss probability on the (local) supernode paths.
  /// Defaults to 0: Figures 10/11 isolate the strategies from random loss.
  double network_loss_rate = 0.0;

  /// Model the supernode's GPU as a bounded serial render stage: each
  /// frame costs resolution-proportional render time and queues behind the
  /// other players' frames. 0 disables (rendering folded into pipeline_ms,
  /// the paper's "rendering is relatively less hardware demanding"
  /// assumption). Units: megapixels per second of render throughput.
  double render_capacity_mpx_per_s = 0.0;

  double fps = 30.0;
  int frames_per_segment = 1;   // per-frame segments: packet-level fidelity
  /// VBR size variation per segment (lognormal sigma, mean-preserving).
  /// Ignored when use_gop_encoder is set.
  double segment_size_sigma = 0.30;
  /// Use the structured GOP encoder (stream::EncoderModel) instead of the
  /// lognormal VBR model: I/P frame pattern, and adaptation level switches
  /// actuate at GOP boundaries instead of instantly.
  bool use_gop_encoder = false;
  stream::EncoderConfig encoder{};
  TimeMs adaptation_tick_ms = 200.0;

  core::CloudFogConfig cloudfog = core::CloudFogConfig::defaults();
  std::uint64_t seed = 7;

  TimeMs segment_period_ms() const {
    return static_cast<double>(frames_per_segment) / fps * 1000.0;
  }
};

struct SupernodeExperimentResult {
  double satisfied_fraction = 0.0;
  double mean_continuity = 0.0;
  double mean_response_latency_ms = 0.0;
  double mean_quality_level = 0.0;
  std::uint64_t packets_submitted = 0;
  std::uint64_t packets_on_time = 0;
  std::uint64_t packets_dropped = 0;
  double offered_load() const;  // vs uplink, diagnostic
  Kbps offered_kbps = 0.0;
  Kbps uplink_kbps = 0.0;
};

SupernodeExperimentResult run_supernode_experiment(
    const SupernodeExperimentConfig& config);

/// Fans independent experiment configs across `executor`; results are
/// ordered by submission index, so aggregation is bit-identical at any
/// --jobs value. Each run is self-contained (the experiment builds all of
/// its state from `config`).
std::vector<SupernodeExperimentResult> run_supernode_experiments(
    const std::vector<SupernodeExperimentConfig>& configs,
    exec::RunExecutor& executor);

}  // namespace cloudfog::systems
