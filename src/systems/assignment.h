// Player-to-server assignment for each system under comparison.
//
//   * Cloud      — every player streams from its nearest datacenter
//                  (the current cloud gaming model, e.g. GamingAnywhere).
//   * EdgeCloud  — extra full-capability edge servers take over players for
//                  whom they are closer than any datacenter, up to their
//                  capacity; everyone else stays on the cloud.
//   * CloudFog   — the Section III-A3 supernode assignment: players attach
//                  to a probed, qualified, capacity-available supernode;
//                  otherwise they connect directly to the cloud.
#pragma once

#include <cstdint>
#include <vector>

#include "core/supernode_manager.h"
#include "systems/scenario.h"
#include "util/types.h"

namespace cloudfog::systems {

/// Which system serves the players.
enum class SystemKind : std::uint8_t {
  kCloud,
  kEdgeCloud,
  kCloudFogB,        // fog infrastructure only
  kCloudFogAdapt,    // B + receiver-driven rate adaptation
  kCloudFogSchedule, // B + deadline-driven sender scheduling
  kCloudFogA,        // B + both strategies
};

const char* to_string(SystemKind kind);
bool uses_supernodes(SystemKind kind);
bool uses_adaptation(SystemKind kind);
bool uses_scheduling(SystemKind kind);

/// Kind of entity streaming to a player.
enum class ServerType : std::uint8_t { kDatacenter, kEdge, kSupernode };

/// One player's serving arrangement.
struct PlayerAssignment {
  std::size_t pop_index = 0;           // population index of the player
  NodeId server = kInvalidNode;        // streaming server host
  ServerType type = ServerType::kDatacenter;
  NodeId home_dc = kInvalidNode;       // nearest datacenter (action path)
  TimeMs stream_one_way_ms = 0.0;      // expected server->player latency
};

/// The full assignment for a set of active players.
struct AssignmentPlan {
  SystemKind kind = SystemKind::kCloud;
  std::vector<PlayerAssignment> players;
  /// Population indices of supernodes that actually serve someone
  /// (CloudFog kinds only) — determines the Lambda update-feed cost.
  std::vector<std::size_t> active_supernodes;

  std::size_t supernode_supported() const;
  std::size_t edge_supported() const;
  std::size_t cloud_supported() const;
};

/// Builds the assignment of `active_players` (population indices) under
/// `kind`. CloudFog kinds run the Section III-A3 algorithm; `l_max` per
/// player is its game's response latency requirement (a supernode farther
/// than that one-way can never stream on time).
AssignmentPlan assign_players(SystemKind kind, const Scenario& scenario,
                              const std::vector<std::size_t>& active_players,
                              util::Rng& rng);

}  // namespace cloudfog::systems
