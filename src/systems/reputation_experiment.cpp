#include "systems/reputation_experiment.h"

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace cloudfog::systems {

ReputationExperimentResult run_reputation_experiment(
    const ReputationExperimentConfig& config) {
  CF_CHECK_MSG(config.num_supernodes >= 1, "need supernodes");
  CF_CHECK_MSG(config.players_per_supernode >= 1, "need players");
  CF_CHECK_MSG(config.malicious_fraction >= 0.0 && config.malicious_fraction <= 1.0,
               "malicious fraction must be a probability");
  CF_CHECK_MSG(config.rounds >= 10, "too few rounds to measure anything");

  util::Rng rng(config.seed);
  util::Rng behavior_rng = rng.fork("behavior");
  core::ReputationSystem reputation(config.reputation);

  struct Node {
    NodeId id;
    bool malicious;
    bool evicted = false;
  };
  std::vector<Node> roster;
  NodeId next_id = 0;
  const auto target_malicious = static_cast<std::size_t>(
      config.malicious_fraction * static_cast<double>(config.num_supernodes) + 0.5);
  for (std::size_t i = 0; i < config.num_supernodes; ++i) {
    roster.push_back({next_id++, i < target_malicious});
  }
  rng.shuffle(roster);

  ReputationExperimentResult result;
  result.malicious = target_malicious;

  const std::size_t window = std::max<std::size_t>(1, config.rounds / 10);
  std::uint64_t early_bad = 0, early_total = 0, late_bad = 0, late_total = 0;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (Node& node : roster) {
      if (node.evicted) continue;
      for (std::size_t p = 0; p < config.players_per_supernode; ++p) {
        const double fail_rate = node.malicious
                                     ? config.sabotage_rate
                                     : config.honest_failure_rate;
        const bool ok = !behavior_rng.bernoulli(fail_rate);
        reputation.report(node.id, ok);
        if (round < window) {
          ++early_total;
          if (!ok) ++early_bad;
        }
        if (round >= config.rounds - window) {
          ++late_total;
          if (!ok) ++late_bad;
        }
      }
    }
    if (config.enable_eviction) {
      std::size_t replacements = 0;  // appending mid-loop would invalidate
      for (Node& node : roster) {
        if (node.evicted || !reputation.should_evict(node.id)) continue;
        node.evicted = true;
        ++result.evicted_total;
        ++replacements;
        if (node.malicious) {
          ++result.true_positives;
          if (result.rounds_to_first_detection == 0)
            result.rounds_to_first_detection = round + 1;
        } else {
          ++result.false_positives;
        }
      }
      // Replace each evicted node with a freshly vetted honest machine:
      // the roster size (and thus serving capacity) is maintained.
      for (std::size_t i = 0; i < replacements; ++i) {
        roster.push_back({next_id++, false});
      }
    }
  }

  result.early_bad_rate = early_total == 0
                              ? 0.0
                              : static_cast<double>(early_bad) /
                                    static_cast<double>(early_total);
  result.late_bad_rate = late_total == 0
                             ? 0.0
                             : static_cast<double>(late_bad) /
                                   static_cast<double>(late_total);
  return result;
}

}  // namespace cloudfog::systems
