// Cloud bandwidth consumption — paper Figure 7 and Equation (2).
//
// With N active players streaming at their games' target bitrates:
//   * Cloud      — the datacenters upload every player's full video.
//   * EdgeCloud  — edge-served players don't hit the cloud ("the bandwidth
//                  consumption of EdgeCloud does not include those of
//                  additional servers", paper Section IV).
//   * CloudFog   — supernode-served players don't hit the cloud; instead
//                  the cloud sends each active supernode a Lambda-rate
//                  update feed. CloudFog/A and /B consume identically
//                  (the strategies do not change cloud traffic).
#pragma once

#include <cstdint>

#include "systems/assignment.h"
#include "systems/scenario.h"

namespace cloudfog::systems {

struct BandwidthResult {
  double cloud_mbps = 0.0;        // total cloud streaming + update traffic
  double update_feed_mbps = 0.0;  // the Lambda x m component (CloudFog only)
  std::size_t players = 0;
  std::size_t cloud_supported = 0;
  std::size_t edge_supported = 0;
  std::size_t supernode_supported = 0;
  std::size_t active_supernodes = 0;
  /// Realised Equation (2) reduction vs. the all-cloud system, in Mbps.
  double reduction_vs_cloud_mbps = 0.0;
};

/// Computes cloud bandwidth for `num_players` active players (a random but
/// seed-deterministic subset of the population) under `kind`.
BandwidthResult measure_bandwidth(SystemKind kind, const Scenario& scenario,
                                  std::size_t num_players);

}  // namespace cloudfog::systems
