#include "systems/bandwidth.h"

#include "util/check.h"

namespace cloudfog::systems {

BandwidthResult measure_bandwidth(SystemKind kind, const Scenario& scenario,
                                  std::size_t num_players) {
  CF_CHECK_MSG(num_players >= 1, "need at least one player");
  CF_CHECK_MSG(num_players <= scenario.population().size(),
               "more players requested than the population holds");

  util::Rng rng = scenario.fork_rng("bandwidth");
  const auto sample = rng.sample_indices(scenario.population().size(), num_players);
  std::vector<std::size_t> active(sample.begin(), sample.end());

  util::Rng assign_rng = rng.fork("assign");
  const AssignmentPlan plan = assign_players(kind, scenario, active, assign_rng);

  BandwidthResult result;
  result.players = num_players;
  result.cloud_supported = plan.cloud_supported();
  result.edge_supported = plan.edge_supported();
  result.supernode_supported = plan.supernode_supported();
  result.active_supernodes = plan.active_supernodes.size();

  Kbps cloud_kbps = 0.0;
  Kbps all_cloud_kbps = 0.0;  // what the pure-Cloud system would upload
  for (const PlayerAssignment& pa : plan.players) {
    const game::GameProfile& profile =
        game::game_by_id(scenario.player_game(pa.pop_index));
    const Kbps rate =
        game::quality_for_level(profile.target_quality_level).bitrate_kbps;
    all_cloud_kbps += rate;
    if (pa.type == ServerType::kDatacenter) cloud_kbps += rate;
  }
  const Kbps update_kbps = scenario.params().update_stream_kbps *
                           static_cast<double>(plan.active_supernodes.size());
  result.update_feed_mbps = update_kbps / 1000.0;
  result.cloud_mbps = (cloud_kbps + update_kbps) / 1000.0;
  result.reduction_vs_cloud_mbps = (all_cloud_kbps - cloud_kbps - update_kbps) / 1000.0;
  return result;
}

}  // namespace cloudfog::systems
