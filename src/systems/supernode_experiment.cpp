#include "systems/supernode_experiment.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rate_adaptation.h"
#include "core/supernode_sender.h"
#include "metrics/qoe.h"
#include "sim/simulator.h"
#include "stream/queued_sender.h"
#include "stream/receiver_buffer.h"
#include "stream/video.h"
#include "util/check.h"
#include "util/stats.h"

namespace cloudfog::systems {

double SupernodeExperimentResult::offered_load() const {
  return uplink_kbps > 0.0 ? offered_kbps / uplink_kbps : 0.0;
}

namespace {

struct Player {
  game::GameProfile profile;
  TimeMs prop_mean_ms = 0.0;
  int level = 0;
  Kbit arrived_at_last_tick = 0.0;
  std::optional<core::RateAdaptationController> controller;
  std::optional<stream::ReceiverBuffer> buffer;
  std::optional<stream::EncoderModel> encoder;
};

struct Tracker {
  NodeId player = kInvalidNode;
  TimeMs action_ms = 0.0;
  int live = 0;
  TimeMs last_arrival = 0.0;
  bool delivered_any = false;
  bool measured = false;
};

}  // namespace

SupernodeExperimentResult run_supernode_experiment(
    const SupernodeExperimentConfig& config) {
  CF_CHECK_MSG(config.num_players >= 1, "need at least one player");
  CF_CHECK_MSG(config.uplink_kbps > 0.0, "uplink must be positive");

  sim::Simulator sim;
  util::Rng rng(config.seed);
  util::Rng setup_rng = rng.fork("setup");
  util::Rng jitter_rng = rng.fork("jitter");
  stream::SegmentFactory factory;
  metrics::QoECollector qoe;
  std::vector<Player> players(config.num_players);
  std::unordered_map<std::uint64_t, Tracker> trackers;
  util::RunningStats level_stats;
  std::uint64_t drops = 0;
  std::uint64_t on_time = 0;
  std::uint64_t submitted = 0;

  const TimeMs period = config.segment_period_ms();
  const TimeMs window_end = config.warmup_ms + config.duration_ms;
  // Optional bounded render stage ("kbit" = megapixels, "kbps" = Mpx/s).
  std::optional<stream::QueuedSender> render_stage;
  if (config.render_capacity_mpx_per_s > 0.0) {
    render_stage.emplace(config.render_capacity_mpx_per_s);
  }
  auto in_window = [&](TimeMs t0) {
    return t0 >= config.warmup_ms && t0 < window_end;
  };

  // Player setup: balanced game mix, lognormal per-player propagation mean.
  const auto num_games = game::game_catalog().size();
  for (std::size_t i = 0; i < players.size(); ++i) {
    Player& p = players[i];
    p.profile = game::game_by_id(static_cast<game::GameId>(i % num_games));
    p.prop_mean_ms =
        config.prop_mean_ms * setup_rng.lognormal(0.0, config.prop_spread_sigma);
    p.level = p.profile.target_quality_level;
    if (config.use_gop_encoder) {
      auto enc_config = config.encoder;
      enc_config.fps = config.fps;
      p.encoder.emplace(enc_config, p.level);
    }
    if (config.adaptation) {
      p.controller.emplace(p.profile, config.cloudfog.adaptation);
      p.buffer.emplace(game::quality_for_level(p.level).bitrate_kbps);
      p.buffer->on_arrival(
          0.0, game::quality_for_level(p.level).bitrate_kbps * period / 1000.0);
    }
  }

  core::SupernodeSender sender(
      sim, config.uplink_kbps,
      config.scheduling ? core::SupernodeSender::Discipline::kDeadline
                        : core::SupernodeSender::Discipline::kFifo,
      config.cloudfog.scheduler,
      [&](NodeId player, util::Rng& prop_rng) {
        return players[player].prop_mean_ms *
               prop_rng.lognormal(0.0, config.prop_jitter_sigma);
      },
      [&](const core::PacketDelivery& d) {
        auto it = trackers.find(d.segment_id);
        if (it == trackers.end()) return;
        Tracker& t = it->second;
        if (t.measured && d.on_time()) {
          qoe.player(t.player).units_on_time += 1.0;
          ++on_time;
        }
        if (!d.lost) {
          t.delivered_any = true;
          t.last_arrival = std::max(t.last_arrival, d.arrival_ms);
        }
        --t.live;
        const NodeId who = t.player;
        const bool measured = t.measured && t.delivered_any;
        const TimeMs action = t.action_ms;
        const TimeMs last = t.last_arrival;
        if (t.live <= 0) {
          if (measured) qoe.add_latency(who, last - action);
          trackers.erase(it);
        }
        if (players[who].buffer && !d.lost) {
          const Kbit size = d.size_kbit;
          const TimeMs when = std::max(d.arrival_ms, sim.now());
          sim.schedule_at(when, [&, who, size] {
            players[who].buffer->on_arrival(sim.now(), size);
          });
        }
      },
      rng.fork("prop"));
  if (config.network_loss_rate > 0.0) {
    sender.set_loss_model(
        [&](NodeId, std::uint64_t) { return config.network_loss_rate; });
  }
  sender.set_drop_observer([&](const stream::VideoSegment& seg, int) {
    auto it = trackers.find(seg.id);
    if (it == trackers.end()) return;
    Tracker& t = it->second;
    if (t.measured) ++drops;
    --t.live;
    if (t.live <= 0) {
      if (t.delivered_any && t.measured)
        qoe.add_latency(t.player, t.last_arrival - t.action_ms);
      trackers.erase(it);
    }
  });

  // Per-player action/segment cadence. The event callbacks capture one
  // reference to these named stages plus the (player, t0) identity — the
  // full [&] capture set would outgrow the sim's inline callback budget.
  TimeMs last_render_enqueue = 0.0;
  auto submit_segment = [&](NodeId player, TimeMs t0) {
    Player& p = players[player];
    stream::VideoSegment seg =
        factory.make(player, p.profile.id, p.level, period, t0);
    if (p.encoder.has_value()) {
      // Structured GOP sizes; the frame's actual (actuated) level wins.
      const auto frame = p.encoder->next_frame(jitter_rng);
      seg.size_kbit = frame.size_kbit *
                      static_cast<double>(config.frames_per_segment);
      seg.quality_level = frame.level;
    } else if (config.segment_size_sigma > 0.0) {
      const double sigma = config.segment_size_sigma;
      seg.size_kbit *= jitter_rng.lognormal(-0.5 * sigma * sigma, sigma);
    }
    Tracker t;
    t.player = player;
    t.action_ms = t0;
    t.live = stream::packet_count(seg.size_kbit);
    t.measured = in_window(t0);
    if (t.measured) {
      qoe.player(player).units_total += static_cast<double>(t.live);
      submitted += static_cast<std::uint64_t>(t.live);
      level_stats.add(static_cast<double>(p.level));
    }
    trackers.emplace(seg.id, t);
    sender.submit(seg);
  };
  auto player_tick = [&](NodeId player) {
    const TimeMs t0 = sim.now();
    if (t0 >= window_end) return;
    TimeMs pipeline =
        config.pipeline_ms *
        jitter_rng.lognormal(0.0, config.pipeline_jitter_sigma);
    if (render_stage.has_value()) {
      // The frame renders after the update arrives, queueing behind the
      // other players' frames on the shared GPU.
      const auto& q = game::quality_for_level(players[player].level);
      const double megapixels =
          static_cast<double>(q.width) * static_cast<double>(q.height) / 1e6;
      // QueuedSender requires monotone enqueue times; pipeline jitter can
      // reorder frame-ready instants, so clamp to the last enqueue.
      const TimeMs ready = std::max(sim.now() + pipeline, last_render_enqueue);
      const auto sched = render_stage->enqueue(ready, megapixels);
      last_render_enqueue = sched.enqueued;
      pipeline = sched.end - sim.now();
    }
    sim.schedule_after(pipeline, [&submit_segment, player, t0] {
      submit_segment(player, t0);
    });
  };
  Kbps offered = 0.0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    offered +=
        game::quality_for_level(players[i].profile.target_quality_level).bitrate_kbps;
    const auto player = static_cast<NodeId>(i);
    const TimeMs phase = setup_rng.uniform(0.0, period);
    sim.schedule_every(phase, period,
                       [&player_tick, player] { player_tick(player); });
    if (config.adaptation) {
      const TimeMs tick_phase = setup_rng.uniform(0.0, config.adaptation_tick_ms);
      sim.schedule_every(tick_phase, config.adaptation_tick_ms, [&, player] {
        Player& p = players[player];
        const Kbps playback = game::quality_for_level(p.level).bitrate_kbps;
        const Kbit tau = playback * period / 1000.0;
        // Windowed download rate d(t_k): data received since the last tick.
        const Kbit arrived = p.buffer->total_arrived_kbit();
        const Kbps download = (arrived - p.arrived_at_last_tick) /
                              config.adaptation_tick_ms * 1000.0;
        p.arrived_at_last_tick = arrived;
        if (p.controller->observe_rates(config.adaptation_tick_ms, download,
                                        playback, tau) !=
            core::RateAdaptationController::Decision::kHold) {
          p.level = p.controller->level();
          if (p.encoder.has_value()) {
            // GOP semantics: the switch actuates at the next I-frame; the
            // playback (consumption) rate follows the *encoded* level, which
            // next_frame() reports per segment.
            p.encoder->request_level(p.level);
          }
          p.buffer->set_playback_rate(
              sim.now(), game::quality_for_level(p.level).bitrate_kbps);
        }
      });
    }
  }

  sim.run_until(window_end + config.drain_ms);

  SupernodeExperimentResult result;
  result.satisfied_fraction = qoe.satisfied_fraction();
  result.mean_continuity = qoe.mean_continuity();
  result.mean_response_latency_ms = qoe.mean_response_latency_ms();
  result.mean_quality_level = level_stats.mean();
  result.packets_submitted = submitted;
  result.packets_on_time = on_time;
  result.packets_dropped = drops;
  result.offered_kbps = offered;
  result.uplink_kbps = config.uplink_kbps;
  return result;
}

std::vector<SupernodeExperimentResult> run_supernode_experiments(
    const std::vector<SupernodeExperimentConfig>& configs,
    exec::RunExecutor& executor) {
  std::vector<
      std::pair<std::string, std::function<SupernodeExperimentResult()>>>
      tasks;
  tasks.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SupernodeExperimentConfig& config = configs[i];
    tasks.emplace_back("run=" + std::to_string(i) +
                           " players=" + std::to_string(config.num_players) +
                           " seed=" + std::to_string(config.seed),
                       [&config] { return run_supernode_experiment(config); });
  }
  return executor.map(std::move(tasks));
}

}  // namespace cloudfog::systems
