#include "systems/scenario.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudfog::systems {

ScenarioParams ScenarioParams::simulation_defaults(std::uint64_t seed) {
  ScenarioParams p;
  p.seed = seed;
  return p;
}

ScenarioParams ScenarioParams::planetlab_defaults(std::uint64_t seed) {
  ScenarioParams p;
  p.planetlab = true;
  p.num_players = 750;
  p.num_datacenters = 2;
  p.num_edge_servers = 8;
  p.num_supernodes = 200;  // drawn from the 300 capable hosts
  p.dc_uplink_kbps = 300'000.0;  // two well-connected university hosts
  p.edge_uplink_kbps = 25'000.0;
  p.edge_capacity = 8;
  p.seed = seed;
  return p;
}

namespace {

net::Topology make_topology(const ScenarioParams& params) {
  if (params.planetlab) {
    // PlanetLab: 750 hosts + Princeton/UCLA datacenters built in; extra
    // edge servers for the EdgeCloud comparison are appended below via the
    // generic builder path, so here we extend the built topology.
    net::Topology topo = net::build_planetlab_topology(params.num_players, params.seed);
    util::Rng rng(params.seed);
    util::Rng edge_rng = rng.fork("pl-edges");
    const auto& metros = net::us_metros();
    // Datacenter sweeps beyond the two built-in hosts (Princeton/UCLA)
    // promote additional sites at the largest metros.
    for (std::size_t i = 2; i < params.num_datacenters; ++i) {
      topo.add_host(net::HostRole::kDatacenter, metros[i - 2].center, 0.5,
                    "DC:" + metros[i - 2].name);
    }
    for (std::size_t i = 0; i < params.num_edge_servers; ++i) {
      const auto& m = metros[edge_rng.index(metros.size())];
      topo.add_host(net::HostRole::kEdgeServer, m.center, 0.5, "Edge:" + m.name);
    }
    return topo;
  }
  net::PlacementConfig placement;
  placement.num_players = params.num_players;
  placement.num_datacenters = params.num_datacenters;
  placement.num_edge_servers = params.num_edge_servers;
  placement.seed = params.seed;
  return net::build_topology(placement,
                             net::LatencyParams::simulation_profile(params.seed));
}

}  // namespace

Scenario::Scenario(ScenarioParams params, net::Topology topology,
                   p2p::Population population, p2p::SocialGraph social)
    : params_(params),
      topology_(std::move(topology)),
      population_(std::move(population)),
      social_(std::move(social)) {}

Scenario Scenario::build(const ScenarioParams& params) {
  CF_CHECK_MSG(params.num_players >= 1, "scenario needs players");
  CF_CHECK_MSG(params.num_datacenters >= 1, "scenario needs a datacenter");

  net::Topology topology = make_topology(params);
  const std::vector<NodeId> player_hosts =
      topology.hosts_with_role(net::HostRole::kPlayer);
  CF_CHECK_MSG(player_hosts.size() == params.num_players,
               "topology/player count mismatch");

  util::Rng rng(params.seed);
  util::Rng pop_rng = rng.fork("population");
  util::Rng social_rng = rng.fork("social");
  util::Rng game_rng = rng.fork("games");
  util::Rng sn_rng = rng.fork("supernode-selection");

  p2p::PopulationConfig pop_config;
  if (params.planetlab) {
    // Paper: 300 of the 750 PlanetLab nodes have supernode capacity.
    pop_config.supernode_capable_fraction =
        std::min(1.0, 300.0 / static_cast<double>(params.num_players));
  }
  p2p::Population population(player_hosts, pop_config, pop_rng);
  p2p::SocialGraph social(population.size(), p2p::SocialGraphConfig{}, social_rng);

  Scenario scenario(params, std::move(topology), std::move(population),
                    std::move(social));

  // Randomly select supernodes among the capable players (paper: "We
  // randomly selected 600 supernodes").
  auto capable = scenario.population_.supernode_capable_indices();
  sn_rng.shuffle(capable);
  const std::size_t count = std::min(params.num_supernodes, capable.size());
  scenario.supernode_players_.assign(capable.begin(),
                                     capable.begin() + static_cast<std::ptrdiff_t>(count));
  std::sort(scenario.supernode_players_.begin(), scenario.supernode_players_.end());
  scenario.is_supernode_.assign(scenario.population_.size(), false);
  for (std::size_t i : scenario.supernode_players_) scenario.is_supernode_[i] = true;

  // Friend-driven static game assignment, mirroring the paper's join rule:
  // players "join" in random order; each picks the majority game among its
  // already-joined friends, or a uniform game when none has joined yet.
  // (A global majority-adoption pass would cascade the whole population
  // onto one game; the sequential rule preserves the paper's mix of
  // clustered-but-diverse game communities.)
  const std::size_t n = scenario.population_.size();
  auto& games = scenario.player_games_;
  games.assign(n, -1);
  std::vector<std::size_t> join_order(n);
  for (std::size_t i = 0; i < n; ++i) join_order[i] = i;
  game_rng.shuffle(join_order);
  for (std::size_t i : join_order) {
    std::vector<game::GameId> friend_games;
    for (std::size_t f : scenario.social_.friends(i)) {
      if (games[f] >= 0) friend_games.push_back(games[f]);
    }
    games[i] = game::choose_game(friend_games, game_rng);
  }
  return scenario;
}

NodeId Scenario::player_host(std::size_t pop_index) const {
  return population_.player(pop_index).host;
}

game::GameId Scenario::player_game(std::size_t pop_index) const {
  CF_CHECK_MSG(pop_index < player_games_.size(), "player index out of range");
  return player_games_[pop_index];
}

bool Scenario::is_supernode_player(std::size_t pop_index) const {
  CF_CHECK_MSG(pop_index < is_supernode_.size(), "player index out of range");
  return is_supernode_[pop_index];
}

int Scenario::supernode_capacity(std::size_t pop_index) const {
  const double c = population_.player(pop_index).capacity;
  return std::max(1, static_cast<int>(std::lround(c)));
}

Kbps Scenario::supernode_uplink_kbps(std::size_t pop_index) const {
  return static_cast<double>(supernode_capacity(pop_index)) *
         params_.supernode_kbps_per_slot;
}

std::vector<NodeId> Scenario::datacenters() const {
  return topology_.hosts_with_role(net::HostRole::kDatacenter);
}

std::vector<NodeId> Scenario::edge_servers() const {
  return topology_.hosts_with_role(net::HostRole::kEdgeServer);
}

util::Rng Scenario::fork_rng(std::string_view label) const {
  return util::Rng(params_.seed).fork(label);
}

}  // namespace cloudfog::systems
