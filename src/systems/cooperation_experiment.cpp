#include "systems/cooperation_experiment.h"

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/supernode_sender.h"
#include "metrics/qoe.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/check.h"

namespace cloudfog::systems {

namespace {

struct Player {
  game::GameProfile profile;
  TimeMs prop_mean_ms = 0.0;
  int primary = 0;  // 0 = supernode A, 1 = supernode B
};

struct Tracker {
  NodeId player = kInvalidNode;
  TimeMs action_ms = 0.0;
  int live = 0;
  TimeMs last_arrival = 0.0;
  bool delivered_any = false;
  bool measured = false;
};

/// Splits a segment's packets into the even-index and odd-index halves,
/// rebuilt as two smaller segments sharing the deadline — the striping
/// unit a cooperating pair transmits in parallel.
std::array<stream::VideoSegment, 2> stripe(const stream::VideoSegment& seg) {
  const auto packets = stream::packetize(seg);
  std::array<stream::VideoSegment, 2> halves{seg, seg};
  halves[0].size_kbit = 0.0;
  halves[1].size_kbit = 0.0;
  for (const auto& p : packets) {
    halves[static_cast<std::size_t>(p.index % 2)].size_kbit += p.size_kbit;
  }
  return halves;
}

}  // namespace

CooperationExperimentResult run_cooperation_experiment(
    const CooperationExperimentConfig& config) {
  CF_CHECK_MSG(config.num_players >= 2, "need at least two players");
  CF_CHECK_MSG(config.primary_skew >= 0.0 && config.primary_skew <= 1.0,
               "skew must be a probability");

  sim::Simulator sim;
  util::Rng rng(config.seed);
  util::Rng setup_rng = rng.fork("setup");
  util::Rng jitter_rng = rng.fork("jitter");
  stream::SegmentFactory factory;
  metrics::QoECollector qoe;
  std::vector<Player> players(config.num_players);
  std::unordered_map<std::uint64_t, Tracker> trackers;
  // Striped halves carry distinct wire ids but share one tracker (the
  // response latency is the arrival of the LAST packet across both paths).
  std::unordered_map<std::uint64_t, std::uint64_t> alias;

  const TimeMs period = 1'000.0 / config.fps;
  const TimeMs window_end = config.warmup_ms + config.duration_ms;
  auto in_window = [&](TimeMs t0) {
    return t0 >= config.warmup_ms && t0 < window_end;
  };

  const auto num_games = game::game_catalog().size();
  double offered_a = 0.0, offered_b = 0.0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    Player& p = players[i];
    p.profile = game::game_by_id(static_cast<game::GameId>(i % num_games));
    p.prop_mean_ms =
        config.prop_mean_ms * setup_rng.lognormal(0.0, config.prop_spread_sigma);
    p.primary = setup_rng.bernoulli(config.primary_skew) ? 0 : 1;
    const Kbps rate =
        game::quality_for_level(p.profile.target_quality_level).bitrate_kbps;
    (p.primary == 0 ? offered_a : offered_b) += rate;
  }

  auto on_delivery = [&](const core::PacketDelivery& d) {
    std::uint64_t key = d.segment_id;
    if (const auto a = alias.find(key); a != alias.end()) key = a->second;
    auto it = trackers.find(key);
    if (it == trackers.end()) return;
    Tracker& t = it->second;
    if (t.measured && d.on_time()) qoe.player(t.player).units_on_time += 1.0;
    if (!d.lost) {
      t.delivered_any = true;
      t.last_arrival = std::max(t.last_arrival, d.arrival_ms);
    }
    --t.live;
    if (t.live <= 0) {
      if (t.measured && t.delivered_any)
        qoe.add_latency(t.player, t.last_arrival - t.action_ms);
      trackers.erase(it);
    }
  };
  auto prop_fn = [&](NodeId player, util::Rng& prop_rng) {
    return players[player].prop_mean_ms *
           prop_rng.lognormal(0.0, config.prop_jitter_sigma);
  };

  std::array<std::optional<core::SupernodeSender>, 2> senders;
  for (std::size_t s = 0; s < 2; ++s) {
    senders[s].emplace(sim, config.uplink_kbps,
                       core::SupernodeSender::Discipline::kFifo,
                       core::DeadlineSchedulerConfig{}, prop_fn, on_delivery,
                       rng.fork("prop" + std::to_string(s)));
  }

  // A striped half-segment needs its own tracker-visible id; the factory
  // keeps ids unique, so halves register as separate segments of the same
  // (player, action) and share a combined tracker via their own entries.
  // The event callbacks capture one reference to these named stages plus
  // the (player, t0) identity — the full [&] capture set would outgrow the
  // sim's inline callback budget.
  auto submit_segment = [&](NodeId player, TimeMs t0) {
    Player& p = players[player];
    stream::VideoSegment seg = factory.make(
        player, p.profile.id, p.profile.target_quality_level, period, t0);
    if (config.segment_size_sigma > 0.0) {
      const double sigma = config.segment_size_sigma;
      seg.size_kbit *= jitter_rng.lognormal(-0.5 * sigma * sigma, sigma);
    }
    const bool measured = in_window(t0);
    if (measured) {
      qoe.player(player).units_total +=
          static_cast<double>(stream::packet_count(seg.size_kbit));
    }
    if (config.enable_striping) {
      auto halves = stripe(seg);
      Tracker t;
      t.player = player;
      t.action_ms = t0;
      t.live = stream::packet_count(seg.size_kbit);
      t.measured = measured;
      trackers.emplace(seg.id, t);
      for (std::size_t s = 0; s < 2; ++s) {
        if (halves[s].size_kbit <= 0.0) continue;
        halves[s].id = seg.id * 2'000'000 + s;  // distinct wire ids
        alias.emplace(halves[s].id, seg.id);
        // Half s goes to (primary + s) mod 2: primary gets the even
        // half, the partner the odd one.
        senders[(static_cast<std::size_t>(p.primary) + s) % 2]->submit(
            halves[s]);
      }
    } else {
      Tracker t;
      t.player = player;
      t.action_ms = t0;
      t.live = stream::packet_count(seg.size_kbit);
      t.measured = measured;
      trackers.emplace(seg.id, t);
      senders[static_cast<std::size_t>(p.primary)]->submit(seg);
    }
  };
  auto player_tick = [&](NodeId player) {
    const TimeMs t0 = sim.now();
    if (t0 >= window_end) return;
    const TimeMs pipeline =
        config.pipeline_ms *
        jitter_rng.lognormal(0.0, config.pipeline_jitter_sigma);
    sim.schedule_after(pipeline, [&submit_segment, player, t0] {
      submit_segment(player, t0);
    });
  };
  for (std::size_t i = 0; i < players.size(); ++i) {
    const auto player = static_cast<NodeId>(i);
    const TimeMs phase = setup_rng.uniform(0.0, period);
    sim.schedule_every(phase, period,
                       [&player_tick, player] { player_tick(player); });
  }

  sim.run_until(window_end + config.drain_ms);

  CooperationExperimentResult result;
  result.satisfied_fraction = qoe.satisfied_fraction();
  result.mean_continuity = qoe.mean_continuity();
  result.mean_response_latency_ms = qoe.mean_response_latency_ms();
  result.offered_load_a = offered_a / config.uplink_kbps;
  result.offered_load_b = offered_b / config.uplink_kbps;
  return result;
}

std::vector<CooperationExperimentResult> run_cooperation_experiments(
    const std::vector<CooperationExperimentConfig>& configs,
    exec::RunExecutor& executor) {
  std::vector<
      std::pair<std::string, std::function<CooperationExperimentResult()>>>
      tasks;
  tasks.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const CooperationExperimentConfig& config = configs[i];
    tasks.emplace_back(
        "run=" + std::to_string(i) +
            " skew=" + std::to_string(config.primary_skew) +
            " striping=" + (config.enable_striping ? "on" : "off") +
            " seed=" + std::to_string(config.seed),
        [&config] { return run_cooperation_experiment(config); });
  }
  return executor.map(std::move(tasks));
}

}  // namespace cloudfog::systems
