// Dynamic fog simulation: hours of player churn plus supernode
// departures/arrivals, driven through the core::SessionManager.
//
// This exercises the lifecycle story the paper tells but never measures:
// players join (Section III-A3 assignment, backups recorded) and leave;
// supernodes notify-and-leave, triggering backup failover; and, with the
// cooperation extension on, overloaded supernodes shed players to
// neighbours. The result quantifies how well the fog sustains sessions
// under infrastructure churn.
#pragma once

#include <cstdint>

#include "core/session_manager.h"
#include "exec/run_executor.h"
#include "systems/scenario.h"

namespace cloudfog::systems {

struct DynamicSimOptions {
  TimeMs duration_ms = 4.0 * kMsPerHour;
  /// Mean time between a supernode's departures (exponential).
  double supernode_mtbf_hours = 8.0;
  /// How long a departed supernode stays away before rejoining.
  TimeMs supernode_downtime_ms = 30.0 * kMsPerMinute;
  bool enable_failover = true;
  bool enable_cooperation = false;
  /// Utilization above which a cooperating supernode sheds load. Note the
  /// structural ceiling: with per-slot provisioning of k kbps, utilization
  /// cannot exceed max_bitrate / k (0.3 at the default 6,000 kbps/slot).
  double shed_utilization = 0.25;
  TimeMs rebalance_period_ms = 1.0 * kMsPerMinute;
  /// Session/latency sampling cadence for the time-averaged metrics.
  TimeMs sample_period_ms = 5.0 * kMsPerMinute;
  std::uint64_t seed_salt = 0;
};

struct DynamicSimResult {
  std::uint64_t player_joins = 0;
  std::uint64_t supernode_departures = 0;
  /// Players whose serving supernode left underneath them.
  std::uint64_t disruptions = 0;
  std::uint64_t recovered_to_backup = 0;
  std::uint64_t reassigned = 0;
  std::uint64_t fell_to_cloud = 0;
  std::uint64_t rebalance_moves = 0;
  /// Time-averaged fraction of sessions served by supernodes.
  double mean_supernode_session_fraction = 0.0;
  /// Time-averaged mean stream delay of supernode sessions (ms).
  double mean_stream_delay_ms = 0.0;
  /// Time-averaged fraction of supernodes above 90% uplink utilization.
  double mean_hot_supernode_fraction = 0.0;

  /// Of disrupted players, the fraction kept on the fog (not the cloud).
  double recovery_rate() const {
    return disruptions == 0
               ? 1.0
               : static_cast<double>(recovered_to_backup + reassigned) /
                     static_cast<double>(disruptions);
  }
};

/// Runs the dynamic simulation over `scenario`'s population and supernodes.
DynamicSimResult run_dynamic_sim(const Scenario& scenario,
                                 const DynamicSimOptions& options);

/// One self-contained dynamic run for the parallel batch entry point: the
/// scenario is specified by parameters, not by reference, so every run
/// builds (and exclusively owns) its own Scenario — the scenario's
/// latency-model memo caches are not safe to share across workers.
struct DynamicRunSpec {
  ScenarioParams scenario;
  DynamicSimOptions options;
};

/// Fans independent dynamic simulations across `executor`; results are
/// ordered by submission index, so aggregation is bit-identical at any
/// --jobs value.
std::vector<DynamicSimResult> run_dynamic_sims(
    const std::vector<DynamicRunSpec>& runs, exec::RunExecutor& executor);

}  // namespace cloudfog::systems
