// Experiment scenario: everything the Section-IV experiments share — the
// topology (simulation or PlanetLab profile), the player population, the
// social graph, the selected supernodes and a friend-driven static game
// assignment. Systems (Cloud / EdgeCloud / CloudFog) are evaluated over the
// same scenario so their comparison is apples-to-apples, exactly as in the
// paper.
#pragma once

#include <cstdint>
#include <vector>

#include "game/game.h"
#include "net/topology.h"
#include "p2p/population.h"
#include "p2p/social_graph.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::systems {

/// All scenario knobs with the paper's Section-IV defaults.
struct ScenarioParams {
  bool planetlab = false;
  std::size_t num_players = 10'000;
  std::size_t num_datacenters = 5;     // paper default (sim); 2 on PlanetLab
  std::size_t num_edge_servers = 45;   // EdgeCloud extra servers (sim); 8 PL
  std::size_t num_supernodes = 600;    // randomly selected capable players
  std::uint64_t seed = 1;

  // --- capacity / bandwidth model -----------------------------------------
  /// Datacenter streaming uplink (kbps). Bandwidth is the provider's major
  /// expense (paper Section I), so clouds are provisioned close to expected
  /// demand; this knob sets the per-DC provisioning.
  Kbps dc_uplink_kbps = 1'250'000.0;
  Kbps edge_uplink_kbps = 25'000.0;    // per EdgeCloud server
  std::size_t edge_capacity = 8;       // players per EdgeCloud server
  /// A supernode's uplink per unit of its Pareto capacity: a capacity-5
  /// machine offers 5 slots x this rate.
  Kbps supernode_kbps_per_slot = 6'000.0;
  Kbps update_stream_kbps = 100.0;     // Lambda: cloud->supernode update feed
  /// Per-flow WAN throughput cap: effective TCP window over the path RTT
  /// (long paths stream slower — the downstream-rate effect the paper's
  /// design targets). 0 disables the cap.
  Kbit tcp_window_kbit = 256.0;

  // --- supernode segment cache (DESIGN.md §11) -----------------------------
  /// Enables the supernode segment-cache + transcoding subsystem. With the
  /// flag off every existing output is byte-identical to the legacy model —
  /// the cache-off run is the oracle path, like use_spatial_index.
  bool use_segment_cache = false;
  /// Cache capacity per supernode capacity slot (kbit); total capacity is
  /// slots x this. 0 keeps the subsystem engaged but admits nothing — the
  /// ablation's fetch-everything baseline.
  double cache_kbit_per_slot = 4'000.0;
  /// Content-reuse period in segments (0 = every segment unique forever).
  std::uint64_t cache_content_loop_segments = 24;
  /// Cloud -> supernode fetch link and fixed request overhead.
  Kbps cache_fetch_kbps = 100'000.0;
  TimeMs cache_fetch_base_ms = 0.5;
  /// Linear transcode CPU-cost model (see cache::TranscodeModel).
  TimeMs cache_transcode_base_ms = 2.0;
  double cache_transcode_ms_per_kbit = 0.01;
  /// Price of a kbit of cloud egress in equivalent delay-ms — the joint
  /// admission trade-off weight (0 = delay-optimal only).
  double cache_egress_cost_ms_per_kbit = 0.05;

  // --- space-parallel sharded engine (DESIGN.md §13) -----------------------
  /// Geographic shards the streaming run is split across. 1 (default) runs
  /// the literal sequential engine, byte-identical to every prior release;
  /// > 1 selects the sharded engine in src/shard, whose QoE digest is
  /// invariant in the shard count but NOT bit-equal to the sequential
  /// engine (per-entity RNG streams vs one shared jitter stream).
  std::size_t sim_shards = 1;
  /// Forces the sharded engine even at sim_shards == 1 — the single-shard
  /// oracle every multi-shard digest is compared against.
  bool sim_force_sharded = false;
  /// Cooperative cross-supernode cache lookups (sharded engine only): on a
  /// local miss that would hit the cloud, probe this many nearest peer
  /// supernodes first. 0 disables the protocol. The probe/response edges
  /// are what gives the shard windows a finite lookahead.
  std::size_t cache_coop_neighbors = 0;
  /// Supernode-to-supernode transfer rate for cooperative cache hits.
  Kbps cache_coop_kbps = 50'000.0;

  // --- pipeline timing ------------------------------------------------------
  TimeMs compute_ms = 4.0;  // game-state computation at the cloud
  TimeMs render_ms = 4.0;   // video rendering (cloud, edge or supernode)

  // --- video ---------------------------------------------------------------
  double fps = 30.0;             // OnLive's frame rate (paper Section IV)
  int frames_per_segment = 2;    // ~67 ms segments in system-level runs
  /// VBR size variation: per-segment lognormal sigma (I-frames vs P-frames).
  double segment_size_sigma = 0.30;

  TimeMs segment_period_ms() const {
    return static_cast<double>(frames_per_segment) / fps * 1000.0;
  }

  /// Paper simulation-profile defaults (10,000 players, 5 DCs, 45 edge
  /// servers, 600 supernodes).
  static ScenarioParams simulation_defaults(std::uint64_t seed = 1);

  /// Paper PlanetLab-profile defaults (750 nodes, 2 DCs at Princeton/UCLA,
  /// 8 edge servers, supernodes drawn from 300 capable hosts).
  static ScenarioParams planetlab_defaults(std::uint64_t seed = 1);
};

/// A fully built world shared by all systems under comparison.
class Scenario {
 public:
  static Scenario build(const ScenarioParams& params);

  const ScenarioParams& params() const { return params_; }
  const net::Topology& topology() const { return topology_; }
  const p2p::Population& population() const { return population_; }
  const p2p::SocialGraph& social() const { return social_; }

  /// Population indices selected as supernodes (size <= num_supernodes,
  /// limited by the number of capable players).
  const std::vector<std::size_t>& supernode_players() const {
    return supernode_players_;
  }

  /// Static friend-driven game assignment for every player.
  const std::vector<game::GameId>& player_games() const { return player_games_; }

  NodeId player_host(std::size_t pop_index) const;
  game::GameId player_game(std::size_t pop_index) const;
  bool is_supernode_player(std::size_t pop_index) const;

  /// Supernode slot count: its Pareto capacity rounded to >= 1.
  int supernode_capacity(std::size_t pop_index) const;
  /// Supernode uplink: slots x supernode_kbps_per_slot.
  Kbps supernode_uplink_kbps(std::size_t pop_index) const;

  std::vector<NodeId> datacenters() const;
  std::vector<NodeId> edge_servers() const;

  /// A fresh deterministic RNG stream for an experiment component.
  util::Rng fork_rng(std::string_view label) const;

 private:
  Scenario(ScenarioParams params, net::Topology topology,
           p2p::Population population, p2p::SocialGraph social);

  ScenarioParams params_;
  net::Topology topology_;
  p2p::Population population_;
  p2p::SocialGraph social_;
  std::vector<std::size_t> supernode_players_;
  std::vector<bool> is_supernode_;
  std::vector<game::GameId> player_games_;
};

}  // namespace cloudfog::systems
