#include "exec/run_executor.h"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>  // src/exec is the repo's sanctioned thread boundary (cflint exempts it)

#include "obs/metrics.h"
#include "util/check.h"
#include "util/env.h"

namespace cloudfog::exec {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  const long fallback = hw == 0 ? 1 : static_cast<long>(hw);
  // Cached so a bad CLOUDFOG_BENCH_JOBS warns once, not once per sweep.
  static const long jobs =
      util::env_long_or("CLOUDFOG_BENCH_JOBS", 1, 512, fallback);
  return static_cast<std::size_t>(jobs);
}

namespace {

std::string cause_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

RunError::RunError(std::size_t index, std::string label,
                   const std::string& cause)
    : std::runtime_error("run " + std::to_string(index) +
                         (label.empty() ? std::string()
                                        : " (" + label + ")") +
                         " failed: " + cause),
      index_(index),
      label_(std::move(label)) {}

RunExecutor::RunExecutor(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  CF_CHECK_GE(jobs_, 1u);
}

void RunExecutor::execute(std::vector<Run> runs) {
  const std::size_t n = runs.size();
  if (n == 0) return;

  const std::size_t workers = std::min(jobs_, n);
  if (workers <= 1) {
    // The exact sequential code path: same thread, same registry, raw
    // exception propagation.
    for (Run& run : runs) run.fn();
    return;
  }

  // Per-run registries only when the submitter is collecting; otherwise
  // collection stays off everywhere (workers start with no thread-local
  // registry installed).
  obs::MetricsRegistry* caller_registry = obs::registry();
  std::vector<std::unique_ptr<obs::MetricsRegistry>> run_registries;
  if (caller_registry != nullptr) {
    run_registries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      run_registries.push_back(std::make_unique<obs::MetricsRegistry>());
    }
  }

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> cursor{0};

  const auto worker = [&] {
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < n; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      try {
        std::optional<obs::ScopedRegistry> install;
        if (caller_registry != nullptr) install.emplace(*run_registries[i]);
        runs[i].fn();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion): the already
    // started workers will drain every run; join them before rethrowing.
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();

  // The barrier has passed: find the first failed submission index, then
  // fold per-run snapshots into the caller's registry in submission order —
  // stopping after the failed run, which is all a sequential execution
  // would have recorded.
  std::size_t first_error = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i] != nullptr) {
      first_error = i;
      break;
    }
  }
  if (caller_registry != nullptr) {
    const std::size_t merge_end = std::min(n, first_error + 1);
    for (std::size_t i = 0; i < merge_end; ++i) {
      caller_registry->merge_from(*run_registries[i]);
    }
  }
  if (first_error < n) {
    throw RunError(first_error, std::move(runs[first_error].label),
                   cause_of(errors[first_error]));
  }
}

}  // namespace cloudfog::exec
