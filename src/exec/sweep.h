// Generic seed×config sweep fan-out on top of RunExecutor.
//
// run_sweep evaluates `fn(config, seed_index)` for every (config, seed)
// pair of a grid and returns the results indexed [config][seed] — the
// submission order is config-major, seed-minor, exactly the nesting the
// sequential figure binaries used, so aggregating the returned grid in
// index order reproduces the sequential accumulation term for term.
//
// `fn` must be a pure function of its two arguments (plus immutable
// captures): it runs concurrently with other pairs at jobs > 1. Build
// Scenarios and other memoizing state inside `fn`.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/run_executor.h"

namespace cloudfog::exec {

/// Label for one grid cell, attached to worker exceptions.
inline std::string sweep_label(std::size_t config_index, std::size_t seed) {
  return "config=" + std::to_string(config_index) +
         " seed=" + std::to_string(seed);
}

template <typename Config, typename Fn>
auto run_sweep(RunExecutor& executor, const std::vector<Config>& configs,
               std::size_t seeds, Fn&& fn)
    -> std::vector<std::vector<decltype(fn(configs.front(), std::size_t{}))>> {
  using R = decltype(fn(configs.front(), std::size_t{}));
  std::vector<std::pair<std::string, std::function<R()>>> tasks;
  tasks.reserve(configs.size() * seeds);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (std::size_t s = 0; s < seeds; ++s) {
      tasks.emplace_back(sweep_label(c, s),
                         [&fn, &config = configs[c], s] { return fn(config, s); });
    }
  }
  std::vector<R> flat = executor.map(std::move(tasks));
  std::vector<std::vector<R>> grid;
  grid.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<R> row;
    row.reserve(seeds);
    for (std::size_t s = 0; s < seeds; ++s) {
      row.push_back(std::move(flat[c * seeds + s]));
    }
    grid.push_back(std::move(row));
  }
  return grid;
}

}  // namespace cloudfog::exec
