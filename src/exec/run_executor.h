// Parallel experiment executor (DESIGN.md §9).
//
// The unit of work in this repo is the *sweep*: a figure binary evaluates a
// grid of independent (config, seed) runs, each a deterministic function of
// its inputs, then aggregates. RunExecutor fans such runs across a
// fixed-size worker pool while preserving the sequential contract:
//
//   * Results are consumed strictly in submission order, never completion
//     order — callers write each run's result into its own pre-allocated
//     slot and aggregate after the pool barrier, so every printed table,
//     QoE digest and BENCH_*.json is bit-identical at any --jobs value.
//   * jobs == 1 is the exact old code path: runs execute inline on the
//     calling thread, no worker threads are spawned, no per-run metric
//     registries are created and exceptions propagate unwrapped.
//   * Observability: when the submitting thread has a metrics registry
//     installed, each parallel run executes under its own registry
//     (installed thread-locally for the run's duration) and the per-run
//     snapshots are merged into the submitter's registry after the
//     barrier, run-by-run in submission order (obs::MetricsRegistry::
//     merge_from) — counters, peaks and histogram buckets land exactly as
//     a sequential execution would leave them.
//   * A worker exception is captured with the run's identity (submission
//     index + label, e.g. "seed=3 config=70ms") and rethrown on the caller
//     as exec::RunError after every in-flight run finished.
//
// Runs must be self-contained: closures may not share mutable state (build
// the Scenario *inside* the closure — latency-model memo caches are
// per-instance and not thread-safe) and must not touch stdout/stderr;
// print from aggregation, after execute() returns.
//
// src/exec and src/shard are the only places in the repo allowed to create
// threads (scripts/cflint, rule `raw-thread`): run-parallelism fans through
// RunExecutor here, space-parallelism through shard::BarrierPool.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cloudfog::exec {

/// Worker-pool width to use when the caller does not specify one:
/// CLOUDFOG_BENCH_JOBS (validated, one stderr warning on garbage) if set,
/// else std::thread::hardware_concurrency() (minimum 1).
std::size_t default_jobs();

/// A worker run failed: carries the run's submission index and label; the
/// what() string embeds both plus the original exception's message.
class RunError : public std::runtime_error {
 public:
  RunError(std::size_t index, std::string label, const std::string& cause);

  std::size_t run_index() const { return index_; }
  const std::string& run_label() const { return label_; }

 private:
  std::size_t index_;
  std::string label_;
};

class RunExecutor {
 public:
  /// One unit of independent work. `fn` writes its result into caller-owned
  /// storage dedicated to this run; `label` is the (seed, config) identity
  /// attached to exceptions.
  struct Run {
    std::string label;
    std::function<void()> fn;
  };

  /// `jobs` == 0 resolves to default_jobs().
  explicit RunExecutor(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Executes every run and returns after all have finished (the barrier).
  /// With jobs()==1 (or a single run) this is a plain sequential loop on
  /// the calling thread. Otherwise runs are claimed from an atomic cursor
  /// by min(jobs, runs.size()) workers; the first failed submission index
  /// is rethrown as RunError once the pool has joined, after the per-run
  /// registry snapshots of every run up to and including the failed one
  /// have been merged (the sequential path would have recorded exactly
  /// those).
  void execute(std::vector<Run> runs);

  /// Typed fan-out: runs every task and returns the results ordered by
  /// submission index, never completion order.
  template <typename R>
  std::vector<R> map(std::vector<std::pair<std::string, std::function<R()>>> tasks) {
    std::vector<std::optional<R>> slots(tasks.size());
    std::vector<Run> runs;
    runs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      runs.push_back(Run{std::move(tasks[i].first),
                         [&slots, i, fn = std::move(tasks[i].second)] {
                           slots[i].emplace(fn());
                         }});
    }
    execute(std::move(runs));
    std::vector<R> out;
    out.reserve(slots.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  std::size_t jobs_;
};

}  // namespace cloudfog::exec
