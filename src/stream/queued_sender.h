// Fluid FIFO sender queue — the paper's "single queuing buffer to send out
// video segments" ([23], Section III-C), in its baseline first-come-first-
// served form. Used by the Cloud and EdgeCloud baselines and by CloudFog/B.
//
// The queue is fluid: a segment of size s enqueued at time t starts
// transmitting when the link frees up and occupies the link for s / C.
// Everything is O(1) arithmetic per segment, which is what lets the
// system-wide experiments run at the paper's full 10,000-player scale.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace cloudfog::stream {

/// Transmission schedule of one enqueued segment.
struct SendSchedule {
  TimeMs enqueued = 0.0;  // when the segment entered the buffer
  TimeMs start = 0.0;     // first bit leaves the sender
  TimeMs end = 0.0;       // last bit leaves the sender
  /// Queuing delay l_q (Equation 12 component): wait before transmission.
  TimeMs queuing_ms() const { return start - enqueued; }
  /// Transmission time l_t (Equation 12 component).
  TimeMs transmission_ms() const { return end - start; }
  /// Kilobits sent by absolute time `t` for a segment of `size` kbit
  /// (piecewise linear between start and end).
  Kbit sent_by(TimeMs t, Kbit size) const;
};

/// FIFO fluid sender with fixed uplink capacity (kbps).
class QueuedSender {
 public:
  explicit QueuedSender(Kbps capacity_kbps);

  Kbps capacity() const { return capacity_; }

  /// Enqueues a segment of `size_kbit` at time `now` (must not precede the
  /// previous enqueue — callers drive it from simulator time). Returns its
  /// transmission schedule. `rate_cap_kbps` > 0 additionally limits this
  /// segment's serialization rate (per-flow WAN throughput cap); the link
  /// stays occupied for the capped duration.
  SendSchedule enqueue(TimeMs now, Kbit size_kbit, Kbps rate_cap_kbps = 0.0);

  /// The time at which the link becomes idle (== now when idle).
  TimeMs busy_until(TimeMs now) const;

  /// Current backlog, in kilobits, still to be transmitted at `now`.
  Kbit backlog_kbit(TimeMs now) const;

  std::uint64_t segments_sent() const { return segments_; }
  Kbit total_enqueued_kbit() const { return total_kbit_; }

 private:
  Kbps capacity_;
  TimeMs free_at_ = 0.0;
  TimeMs last_enqueue_ = 0.0;
  std::uint64_t segments_ = 0;
  Kbit total_kbit_ = 0.0;
};

}  // namespace cloudfog::stream
