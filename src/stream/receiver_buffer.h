// Player-side receive buffer and playback model.
//
// The receiver stores arriving video data and drains it at the playback
// bitrate; Section III-B's rate adaptation is driven by the estimated
// buffered amount s(t_k) (Equation 7) and the buffered-segment count
// r = s(t_k)/tau (Equation 8). This class maintains exactly those
// quantities plus playback-continuity accounting (stalls happen when the
// buffer empties while the player is consuming).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace cloudfog::stream {

class ReceiverBuffer {
 public:
  /// `playback_rate_kbps` is the consumption rate b_p (the bitrate of the
  /// quality level currently being played).
  explicit ReceiverBuffer(Kbps playback_rate_kbps);

  /// Records `size_kbit` of video data arriving at time `now`.
  void on_arrival(TimeMs now, Kbit size_kbit);

  /// Changes the playback (drain) rate — called when the encoding level
  /// changes. Settles the buffer state up to `now` first.
  void set_playback_rate(TimeMs now, Kbps rate_kbps);

  Kbps playback_rate() const { return playback_rate_; }

  /// Buffered amount s(t) at time `now` (Equation 7), in kilobits.
  /// Validation delegated to settle(): monotone-clock CF_CHECK plus the
  /// occupancy/stall-clock CF_INVARIANTs run on every call.
  Kbit buffered_kbit(TimeMs now);  // lint:allow(trust-boundary)

  /// Buffered-segment count r = s(t)/tau for segment size `tau_kbit`
  /// (Equation 8). Requires tau > 0.
  double buffered_segments(TimeMs now, Kbit tau_kbit);

  /// EWMA of the download rate d(t) in kbps, updated per arrival.
  Kbps download_rate() const { return download_rate_; }

  /// Total kilobits ever delivered into this buffer — harnesses compute
  /// windowed download rates from deltas of this counter.
  Kbit total_arrived_kbit() const { return total_arrived_; }

  /// Time spent stalled (buffer empty while draining) so far.
  TimeMs stall_ms() const { return stall_ms_; }

  /// Number of distinct stall episodes.
  std::uint64_t stall_count() const { return stall_count_; }

  /// Playback continuity in [0, 1]: fraction of elapsed time not stalled.
  /// Defined as 1 before any time elapses. Settles the buffer to `now`.
  /// Validation delegated to settle(), as for buffered_kbit above.
  double continuity(TimeMs now);  // lint:allow(trust-boundary)

 private:
  /// Advances the drain (and stall accounting) to `now`.
  void settle(TimeMs now);

  Kbps playback_rate_;
  Kbit buffered_ = 0.0;
  TimeMs last_settle_ = 0.0;
  TimeMs start_time_ = 0.0;
  bool started_ = false;
  bool stalled_ = false;
  TimeMs stall_ms_ = 0.0;
  std::uint64_t stall_count_ = 0;
  Kbps download_rate_ = 0.0;
  Kbit total_arrived_ = 0.0;
  TimeMs last_arrival_ = 0.0;
  bool saw_arrival_ = false;
};

}  // namespace cloudfog::stream
