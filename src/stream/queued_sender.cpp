#include "stream/queued_sender.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::stream {

Kbit SendSchedule::sent_by(TimeMs t, Kbit size) const {
  if (t >= end) return size;  // covers zero-duration transfers at t == end
  if (t <= start) return 0.0;
  return size * (t - start) / (end - start);
}

QueuedSender::QueuedSender(Kbps capacity_kbps) : capacity_(capacity_kbps) {
  CF_CHECK_MSG(capacity_kbps > 0.0, "sender capacity must be positive");
}

SendSchedule QueuedSender::enqueue(TimeMs now, Kbit size_kbit, Kbps rate_cap_kbps) {
  CF_CHECK_GE(now, last_enqueue_);  // enqueue times must be non-decreasing
  CF_CHECK_GE(size_kbit, 0.0);
  last_enqueue_ = now;
  const Kbps rate = rate_cap_kbps > 0.0 ? std::min(capacity_, rate_cap_kbps)
                                        : capacity_;
  SendSchedule s;
  s.enqueued = now;
  s.start = std::max(now, free_at_);
  s.end = s.start + transmission_ms(size_kbit, rate);
  // Trust boundary: the fluid link must serialise segments back-to-back in
  // enqueue order — a schedule that starts before its enqueue or ends before
  // it starts would let Eq (12)'s l_q / l_t components go negative.
  CF_INVARIANT(s.start >= s.enqueued && s.end >= s.start,
               "send schedule must be causally ordered");
  CF_INVARIANT(s.end >= free_at_, "link busy interval must grow monotonically");
  free_at_ = s.end;
  ++segments_;
  total_kbit_ += size_kbit;
  return s;
}

TimeMs QueuedSender::busy_until(TimeMs now) const { return std::max(now, free_at_); }

Kbit QueuedSender::backlog_kbit(TimeMs now) const {
  return std::max(0.0, (free_at_ - now) / 1000.0 * capacity_);
}

}  // namespace cloudfog::stream
