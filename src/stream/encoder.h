// Structured video encoder model: GOP-patterned frame sizes and
// level-switch semantics.
//
// The paper's supernodes "encode the game video and stream it" with the
// bitrate chosen per Figure 2. Real encoders do not emit constant-size
// frames: a group of pictures (GOP) starts with a large intra-coded
// I-frame followed by small predicted P-frames, and a bitrate change takes
// effect at the next GOP boundary (the encoder must restart prediction).
// This model produces exactly that structure while honouring the target
// bitrate on average:
//
//   size(I) = gop_mean * i_frame_weight / normaliser
//   size(P) = gop_mean * 1.0            / normaliser   (+ residual noise)
//
// where gop_mean is the per-frame average implied by the Figure-2 bitrate.
// It gives the rate-adaptation experiments a physically-grounded VBR
// pattern and a realistic actuation delay for level switches.
#pragma once

#include <cstdint>

#include "game/quality.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::stream {

struct EncoderConfig {
  int gop_length = 30;          // frames per GOP (1 s at 30 fps)
  double i_frame_weight = 6.0;  // I-frame size relative to a P-frame
  /// Residual per-frame size noise (lognormal sigma, mean-preserving);
  /// models scene-complexity variation on top of the GOP structure.
  double residual_sigma = 0.15;
  double fps = 30.0;
};

/// Per-player encoder instance. Frames are produced in display order; the
/// requested quality level is latched and applied at the next GOP start.
class EncoderModel {
 public:
  /// Starts at `initial_level` (a Figure-2 row).
  EncoderModel(EncoderConfig config, int initial_level);

  /// Requests a level change; takes effect at the next I-frame. Returns
  /// the number of frames until it applies (0 if the next frame is an I).
  int request_level(int level);

  /// The level of frames being produced right now.
  int active_level() const { return active_level_; }
  /// The most recently requested level (== active once actuated).
  int pending_level() const { return pending_level_; }

  /// Produces the next frame's size in kilobits.
  struct Frame {
    Kbit size_kbit = 0.0;
    bool is_i_frame = false;
    int level = 0;
    std::uint64_t index = 0;  // global frame counter
  };
  Frame next_frame(util::Rng& rng);

  /// Frames until the next GOP boundary (0 = the next frame is an I-frame).
  int frames_to_gop_boundary() const;

  /// Long-run average frame size at a level (kbit) — bitrate / fps.
  Kbit mean_frame_kbit(int level) const;

  const EncoderConfig& config() const { return config_; }

 private:
  EncoderConfig config_;
  int active_level_;
  int pending_level_;
  std::uint64_t frame_counter_ = 0;  // position within the stream
};

}  // namespace cloudfog::stream
