// Slab-backed storage for per-session stream state — the PR-8 treatment
// (DESIGN.md §12) extended to the stream pipeline.
//
// The streaming harness historically held one heap object per player for
// the fluid sender queue (vector<unique_ptr<QueuedSender>>) and one inline
// optional<ReceiverBuffer> per adaptive player. At million-player scale
// that is a million pointer indirections and allocator round-trips for
// 48–88 bytes of POD-ish state each. SlabStore keeps the values themselves
// in one contiguous vector (structure-of-arrays with the generation/use
// metadata split out), recycles slots through a free list, and hands out
// generation-tagged 64-bit handles — the same (generation << 32 | slot)
// idiom as sim::EventId and core::session_store, so a stale handle for a
// recycled slot is rejected in O(1).
//
// References returned by get() are invalidated by the next create() (the
// slab may grow); callers hold handles, never references, across
// scheduling boundaries. Values must be move-assignable (slot reuse
// assigns a freshly constructed value into the recycled cell). Values
// whose address escapes into scheduled callbacks (SupernodeSender's
// in-flight completion events capture `this`) must all be created before
// the first event runs — growth moves the slab.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cloudfog::stream {

/// Generation-tagged slab handle: (generation >= 1) << 32 | slot.
using StoreHandle = std::uint64_t;
inline constexpr StoreHandle kNullHandle = 0;

template <typename T>
class SlabStore {
 public:
  /// Creates a value in a fresh or recycled slot and returns its handle.
  template <typename... Args>
  StoreHandle create(Args&&... args) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      values_[slot] = T(std::forward<Args>(args)...);
      in_use_[slot] = 1;
    } else {
      CF_CHECK_MSG(
          values_.size() < std::numeric_limits<std::uint32_t>::max(),
          "stream slab exhausted (2^32 concurrent sessions)");
      slot = static_cast<std::uint32_t>(values_.size());
      values_.emplace_back(std::forward<Args>(args)...);
      generations_.push_back(1);
      in_use_.push_back(1);
    }
    ++live_;
    return pack(slot, generations_[slot]);
  }

  /// Releases a live handle's slot back to the free list; the slot's
  /// generation bumps so the handle (and any copy of it) goes stale.
  void destroy(StoreHandle h) {
    const std::uint32_t slot = checked_slot(h);
    in_use_[slot] = 0;
    if (++generations_[slot] == 0) {
      generations_[slot] = 1;  // keep pack() != kNullHandle after a wrap
    }
    free_slots_.push_back(slot);
    CF_INVARIANT(live_ > 0, "destroy of a live handle implies live > 0");
    --live_;
  }

  T& get(StoreHandle h) { return values_[checked_slot(h)]; }
  const T& get(StoreHandle h) const { return values_[checked_slot(h)]; }

  /// True iff `h` names a live (created, not yet destroyed) value.
  bool contains(StoreHandle h) const {
    const auto slot = static_cast<std::uint32_t>(h & 0xffffffffu);
    const auto generation = static_cast<std::uint32_t>(h >> 32);
    return generation != 0 && slot < values_.size() && in_use_[slot] != 0 &&
           generations_[slot] == generation;
  }

  std::size_t live() const { return live_; }
  /// Slots ever materialised (live + free-listed) — the slab footprint.
  std::size_t capacity() const { return values_.size(); }

 private:
  static StoreHandle pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<StoreHandle>(generation) << 32) | slot;
  }

  std::uint32_t checked_slot(StoreHandle h) const {
    CF_CHECK_MSG(contains(h), "stale or null stream-slab handle");
    return static_cast<std::uint32_t>(h & 0xffffffffu);
  }

  std::vector<T> values_;
  std::vector<std::uint32_t> generations_;
  std::vector<std::uint8_t> in_use_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
};

class QueuedSender;
class ReceiverBuffer;

/// Slab of fluid FIFO sender queues (one per DC/edge-served player, one
/// per fluid supernode, and the churn-failover queues of the shard runner).
using FluidSenderStore = SlabStore<QueuedSender>;
/// Slab of player-side receive buffers (adaptive players only).
using ReceiverBufferStore = SlabStore<ReceiverBuffer>;

}  // namespace cloudfog::stream
