// Video primitives: segments and packets.
//
// A supernode renders game video at 30 fps (the paper's OnLive setting) and
// groups frames into segments — the unit a sender enqueues and a deadline is
// attached to. A segment triggered by a player action at time t_m must reach
// the player by t_a = t_m + L~_r (the game's response latency requirement).
// Segments split into network packets (1500-byte MTU) for the packet-level
// experiments (paper Figures 10 and 11).
#pragma once

#include <cstdint>
#include <vector>

#include "game/game.h"
#include "game/quality.h"
#include "util/types.h"

namespace cloudfog::stream {

/// MTU-sized packet payload: 1500 bytes = 12 kbit.
inline constexpr Kbit kPacketKbit = 12.0;

/// Default frames per second (OnLive's service rate, paper Section IV).
inline constexpr double kDefaultFps = 30.0;

/// One video segment to stream to one player.
struct VideoSegment {
  std::uint64_t id = 0;
  NodeId player = kInvalidNode;
  game::GameId game = -1;
  int quality_level = 0;
  TimeMs duration_ms = 0.0;   // wall-clock video time the segment covers
  Kbit size_kbit = 0.0;       // bitrate x duration
  TimeMs action_time_ms = 0.0;  // t_m: the triggering action / frame due time
  TimeMs deadline_ms = 0.0;     // t_a = t_m + latency requirement
  double loss_tolerance = 0.0;  // L~_t of the segment's game
  // Dense per-segment routing handle the submitting harness may stamp (the
  // tracker slab slot, DESIGN.md §14); carried through the scheduler and
  // handed back on every delivery and drop so the hot path never needs a
  // hash lookup on segment id. 0 = untagged.
  std::uint64_t delivery_tag = 0;
};

/// One packet of a segment.
struct Packet {
  std::uint64_t segment_id = 0;
  int index = 0;          // position within the segment
  Kbit size_kbit = 0.0;   // last packet may be short
  TimeMs deadline_ms = 0.0;
  bool dropped = false;
};

/// Number of packets a segment of `size_kbit` splits into (at least 1 for a
/// non-empty segment).
int packet_count(Kbit size_kbit);

/// Splits a segment into MTU packets.
std::vector<Packet> packetize(const VideoSegment& segment);

/// Creates segments with monotonically increasing ids.
class SegmentFactory {
 public:
  /// Builds a segment for `player` playing `game_id`, encoded at
  /// `quality_level`, covering `duration_ms` of video, triggered at
  /// `action_time_ms`. The deadline and loss tolerance come from the game
  /// profile; size = level bitrate x duration.
  VideoSegment make(NodeId player, game::GameId game_id, int quality_level,
                    TimeMs duration_ms, TimeMs action_time_ms);

  std::uint64_t segments_created() const { return next_id_ - 1; }

 private:
  std::uint64_t next_id_ = 1;
};

}  // namespace cloudfog::stream
