#include "stream/video.h"

#include <cmath>

#include "util/check.h"

namespace cloudfog::stream {

int packet_count(Kbit size_kbit) {
  CF_CHECK_MSG(size_kbit >= 0.0, "segment size must be non-negative");
  if (size_kbit == 0.0) return 0;
  return static_cast<int>(std::ceil(size_kbit / kPacketKbit));
}

std::vector<Packet> packetize(const VideoSegment& segment) {
  const int n = packet_count(segment.size_kbit);
  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(n));
  Kbit remaining = segment.size_kbit;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.segment_id = segment.id;
    p.index = i;
    p.size_kbit = std::min(kPacketKbit, remaining);
    p.deadline_ms = segment.deadline_ms;
    remaining -= p.size_kbit;
    packets.push_back(p);
  }
  return packets;
}

VideoSegment SegmentFactory::make(NodeId player, game::GameId game_id,
                                  int quality_level, TimeMs duration_ms,
                                  TimeMs action_time_ms) {
  CF_CHECK_MSG(duration_ms > 0.0, "segment duration must be positive");
  const game::GameProfile& profile = game::game_by_id(game_id);
  const game::QualityLevel& q = game::quality_for_level(quality_level);
  VideoSegment s;
  s.id = next_id_++;
  s.player = player;
  s.game = game_id;
  s.quality_level = quality_level;
  s.duration_ms = duration_ms;
  s.size_kbit = q.bitrate_kbps * duration_ms / 1000.0;
  s.action_time_ms = action_time_ms;
  s.deadline_ms = action_time_ms + profile.latency_requirement_ms;
  s.loss_tolerance = profile.loss_tolerance;
  return s;
}

}  // namespace cloudfog::stream
