#include "stream/receiver_buffer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::stream {

namespace {
/// EWMA smoothing weight for the download-rate estimate.
constexpr double kRateAlpha = 0.3;
}  // namespace

ReceiverBuffer::ReceiverBuffer(Kbps playback_rate_kbps)
    : playback_rate_(playback_rate_kbps) {
  CF_CHECK_MSG(playback_rate_kbps > 0.0, "playback rate must be positive");
}

void ReceiverBuffer::settle(TimeMs now) {
  if (!started_) {
    start_time_ = last_settle_ = now;
    started_ = true;
    return;
  }
  CF_CHECK_MSG(now >= last_settle_, "time must be monotone");
  TimeMs remaining = now - last_settle_;
  if (remaining > 0.0) {
    // Drain until empty, then stall for the rest of the interval.
    const TimeMs drain_time = buffered_ / playback_rate_ * 1000.0;
    if (drain_time >= remaining) {
      buffered_ -= playback_rate_ * remaining / 1000.0;
      if (stalled_) stalled_ = false;
    } else {
      buffered_ = 0.0;
      const TimeMs stalled_for = remaining - drain_time;
      if (!stalled_) {
        ++stall_count_;
        stalled_ = true;
        CF_OBS_COUNT("stream.buffer.stalls", 1);
      }
      stall_ms_ += stalled_for;
    }
  }
  last_settle_ = now;
  // Trust boundaries of the Eq (7) fluid model: occupancy can touch zero
  // (modulo FP rounding in the drain arithmetic, which we forgive up to a
  // nano-kbit and snap back) but never go truly negative, and the stall
  // clock can never run ahead of wall time.
  CF_INVARIANT(buffered_ >= -1e-9, "buffer occupancy must not go negative");
  buffered_ = std::max(buffered_, 0.0);
  CF_INVARIANT(stall_ms_ >= 0.0 &&
                   stall_ms_ <= (now - start_time_) * (1.0 + 1e-9) + 1e-3,
               "stall time cannot exceed elapsed time");
}

void ReceiverBuffer::on_arrival(TimeMs now, Kbit size_kbit) {
  CF_CHECK_GE(size_kbit, 0.0);
  settle(now);
  if (saw_arrival_ && now > last_arrival_) {
    const Kbps instant = size_kbit / (now - last_arrival_) * 1000.0;
    download_rate_ = kRateAlpha * instant + (1.0 - kRateAlpha) * download_rate_;
  } else if (!saw_arrival_) {
    download_rate_ = playback_rate_;  // neutral prior until measured
  }
  saw_arrival_ = true;
  last_arrival_ = now;
  total_arrived_ += size_kbit;
  buffered_ += size_kbit;
  CF_OBS_HIST("stream.buffer.occupancy_kbit", buffered_);
  if (buffered_ > 0.0) stalled_ = false;
}

void ReceiverBuffer::set_playback_rate(TimeMs now, Kbps rate_kbps) {
  CF_CHECK_MSG(rate_kbps > 0.0, "playback rate must be positive");
  settle(now);
  playback_rate_ = rate_kbps;
}

Kbit ReceiverBuffer::buffered_kbit(TimeMs now) {
  settle(now);
  return buffered_;
}

double ReceiverBuffer::buffered_segments(TimeMs now, Kbit tau_kbit) {
  CF_CHECK_MSG(tau_kbit > 0.0, "segment size tau must be positive");
  return buffered_kbit(now) / tau_kbit;
}

double ReceiverBuffer::continuity(TimeMs now) {
  if (!started_ || now <= start_time_) return 1.0;
  settle(now);
  const TimeMs elapsed = now - start_time_;
  return std::clamp(1.0 - stall_ms_ / elapsed, 0.0, 1.0);
}

}  // namespace cloudfog::stream
