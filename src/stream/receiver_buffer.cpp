#include "stream/receiver_buffer.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::stream {

namespace {
/// EWMA smoothing weight for the download-rate estimate.
constexpr double kRateAlpha = 0.3;
}  // namespace

ReceiverBuffer::ReceiverBuffer(Kbps playback_rate_kbps)
    : playback_rate_(playback_rate_kbps) {
  CF_CHECK_MSG(playback_rate_kbps > 0.0, "playback rate must be positive");
}

void ReceiverBuffer::settle(TimeMs now) {
  if (!started_) {
    start_time_ = last_settle_ = now;
    started_ = true;
    return;
  }
  CF_CHECK_MSG(now >= last_settle_, "time must be monotone");
  TimeMs remaining = now - last_settle_;
  if (remaining > 0.0) {
    // Drain until empty, then stall for the rest of the interval.
    const TimeMs drain_time = buffered_ / playback_rate_ * 1000.0;
    if (drain_time >= remaining) {
      buffered_ -= playback_rate_ * remaining / 1000.0;
      if (stalled_) stalled_ = false;
    } else {
      buffered_ = 0.0;
      const TimeMs stalled_for = remaining - drain_time;
      if (!stalled_) {
        ++stall_count_;
        stalled_ = true;
      }
      stall_ms_ += stalled_for;
    }
  }
  last_settle_ = now;
}

void ReceiverBuffer::on_arrival(TimeMs now, Kbit size_kbit) {
  CF_CHECK_MSG(size_kbit >= 0.0, "arrival size must be non-negative");
  settle(now);
  if (saw_arrival_ && now > last_arrival_) {
    const Kbps instant = size_kbit / (now - last_arrival_) * 1000.0;
    download_rate_ = kRateAlpha * instant + (1.0 - kRateAlpha) * download_rate_;
  } else if (!saw_arrival_) {
    download_rate_ = playback_rate_;  // neutral prior until measured
  }
  saw_arrival_ = true;
  last_arrival_ = now;
  total_arrived_ += size_kbit;
  buffered_ += size_kbit;
  if (buffered_ > 0.0) stalled_ = false;
}

void ReceiverBuffer::set_playback_rate(TimeMs now, Kbps rate_kbps) {
  CF_CHECK_MSG(rate_kbps > 0.0, "playback rate must be positive");
  settle(now);
  playback_rate_ = rate_kbps;
}

Kbit ReceiverBuffer::buffered_kbit(TimeMs now) {
  settle(now);
  return buffered_;
}

double ReceiverBuffer::buffered_segments(TimeMs now, Kbit tau_kbit) {
  CF_CHECK_MSG(tau_kbit > 0.0, "segment size tau must be positive");
  return buffered_kbit(now) / tau_kbit;
}

double ReceiverBuffer::continuity(TimeMs now) {
  if (!started_ || now <= start_time_) return 1.0;
  settle(now);
  const TimeMs elapsed = now - start_time_;
  return std::clamp(1.0 - stall_ms_ / elapsed, 0.0, 1.0);
}

}  // namespace cloudfog::stream
