#include "stream/encoder.h"

#include "util/check.h"

namespace cloudfog::stream {

EncoderModel::EncoderModel(EncoderConfig config, int initial_level)
    : config_(config), active_level_(initial_level), pending_level_(initial_level) {
  CF_CHECK_MSG(config.gop_length >= 1, "GOP must contain at least one frame");
  CF_CHECK_MSG(config.i_frame_weight >= 1.0,
               "I-frames cannot be smaller than P-frames");
  CF_CHECK_MSG(config.residual_sigma >= 0.0, "sigma must be non-negative");
  CF_CHECK_MSG(config.fps > 0.0, "fps must be positive");
  (void)game::quality_for_level(initial_level);  // validates the level
}

Kbit EncoderModel::mean_frame_kbit(int level) const {
  return game::quality_for_level(level).bitrate_kbps / config_.fps;
}

int EncoderModel::frames_to_gop_boundary() const {
  const auto pos = static_cast<int>(frame_counter_ %
                                    static_cast<std::uint64_t>(config_.gop_length));
  return pos == 0 ? 0 : config_.gop_length - pos;
}

int EncoderModel::request_level(int level) {
  (void)game::quality_for_level(level);  // validates
  pending_level_ = level;
  return frames_to_gop_boundary();
}

EncoderModel::Frame EncoderModel::next_frame(util::Rng& rng) {
  const bool is_i = frame_counter_ %
                        static_cast<std::uint64_t>(config_.gop_length) ==
                    0;
  if (is_i) active_level_ = pending_level_;  // actuate at the GOP boundary

  // Normaliser so the GOP's total matches gop_length * mean frame size:
  // one I-frame of weight w plus (g-1) P-frames of weight 1.
  const double g = static_cast<double>(config_.gop_length);
  const double normaliser = (config_.i_frame_weight + (g - 1.0)) / g;
  const double weight = is_i ? config_.i_frame_weight : 1.0;
  double size = mean_frame_kbit(active_level_) * weight / normaliser;
  if (config_.residual_sigma > 0.0) {
    const double sigma = config_.residual_sigma;
    size *= rng.lognormal(-0.5 * sigma * sigma, sigma);
  }

  Frame frame;
  frame.size_kbit = size;
  frame.is_i_frame = is_i;
  frame.level = active_level_;
  frame.index = frame_counter_++;
  return frame;
}

}  // namespace cloudfog::stream
