// The supernode-fleet cache/compute service — DESIGN.md §11.
//
// One EdgeCacheService instance per simulation run owns the per-supernode
// SegmentCache set, the Transcoder (deferred-job scheduler) and the
// JointAdmissionPolicy, and makes the hit / transcode / fetch decision for
// every submitted segment:
//
//   request(node, segment, deliver)
//     -> kCacheHit:    deliver() runs inline (no added delay);
//     -> kTranscode:   deliver() fires after the modelled CPU delay,
//                      scheduled on the event engine, owned by `node`;
//     -> kCloudFetch:  deliver() fires after the modelled transfer delay;
//                      the fetched kbits count as cloud egress.
//
// Content addressing: content_index = floor(action_time / duration),
// optionally folded modulo `content_loop_segments` — the content-reuse
// model. A loop of N says the game's visible content (scene library, map
// tiles, spectator feed) revisits an N-segment timeline, which is what an
// edge cache can exploit; 0 means every segment is unique forever and the
// cache can only help across co-located same-game players. DESIGN.md §11
// discusses why this is the honest knob rather than a hidden assumption.
//
// Determinism: decisions are pure functions of (cache state, key, ladder);
// caches/jobs are keyed by node and never iterated; delivery order is
// event-engine order. A run with the service enabled is bit-identical
// across repeats and --jobs widths (tests/integration pins this).
//
// Churn: remove_supernode cancels the node's in-flight jobs through the
// slab engine's O(1) cancel and releases its cache; a CF_CHECK enforces
// that no cache entry outlives its owning supernode.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "cache/admission.h"
#include "cache/segment_cache.h"
#include "cache/transcoder.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/types.h"

namespace cloudfog::cache {

struct EdgeCacheServiceConfig {
  /// Cache capacity per supernode capacity slot (total = slots × this) —
  /// capacity proportional to node capacity, like the uplink.
  double kbit_per_slot = 4'000.0;
  /// Content-reuse period in segments; 0 = all content unique.
  std::uint64_t content_loop_segments = 32;
  AdmissionConfig admission{};
};

/// Aggregate statistics over the whole fleet (misses = transcodes +
/// fetches: every request not served by an exact cached variant).
struct CacheTotals {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t transcodes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t cancelled_jobs = 0;
  std::uint64_t coop_probes = 0;  // misses handed to the peer protocol
  std::uint64_t coop_hits = 0;    // of those, resolved out of a peer cache
  double bytes_edge_kbit = 0.0;   // served without touching the cloud
  double bytes_cloud_kbit = 0.0;  // fetched over the cloud's uplink
  double bytes_peer_kbit = 0.0;   // transferred supernode-to-supernode

  std::uint64_t fetches() const { return misses - transcodes; }
};

class EdgeCacheService {
 public:
  /// How one request was (or is being) served.
  struct ServeOutcome {
    ServeSource source = ServeSource::kCloudFetch;
    TimeMs delay_ms = 0.0;      // added before the sender sees the segment
    Kbit content_kbit = 0.0;    // ladder-nominal variant size
    int transcoded_from = 0;    // ancestor level (kTranscode only)
  };

  /// Observer of every decision, called synchronously at request time —
  /// how the streaming harness attributes egress to measurement windows.
  using ServeObserver =
      std::function<void(NodeId node, const stream::VideoSegment& segment,
                         const ServeOutcome& outcome)>;
  using DeliverFn = std::function<void()>;

  /// Cooperative-fetch hook: consulted in the kCloudFetch branch of
  /// request() before any cloud accounting happens. Returning true means
  /// the interceptor took over sourcing the variant (peer probes are in
  /// flight; it will eventually call complete_peer_fetch or
  /// cloud_fetch_fallback, which own the delivery); the request is counted
  /// as a miss + coop probe and the observer sees kPeerProbe. Returning
  /// false falls through to the plain cloud fetch, bit-identical to having
  /// no interceptor installed.
  using FetchInterceptor =
      std::function<bool(NodeId node, const stream::VideoSegment& segment,
                         Kbit content_kbit, DeliverFn deliver)>;

  EdgeCacheService(sim::Simulator& sim, EdgeCacheServiceConfig config);

  /// Registers a supernode's cache, sized `capacity_slots × kbit_per_slot`.
  void add_supernode(NodeId node, int capacity_slots);

  /// Releases a departing supernode: cancels its in-flight jobs (O(1) slab
  /// cancel each) and frees its cache entries. CF_CHECKed: the node must
  /// be registered, and nothing of it survives the call.
  void remove_supernode(NodeId node);

  bool has_supernode(NodeId node) const { return caches_.contains(node); }
  std::size_t supernode_count() const { return caches_.size(); }

  /// Decides and serves one segment request on `node`. `deliver` runs
  /// inline for cache hits and after the modelled delay otherwise; it must
  /// stay valid until it fires or the node is removed.
  ServeOutcome request(NodeId node, const stream::VideoSegment& segment,
                       DeliverFn deliver);

  /// Installs/clears the decision observer. Optional: null just disables
  /// observation; request() null-guards before invoking.
  void set_serve_observer(ServeObserver observer) {
    observer_ = std::move(observer);
  }

  /// Installs/clears the cooperative-fetch interceptor. With none (the
  /// default) the service behaves exactly as before this hook existed.
  void set_fetch_interceptor(FetchInterceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }

  // ---- cooperative-protocol state operations -----------------------------
  // The messaging (probe propagation delays, response collection, winner
  // choice) lives with the caller — the space-parallel shard runner — so
  // the service stays a single-simulator state machine. These three are the
  // only state transitions the protocol needs.

  /// Peer-side probe: does `node` hold the exact variant right now? A hit
  /// refreshes the entry's LRU position (the peer is serving real bytes).
  /// A probe on a departed supernode is a miss, not an error — probes race
  /// churn by design.
  bool probe_hit(NodeId node, const stream::VideoSegment& segment);

  /// Requester-side resolution of a successful peer fetch: admits the
  /// variant into `node`'s cache, accounts the supernode-to-supernode
  /// transfer, notifies the observer (kPeerHit) and runs `deliver`.
  void complete_peer_fetch(NodeId node, const stream::VideoSegment& segment,
                           DeliverFn deliver);

  /// Requester-side resolution when every peer missed: the plain cloud
  /// fetch, started now (delay + admission + delivery as in request()'s
  /// kCloudFetch branch; observer sees kCloudFetch).
  void cloud_fetch_fallback(NodeId node, const stream::VideoSegment& segment,
                            DeliverFn deliver);

  /// Fleet-wide counters (cumulative; removal of a node keeps its past
  /// contribution).
  const CacheTotals& totals() const { return totals_; }

  const JointAdmissionPolicy& policy() const { return policy_; }
  const Transcoder& transcoder() const { return transcoder_; }
  /// Test/diagnostic inspection of one node's cache.
  const SegmentCache& node_cache(NodeId node) const;

  /// The content timeline index a segment maps to (loop folding applied).
  std::uint64_t content_index(const stream::VideoSegment& segment) const;

 private:
  EdgeCacheServiceConfig config_;
  JointAdmissionPolicy policy_;
  Transcoder transcoder_;
  // Keyed by node, never iterated: bucket order cannot reach results.
  std::unordered_map<NodeId, SegmentCache> caches_;
  CacheTotals totals_;
  ServeObserver observer_;
  FetchInterceptor interceptor_;
};

}  // namespace cloudfog::cache
