// Joint cache/compute admission policy — DESIGN.md §11.
//
// For every segment request a supernode can (a) serve a cached exact
// variant, (b) transcode down-ladder from a cached higher-quality variant
// at a modelled CPU cost, or (c) fetch the variant from the cloud, paying
// transfer delay AND cloud egress. The policy compares modelled costs:
//
//   hit        cost = 0                                  (always wins)
//   transcode  cost = transcode.delay_ms(out_kbit)
//   fetch      cost = fetch_base_ms + out_kbit / fetch_kbps
//                     + egress_cost_ms_per_kbit × out_kbit
//
// The egress term is the knob that makes this *joint*: it prices a kbit of
// cloud uplink in milliseconds of equivalent player-visible delay, letting
// an operator bias the node toward spending fog CPU instead of cloud
// bandwidth. With the term at 0 the policy is purely delay-optimal; the
// capacity × transcode-cost ablation sweeps both regimes.
#pragma once

#include <cstdint>

#include "cache/transcoder.h"
#include "util/types.h"

namespace cloudfog::cache {

/// Where a request ended up being served from. kPeerProbe marks a request
/// handed to the cooperative cross-supernode protocol (resolution pending);
/// kPeerHit marks its resolution out of a peer's cache (see
/// EdgeCacheService::set_fetch_interceptor).
enum class ServeSource : std::uint8_t {
  kCacheHit,
  kTranscode,
  kCloudFetch,
  kPeerProbe,
  kPeerHit,
};

const char* to_string(ServeSource source);

struct AdmissionConfig {
  TranscodeModel transcode{};
  /// Cloud -> supernode fetch link (the cloud egress being economised).
  Kbps fetch_kbps = 100'000.0;
  /// Fixed request overhead of a cloud fetch (control round trip, request
  /// queuing at the origin).
  TimeMs fetch_base_ms = 0.5;
  /// Price of one kbit of cloud egress, in milliseconds of equivalent
  /// delay — the joint trade-off weight. 0 = delay-optimal only.
  double egress_cost_ms_per_kbit = 0.0;
};

class JointAdmissionPolicy {
 public:
  struct Decision {
    ServeSource source = ServeSource::kCloudFetch;
    TimeMs delay_ms = 0.0;  // player-visible serve delay (egress bias excluded)
  };

  explicit JointAdmissionPolicy(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  /// Player-visible delay of a transcode producing `out_kbit`.
  TimeMs transcode_delay_ms(Kbit out_kbit) const {
    return config_.transcode.delay_ms(out_kbit);
  }
  /// Player-visible delay of a cloud fetch of `out_kbit`.
  TimeMs fetch_delay_ms(Kbit out_kbit) const {
    return config_.fetch_base_ms + out_kbit / config_.fetch_kbps * 1000.0;
  }
  /// Decision cost of a fetch: delay plus the priced egress.
  TimeMs fetch_cost_ms(Kbit out_kbit) const {
    return fetch_delay_ms(out_kbit) +
           config_.egress_cost_ms_per_kbit * out_kbit;
  }

  /// The three-way decision for a request of `out_kbit`:
  ///   * exact cached variant        -> kCacheHit, delay 0;
  ///   * cached ancestor available   -> transcode iff its delay does not
  ///     exceed the fetch *cost* (delay + priced egress; ties prefer the
  ///     edge — spending local CPU over cloud bandwidth);
  ///   * otherwise                   -> kCloudFetch.
  Decision decide(bool cached_exact, bool cached_ancestor, Kbit out_kbit) const;

 private:
  AdmissionConfig config_;
};

}  // namespace cloudfog::cache
