// On-node down-ladder transcoding — DESIGN.md §11.
//
// A supernode holding a cached higher-quality variant of a segment can
// synthesise a lower ladder level locally instead of pulling the variant
// over the cloud's uplink. The CPU cost is modelled as a sim-time delay
// proportional to the output size drawn from the quality ladder (bitrate ×
// duration), plus a fixed per-job setup cost — the same linear shape
// Stimpack uses to trade server resources against QoE.
//
// Jobs (transcodes AND cloud fetches — any deferred cache delivery) are
// scheduled on the slab event engine and tracked per owning supernode, so
// a supernode leaving the system cancels every in-flight job it owns via
// the engine's O(1) generation-tagged cancel. Nothing a departed node
// started may fire afterwards — the churn contract tests pin this.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "util/types.h"

namespace cloudfog::cache {

/// Linear CPU-cost model of a down-ladder transcode.
struct TranscodeModel {
  TimeMs base_ms = 2.0;             // per-job setup (decode state, context)
  double ms_per_kbit = 0.01;        // encode throughput, output-size scaled

  /// Modelled sim-time delay to synthesise an output of `out_kbit`.
  TimeMs delay_ms(Kbit out_kbit) const {
    return base_ms + ms_per_kbit * out_kbit;
  }
};

/// Schedules deferred cache work (transcodes, cloud fetches) on the event
/// engine with per-owner cancellation.
class Transcoder {
 public:
  using Callback = std::function<void()>;

  Transcoder(sim::Simulator& sim, TranscodeModel model);

  const TranscodeModel& model() const { return model_; }

  /// Runs `done` after `delay_ms` of sim time on behalf of `owner`.
  /// Returns the engine handle (also tracked internally for cancel_owner).
  sim::EventId schedule(NodeId owner, TimeMs delay_ms, Callback done);

  /// Cancels every in-flight job of `owner` through the slab engine's O(1)
  /// cancel; returns how many were still pending.
  std::size_t cancel_owner(NodeId owner);

  /// Jobs of `owner` still pending.
  std::size_t in_flight(NodeId owner) const;
  /// Jobs pending across all owners.
  std::size_t in_flight_total() const { return in_flight_total_; }
  std::uint64_t jobs_started() const { return jobs_started_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t jobs_cancelled() const { return jobs_cancelled_; }

 private:
  void forget(NodeId owner, sim::EventId id);

  sim::Simulator& sim_;
  TranscodeModel model_;
  // Owner -> pending engine handles, insertion-ordered. Only ever accessed
  // by key (never iterated), so the unordered map cannot leak bucket order
  // into results.
  std::unordered_map<NodeId, std::vector<sim::EventId>> pending_;
  std::size_t in_flight_total_ = 0;
  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_cancelled_ = 0;
};

}  // namespace cloudfog::cache
