// Per-supernode video segment cache — DESIGN.md §11.
//
// CloudFog's supernodes historically only relay: every quality variant a
// player needs is produced upstream and shipped over the cloud's uplink.
// The cache subsystem lets a supernode keep recently served segments and
// satisfy repeat requests locally, trading a little fog-node storage and
// CPU (see transcoder.h) for cloud egress — the paper's central bandwidth
// economics, pushed one level further.
//
// A cached entry is content-addressed by (game, content_index, level):
// players never share *player-specific* state through the cache, only the
// encoded segment content of a (game, ladder level) at a content index.
// Capacity is byte-accounted (kbit, matching the rest of the codebase) and
// eviction is strict LRU over an intrusive doubly-linked list threaded
// through a slab — no steady-state allocations once the slab has grown to
// the working set, and a deterministic eviction order that tests pin
// against a naive reference implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "game/game.h"
#include "util/types.h"

namespace cloudfog::cache {

/// Content address of one cached segment variant.
struct SegmentKey {
  game::GameId game = -1;
  std::uint64_t content_index = 0;  // segment index in the content timeline
  int level = 0;                    // quality ladder level, 1..5

  bool operator==(const SegmentKey& other) const {
    return game == other.game && content_index == other.content_index &&
           level == other.level;
  }
};

struct SegmentKeyHash {
  std::size_t operator()(const SegmentKey& k) const {
    // splitmix64-style mix over the three fields; deterministic across
    // runs (no pointer or ASLR input).
    std::uint64_t x = static_cast<std::uint64_t>(k.content_index);
    x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.game)) << 32) |
         static_cast<std::uint32_t>(k.level);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Byte-accounted LRU cache of segment variants for ONE supernode.
///
/// All operations are O(1) expected (hash lookup + intrusive list splice)
/// and deterministic: the eviction victim is always the least recently
/// used entry, ties cannot occur (the list is a total order), and the
/// unordered index is only ever accessed by key, never iterated.
class SegmentCache {
 public:
  /// A zero-capacity cache is legal and degenerates to "nothing is ever
  /// admitted" — the ablation's fetch-everything baseline.
  explicit SegmentCache(Kbit capacity_kbit);

  /// True iff `key` is cached. Does NOT touch recency (use for policy
  /// probes that must not perturb the LRU order).
  bool contains(const SegmentKey& key) const;

  /// Looks up `key` and, when present, marks it most recently used.
  bool touch(const SegmentKey& key);

  /// The nearest cached ancestor of (game, content_index) strictly above
  /// `level` on the quality ladder, or 0 when none is cached. Probes only;
  /// recency is untouched (the caller touches the ancestor it actually
  /// transcodes from).
  int best_ancestor_level(game::GameId game, std::uint64_t content_index,
                          int level) const;

  /// Admits `key` at `size_kbit`, evicting LRU entries until it fits.
  /// Returns false (and admits nothing) when size_kbit exceeds the whole
  /// capacity or is non-positive. Re-inserting a cached key refreshes its
  /// recency and size.
  bool insert(const SegmentKey& key, Kbit size_kbit);

  /// Removes one entry; returns true if it was cached.
  bool erase(const SegmentKey& key);

  /// Drops every entry (capacity is kept).
  void clear();

  Kbit capacity_kbit() const { return capacity_kbit_; }
  Kbit used_kbit() const { return used_kbit_; }
  std::size_t entry_count() const { return index_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  /// Keys from most to least recently used — test/diagnostic inspection
  /// only (walks the intrusive list, allocates the result).
  std::vector<SegmentKey> keys_mru_to_lru() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    SegmentKey key;
    Kbit size_kbit = 0.0;
    std::uint32_t prev = kNil;  // toward MRU
    std::uint32_t next = kNil;  // toward LRU
  };

  void unlink(std::uint32_t slot);
  void link_front(std::uint32_t slot);
  void evict_lru();

  Kbit capacity_kbit_;
  Kbit used_kbit_ = 0.0;
  std::uint64_t evictions_ = 0;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<SegmentKey, std::uint32_t, SegmentKeyHash> index_;
};

}  // namespace cloudfog::cache
