#include "cache/transcoder.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.h"

namespace cloudfog::cache {

Transcoder::Transcoder(sim::Simulator& sim, TranscodeModel model)
    : sim_(sim), model_(model) {
  CF_CHECK_MSG(model.base_ms >= 0.0, "transcode base cost must be >= 0");
  CF_CHECK_MSG(model.ms_per_kbit >= 0.0, "transcode rate cost must be >= 0");
}

sim::EventId Transcoder::schedule(NodeId owner, TimeMs delay_ms, Callback done) {
  CF_CHECK_MSG(owner != kInvalidNode, "transcode job needs an owning node");
  CF_CHECK_MSG(delay_ms >= 0.0, "transcode delay must be >= 0");
  CF_CHECK_MSG(static_cast<bool>(done), "transcode job needs a completion");
  ++jobs_started_;
  ++in_flight_total_;
  // The id is known only after scheduling, but the callback needs it to
  // deregister itself — fetch it from the shared slot at fire time.
  auto id_slot = std::make_shared<sim::EventId>(sim::kInvalidEvent);
  const sim::EventId id = sim_.schedule_after(
      delay_ms, [this, owner, id_slot, done = std::move(done)] {
        forget(owner, *id_slot);
        ++jobs_completed_;
        --in_flight_total_;
        done();
      });
  *id_slot = id;
  pending_[owner].push_back(id);
  return id;
}

std::size_t Transcoder::cancel_owner(NodeId owner) {
  const auto it = pending_.find(owner);
  if (it == pending_.end()) return 0;
  std::size_t cancelled = 0;
  for (const sim::EventId id : it->second) {
    if (sim_.cancel(id)) ++cancelled;
  }
  CF_CHECK_MSG(cancelled == it->second.size(),
               "tracked job list out of sync with the event engine");
  jobs_cancelled_ += cancelled;
  in_flight_total_ -= cancelled;
  pending_.erase(it);
  return cancelled;
}

std::size_t Transcoder::in_flight(NodeId owner) const {
  const auto it = pending_.find(owner);
  return it == pending_.end() ? 0 : it->second.size();
}

void Transcoder::forget(NodeId owner, sim::EventId id) {
  const auto it = pending_.find(owner);
  CF_CHECK_MSG(it != pending_.end(), "completed job has no tracked owner");
  auto& ids = it->second;
  const auto pos = std::find(ids.begin(), ids.end(), id);
  CF_CHECK_MSG(pos != ids.end(), "completed job missing from its owner list");
  ids.erase(pos);
  if (ids.empty()) pending_.erase(it);
}

}  // namespace cloudfog::cache
