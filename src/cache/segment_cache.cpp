#include "cache/segment_cache.h"

#include "game/quality.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::cache {

SegmentCache::SegmentCache(Kbit capacity_kbit) : capacity_kbit_(capacity_kbit) {
  CF_CHECK_MSG(capacity_kbit >= 0.0, "cache capacity must be non-negative");
}

bool SegmentCache::contains(const SegmentKey& key) const {
  return index_.contains(key);
}

bool SegmentCache::touch(const SegmentKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (it->second != head_) {
    unlink(it->second);
    link_front(it->second);
  }
  return true;
}

int SegmentCache::best_ancestor_level(game::GameId game,
                                      std::uint64_t content_index,
                                      int level) const {
  for (int above = level + 1; above <= game::kMaxQualityLevel; ++above) {
    if (index_.contains(SegmentKey{game, content_index, above})) return above;
  }
  return 0;
}

bool SegmentCache::insert(const SegmentKey& key, Kbit size_kbit) {
  if (size_kbit <= 0.0 || size_kbit > capacity_kbit_) return false;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: re-account the (possibly changed) size and bump recency.
    Entry& e = slab_[it->second];
    used_kbit_ += size_kbit - e.size_kbit;
    e.size_kbit = size_kbit;
    if (it->second != head_) {
      unlink(it->second);
      link_front(it->second);
    }
  } else {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    Entry& e = slab_[slot];
    e.key = key;
    e.size_kbit = size_kbit;
    index_.emplace(key, slot);
    link_front(slot);
    used_kbit_ += size_kbit;
  }
  while (used_kbit_ > capacity_kbit_) evict_lru();
  CF_INVARIANT(used_kbit_ <= capacity_kbit_,
               "cache byte accounting must respect capacity after admission");
  return true;
}

bool SegmentCache::erase(const SegmentKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const std::uint32_t slot = it->second;
  used_kbit_ -= slab_[slot].size_kbit;
  unlink(slot);
  free_slots_.push_back(slot);
  index_.erase(it);
  return true;
}

void SegmentCache::clear() {
  index_.clear();
  free_slots_.clear();
  slab_.clear();
  head_ = tail_ = kNil;
  used_kbit_ = 0.0;
}

std::vector<SegmentKey> SegmentCache::keys_mru_to_lru() const {
  std::vector<SegmentKey> keys;
  keys.reserve(index_.size());
  for (std::uint32_t slot = head_; slot != kNil; slot = slab_[slot].next) {
    keys.push_back(slab_[slot].key);
  }
  return keys;
}

void SegmentCache::unlink(std::uint32_t slot) {
  Entry& e = slab_[slot];
  if (e.prev != kNil) slab_[e.prev].next = e.next;
  if (e.next != kNil) slab_[e.next].prev = e.prev;
  if (head_ == slot) head_ = e.next;
  if (tail_ == slot) tail_ = e.prev;
  e.prev = e.next = kNil;
}

void SegmentCache::link_front(std::uint32_t slot) {
  Entry& e = slab_[slot];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) slab_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void SegmentCache::evict_lru() {
  CF_CHECK_MSG(tail_ != kNil, "eviction requested from an empty cache");
  const std::uint32_t victim = tail_;
  used_kbit_ -= slab_[victim].size_kbit;
  index_.erase(slab_[victim].key);
  unlink(victim);
  free_slots_.push_back(victim);
  ++evictions_;
  CF_OBS_COUNT_HOT("cache.evictions", 1);
}

}  // namespace cloudfog::cache
