#include "cache/edge_cache_service.h"

#include <cmath>
#include <utility>

#include "game/quality.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::cache {
namespace {

// Hot-counter byte scale: the codebase accounts in kbit, the exported
// counters in bytes (1 kbit = 125 bytes).
constexpr double kBytesPerKbit = 125.0;

// The ladder-nominal size of a variant: level bitrate × segment duration.
// Cache accounting and delay models use this, NOT the per-player encoded
// size_kbit, so every player requesting the same (game, content, level)
// agrees on what the cached object weighs.
Kbit nominal_kbit(const stream::VideoSegment& segment) {
  const game::QualityLevel& q = game::quality_for_level(segment.quality_level);
  return q.bitrate_kbps * segment.duration_ms / 1000.0;
}

}  // namespace

EdgeCacheService::EdgeCacheService(sim::Simulator& sim,
                                   EdgeCacheServiceConfig config)
    : config_(config),
      policy_(config.admission),
      transcoder_(sim, config.admission.transcode) {
  CF_CHECK_MSG(config.kbit_per_slot >= 0.0,
               "per-slot cache capacity must be >= 0");
}

void EdgeCacheService::add_supernode(NodeId node, int capacity_slots) {
  CF_CHECK_MSG(node != kInvalidNode, "cache needs a real supernode id");
  CF_CHECK_MSG(capacity_slots >= 0, "capacity slots must be >= 0");
  CF_CHECK_MSG(!caches_.contains(node), "supernode already has a cache");
  caches_.emplace(node,
                  SegmentCache(config_.kbit_per_slot * capacity_slots));
}

void EdgeCacheService::remove_supernode(NodeId node) {
  const auto it = caches_.find(node);
  CF_CHECK_MSG(it != caches_.end(), "removing a supernode with no cache");
  const std::size_t cancelled = transcoder_.cancel_owner(node);
  totals_.cancelled_jobs += cancelled;
  caches_.erase(it);
  // Churn contract: nothing of the node survives — its cache entries are
  // gone with the SegmentCache, and no job it owned can fire later.
  CF_CHECK_MSG(!caches_.contains(node) && transcoder_.in_flight(node) == 0,
               "cache state outlived its owning supernode");
}

const SegmentCache& EdgeCacheService::node_cache(NodeId node) const {
  const auto it = caches_.find(node);
  CF_CHECK_MSG(it != caches_.end(), "no cache registered for this supernode");
  return it->second;
}

std::uint64_t EdgeCacheService::content_index(
    const stream::VideoSegment& segment) const {
  CF_CHECK_MSG(segment.duration_ms > 0.0, "segment needs a positive duration");
  const auto index = static_cast<std::uint64_t>(
      std::floor(segment.action_time_ms / segment.duration_ms));
  if (config_.content_loop_segments == 0) return index;
  return index % config_.content_loop_segments;
}

EdgeCacheService::ServeOutcome EdgeCacheService::request(
    NodeId node, const stream::VideoSegment& segment, DeliverFn deliver) {
  CF_CHECK_MSG(static_cast<bool>(deliver), "request needs a delivery");
  const auto it = caches_.find(node);
  CF_CHECK_MSG(it != caches_.end(), "request on a supernode with no cache");
  SegmentCache& cache = it->second;

  const std::uint64_t index = content_index(segment);
  const SegmentKey key{segment.game, index, segment.quality_level};
  const Kbit out_kbit = nominal_kbit(segment);

  const bool cached_exact = cache.contains(key);
  const int ancestor =
      cached_exact ? 0
                   : cache.best_ancestor_level(segment.game, index,
                                               segment.quality_level);
  const JointAdmissionPolicy::Decision decision =
      policy_.decide(cached_exact, ancestor != 0, out_kbit);

  ServeOutcome outcome;
  outcome.source = decision.source;
  outcome.delay_ms = decision.delay_ms;
  outcome.content_kbit = out_kbit;

  switch (decision.source) {
    case ServeSource::kCacheHit: {
      CF_CHECK_MSG(cache.touch(key), "hit decided on an uncached key");
      totals_.hits += 1;
      totals_.bytes_edge_kbit += out_kbit;
      CF_OBS_COUNT_HOT("cache.hits", 1);
      CF_OBS_COUNT_HOT("cache.bytes_edge",
                       static_cast<std::uint64_t>(out_kbit * kBytesPerKbit));
      deliver();
      break;
    }
    case ServeSource::kTranscode: {
      outcome.transcoded_from = ancestor;
      const SegmentKey src{segment.game, index, ancestor};
      CF_CHECK_MSG(cache.touch(src),
                   "transcode decided without a cached ancestor");
      // The output variant is admitted when the job completes, but the
      // decision/accounting happen now — the simulation stays a pure
      // function of request order either way; admit-on-complete just
      // mirrors when the bytes exist.
      totals_.misses += 1;
      totals_.transcodes += 1;
      totals_.bytes_edge_kbit += out_kbit;
      CF_OBS_COUNT_HOT("cache.misses", 1);
      CF_OBS_COUNT_HOT("cache.transcodes", 1);
      CF_OBS_COUNT_HOT("cache.bytes_edge",
                       static_cast<std::uint64_t>(out_kbit * kBytesPerKbit));
      transcoder_.schedule(
          node, decision.delay_ms,
          [this, node, key, out_kbit, deliver = std::move(deliver)] {
            auto cache_it = caches_.find(node);
            CF_CHECK_MSG(cache_it != caches_.end(),
                         "transcode completed on a removed supernode");
            const std::uint64_t before = cache_it->second.evictions();
            cache_it->second.insert(key, out_kbit);
            totals_.evictions += cache_it->second.evictions() - before;
            deliver();
          });
      break;
    }
    case ServeSource::kCloudFetch: {
      // Cooperative path: a peer supernode may hold the variant. The
      // interceptor is handed a *copy* of the delivery so a false return
      // leaves the plain fetch below fully intact.
      if (interceptor_ && interceptor_(node, segment, out_kbit, deliver)) {
        outcome.source = ServeSource::kPeerProbe;
        outcome.delay_ms = 0.0;  // unknown until the protocol resolves
        totals_.misses += 1;
        totals_.coop_probes += 1;
        CF_OBS_COUNT_HOT("cache.misses", 1);
        CF_OBS_COUNT_HOT("cache.coop_probes", 1);
        break;
      }
      totals_.misses += 1;
      totals_.bytes_cloud_kbit += out_kbit;
      CF_OBS_COUNT_HOT("cache.misses", 1);
      CF_OBS_COUNT_HOT("cache.bytes_cloud",
                       static_cast<std::uint64_t>(out_kbit * kBytesPerKbit));
      transcoder_.schedule(
          node, decision.delay_ms,
          [this, node, key, out_kbit, deliver = std::move(deliver)] {
            auto cache_it = caches_.find(node);
            CF_CHECK_MSG(cache_it != caches_.end(),
                         "fetch completed on a removed supernode");
            const std::uint64_t before = cache_it->second.evictions();
            cache_it->second.insert(key, out_kbit);
            totals_.evictions += cache_it->second.evictions() - before;
            deliver();
          });
      break;
    }
    case ServeSource::kPeerProbe:
    case ServeSource::kPeerHit:
      CF_CHECK_MSG(false, "admission policy never decides a peer source");
      break;
  }
  if (observer_) observer_(node, segment, outcome);
  return outcome;
}

bool EdgeCacheService::probe_hit(NodeId node,
                                 const stream::VideoSegment& segment) {
  const auto it = caches_.find(node);
  if (it == caches_.end()) return false;  // probe raced churn: peer is gone
  const SegmentKey key{segment.game, content_index(segment),
                       segment.quality_level};
  const bool hit = it->second.touch(key);
  CF_OBS_COUNT_HOT("cache.coop_probe_hits", hit ? 1 : 0);
  return hit;
}

void EdgeCacheService::complete_peer_fetch(NodeId node,
                                           const stream::VideoSegment& segment,
                                           DeliverFn deliver) {
  CF_CHECK_MSG(static_cast<bool>(deliver), "peer fetch needs a delivery");
  const auto it = caches_.find(node);
  if (it == caches_.end()) return;  // requester left while probes flew
  const SegmentKey key{segment.game, content_index(segment),
                       segment.quality_level};
  const Kbit out_kbit = nominal_kbit(segment);
  totals_.coop_hits += 1;
  totals_.bytes_peer_kbit += out_kbit;
  CF_OBS_COUNT_HOT("cache.coop_hits", 1);
  CF_OBS_COUNT_HOT("cache.bytes_peer",
                   static_cast<std::uint64_t>(out_kbit * kBytesPerKbit));
  const std::uint64_t before = it->second.evictions();
  it->second.insert(key, out_kbit);
  totals_.evictions += it->second.evictions() - before;
  ServeOutcome outcome;
  outcome.source = ServeSource::kPeerHit;
  outcome.content_kbit = out_kbit;
  if (observer_) observer_(node, segment, outcome);
  deliver();
}

void EdgeCacheService::cloud_fetch_fallback(NodeId node,
                                            const stream::VideoSegment& segment,
                                            DeliverFn deliver) {
  CF_CHECK_MSG(static_cast<bool>(deliver), "fallback fetch needs a delivery");
  if (!caches_.contains(node)) return;  // requester left while probes flew
  const SegmentKey key{segment.game, content_index(segment),
                       segment.quality_level};
  const Kbit out_kbit = nominal_kbit(segment);
  const TimeMs delay = policy_.fetch_delay_ms(out_kbit);
  // The miss was already counted when the probe round started; only the
  // cloud egress is new information here.
  totals_.bytes_cloud_kbit += out_kbit;
  CF_OBS_COUNT_HOT("cache.bytes_cloud",
                   static_cast<std::uint64_t>(out_kbit * kBytesPerKbit));
  transcoder_.schedule(
      node, delay,
      [this, node, key, out_kbit, deliver = std::move(deliver)] {
        auto cache_it = caches_.find(node);
        CF_CHECK_MSG(cache_it != caches_.end(),
                     "fetch completed on a removed supernode");
        const std::uint64_t before = cache_it->second.evictions();
        cache_it->second.insert(key, out_kbit);
        totals_.evictions += cache_it->second.evictions() - before;
        deliver();
      });
  ServeOutcome outcome;
  outcome.source = ServeSource::kCloudFetch;
  outcome.delay_ms = delay;
  outcome.content_kbit = out_kbit;
  if (observer_) observer_(node, segment, outcome);
}

}  // namespace cloudfog::cache
