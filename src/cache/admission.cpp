#include "cache/admission.h"

#include "util/check.h"

namespace cloudfog::cache {

const char* to_string(ServeSource source) {
  switch (source) {
    case ServeSource::kCacheHit: return "hit";
    case ServeSource::kTranscode: return "transcode";
    case ServeSource::kCloudFetch: return "fetch";
    case ServeSource::kPeerProbe: return "peer-probe";
    case ServeSource::kPeerHit: return "peer-hit";
  }
  return "unknown";
}

JointAdmissionPolicy::JointAdmissionPolicy(AdmissionConfig config)
    : config_(config) {
  CF_CHECK_MSG(config.fetch_kbps > 0.0, "fetch link rate must be positive");
  CF_CHECK_MSG(config.fetch_base_ms >= 0.0, "fetch overhead must be >= 0");
  CF_CHECK_MSG(config.egress_cost_ms_per_kbit >= 0.0,
               "egress price must be >= 0");
}

JointAdmissionPolicy::Decision JointAdmissionPolicy::decide(
    bool cached_exact, bool cached_ancestor, Kbit out_kbit) const {
  CF_CHECK_MSG(out_kbit > 0.0, "admission needs a positive content size");
  if (cached_exact) return {ServeSource::kCacheHit, 0.0};
  if (cached_ancestor) {
    const TimeMs transcode = transcode_delay_ms(out_kbit);
    if (transcode <= fetch_cost_ms(out_kbit)) {
      return {ServeSource::kTranscode, transcode};
    }
  }
  return {ServeSource::kCloudFetch, fetch_delay_ms(out_kbit)};
}

}  // namespace cloudfog::cache
