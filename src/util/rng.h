// Deterministic random number generation for the simulator.
//
// Every stochastic component draws from its own `Rng` stream, derived from a
// single master seed plus a component label, so experiments are reproducible
// bit-for-bit and adding a new consumer does not perturb existing streams.
//
// The engine is xoshiro256** (public-domain, Blackman & Vigna), seeded via
// splitmix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cloudfog::util {

/// splitmix64 step; used for seeding and for hashing labels into seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Hashes a label string into a 64-bit value (FNV-1a).
std::uint64_t hash_label(std::string_view label);

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream from `seed`; all four words are derived via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derives an independent child stream for component `label`.
  /// Children of the same (parent seed, label) pair are always identical.
  Rng fork(std::string_view label) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60).
  std::uint64_t poisson(double mean);

  /// Pareto (Lomax-style "American Pareto", xm = scale) with shape alpha:
  /// P(X > x) = (xm/x)^alpha for x >= xm. Requires alpha > 0, xm > 0.
  double pareto(double xm, double alpha);

  /// Pareto sample with the requested *mean* and shape alpha. For alpha <= 1
  /// the theoretical mean diverges, so the sample is truncated at
  /// `cap_multiple * mean` and xm is chosen so the truncated mean matches.
  double pareto_with_mean(double mean, double alpha, double cap_multiple = 20.0);

  /// Zipf-like integer in [1, n] with exponent s (rejection-inversion).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Power-law degree sample in [k_min, k_max] with P(k) ∝ k^(-gamma),
  /// used for the social-graph friend counts (paper: skew 0.5).
  std::uint64_t power_law(std::uint64_t k_min, std::uint64_t k_max, double gamma);

  /// Picks a random index in [0, n) — convenience for container sampling.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Weighted index selection proportional to non-negative `weights`.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cloudfog::util
