// Lightweight precondition / invariant checking.
//
// CF_CHECK is always on (cheap conditions guarding public API misuse);
// CF_DCHECK compiles out in release builds (hot-path invariants).
//
// Comparison forms — CF_CHECK_GE/GT/LE/LT/EQ/NE (and CF_DCHECK_* siblings) —
// print both operand values on failure, so a violated invariant reports
// "deadline ordering: 41.2 vs 40.9" instead of a bare expression string.
//
// CF_INVARIANT(expr, what) is the audit-hook form deployed at trust
// boundaries (event ordering, buffer occupancy, capacity conservation).
// It behaves like CF_CHECK_MSG but additionally notifies an optional
// process-wide InvariantAuditHook before throwing, letting harnesses and
// fuzzers count / log violations with full context even when the exception
// is swallowed upstream.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cloudfog::detail {

/// " [thread <id>]" when called off the main thread, "" on it. Worker-pool
/// runs (exec::RunExecutor) trip invariants on their own threads; the
/// suffix makes a failure attributable to its run in interleaved stderr.
std::string off_main_thread_suffix();

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line
     << off_main_thread_suffix();
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

/// Streams a value for failure messages; anything streamable works, and the
/// comparison macros only instantiate this on failure paths.
template <typename A, typename B>
[[noreturn]] void check_op_failed(const char* expr, const char* op, const A& a,
                                  const B& b, const char* file, int line) {
  std::ostringstream os;
  os << expr << " (" << a << ' ' << op << ' ' << b << ')';
  check_failed(os.str().c_str(), file, line, {});
}

}  // namespace cloudfog::detail

namespace cloudfog::util {

/// Observer invoked (if installed) whenever a CF_INVARIANT fails, before the
/// std::logic_error is thrown. `what` is the invariant's description,
/// `detail` the rendered "expr at file:line" context.
using InvariantAuditHook = void (*)(const char* what, const std::string& detail);

/// Installs a process-wide audit hook; returns the previous one (nullptr if
/// none). Pass nullptr to uninstall. Not thread-safe: install during setup.
InvariantAuditHook set_invariant_audit_hook(InvariantAuditHook hook);

/// Number of invariant violations observed process-wide (monotone; audits
/// and tests read this to assert "no silent violations happened").
std::uint64_t invariant_violations();

namespace detail {
[[noreturn]] void invariant_failed(const char* expr, const char* what,
                                   const char* file, int line);
}  // namespace detail

}  // namespace cloudfog::util

#define CF_CHECK(expr)                                                       \
  do {                                                                       \
    if (!(expr)) ::cloudfog::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define CF_CHECK_MSG(expr, msg)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::cloudfog::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)

// Comparison checks. Operands are evaluated exactly once.
#define CF_CHECK_OP_(a, op, b)                                                 \
  do {                                                                         \
    const auto& cf_a_ = (a);                                                   \
    const auto& cf_b_ = (b);                                                   \
    if (!(cf_a_ op cf_b_))                                                     \
      ::cloudfog::detail::check_op_failed(#a " " #op " " #b, #op, cf_a_,       \
                                          cf_b_, __FILE__, __LINE__);          \
  } while (false)

#define CF_CHECK_EQ(a, b) CF_CHECK_OP_(a, ==, b)
#define CF_CHECK_NE(a, b) CF_CHECK_OP_(a, !=, b)
#define CF_CHECK_GE(a, b) CF_CHECK_OP_(a, >=, b)
#define CF_CHECK_GT(a, b) CF_CHECK_OP_(a, >, b)
#define CF_CHECK_LE(a, b) CF_CHECK_OP_(a, <=, b)
#define CF_CHECK_LT(a, b) CF_CHECK_OP_(a, <, b)

// Trust-boundary invariant: like CF_CHECK_MSG but routed through the audit
// hook so violations are observable even when callers catch the exception.
#define CF_INVARIANT(expr, what)                                             \
  do {                                                                       \
    if (!(expr))                                                             \
      ::cloudfog::util::detail::invariant_failed(#expr, (what), __FILE__,    \
                                                 __LINE__);                  \
  } while (false)

#ifdef NDEBUG
#define CF_DCHECK(expr) \
  do {                  \
  } while (false)
#define CF_DCHECK_OP_DISABLED_(a, b) \
  do {                               \
  } while (false)
#define CF_DCHECK_EQ(a, b) CF_DCHECK_OP_DISABLED_(a, b)
#define CF_DCHECK_NE(a, b) CF_DCHECK_OP_DISABLED_(a, b)
#define CF_DCHECK_GE(a, b) CF_DCHECK_OP_DISABLED_(a, b)
#define CF_DCHECK_GT(a, b) CF_DCHECK_OP_DISABLED_(a, b)
#define CF_DCHECK_LE(a, b) CF_DCHECK_OP_DISABLED_(a, b)
#define CF_DCHECK_LT(a, b) CF_DCHECK_OP_DISABLED_(a, b)
#else
#define CF_DCHECK(expr) CF_CHECK(expr)
#define CF_DCHECK_EQ(a, b) CF_CHECK_EQ(a, b)
#define CF_DCHECK_NE(a, b) CF_CHECK_NE(a, b)
#define CF_DCHECK_GE(a, b) CF_CHECK_GE(a, b)
#define CF_DCHECK_GT(a, b) CF_CHECK_GT(a, b)
#define CF_DCHECK_LE(a, b) CF_CHECK_LE(a, b)
#define CF_DCHECK_LT(a, b) CF_CHECK_LT(a, b)
#endif
