// Lightweight precondition / invariant checking.
//
// CF_CHECK is always on (cheap conditions guarding public API misuse);
// CF_DCHECK compiles out in release builds (hot-path invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cloudfog::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace cloudfog::detail

#define CF_CHECK(expr)                                                       \
  do {                                                                       \
    if (!(expr)) ::cloudfog::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define CF_CHECK_MSG(expr, msg)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::cloudfog::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)

#ifdef NDEBUG
#define CF_DCHECK(expr) \
  do {                  \
  } while (false)
#else
#define CF_DCHECK(expr) CF_CHECK(expr)
#endif
