// Minimal --key=value command-line parser for the example/CLI tools.
//
// Accepted forms: `--key=value`, `--key value`, bare `--switch` (boolean
// true). Anything not starting with `--` is a positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cloudfog::util {

class Flags {
 public:
  /// Parses argv (argv[0] is skipped). Throws std::logic_error on a
  /// malformed flag (e.g. `--`).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// String value, or `fallback` when the flag is absent.
  std::string get(const std::string& key, const std::string& fallback = "") const;

  /// Numeric values; throw std::logic_error when present but unparseable.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;

  /// Boolean: absent -> fallback; bare switch or "1"/"true"/"yes" -> true;
  /// "0"/"false"/"no" -> false; anything else throws.
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys present on the command line but not in `known` — callers use
  /// this to reject typos instead of silently ignoring them.
  std::vector<std::string> unknown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;  // "" marks a bare switch
  std::vector<std::string> positional_;
};

}  // namespace cloudfog::util
