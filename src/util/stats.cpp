#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace cloudfog::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  CF_CHECK_MSG(!samples_.empty(), "min of empty SampleSet");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  CF_CHECK_MSG(!samples_.empty(), "max of empty SampleSet");
  ensure_sorted();
  return samples_.back();
}

double SampleSet::percentile(double p) const {
  CF_CHECK_MSG(!samples_.empty(), "percentile of empty SampleSet");
  CF_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::fraction_at_most(double threshold) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  CF_CHECK_MSG(hi > lo, "Histogram range must be non-empty");
  CF_CHECK_MSG(buckets > 0, "Histogram needs at least one bucket");
}

void Histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  CF_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(max_width));
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

TimeBucketSeries::TimeBucketSeries(double bucket_width) : width_(bucket_width) {
  CF_CHECK_MSG(bucket_width > 0.0, "bucket width must be positive");
}

void TimeBucketSeries::add(double time, double value) {
  CF_CHECK_MSG(time >= 0.0, "TimeBucketSeries expects non-negative times");
  const auto i = static_cast<std::size_t>(time / width_);
  if (i >= sums_.size()) {
    sums_.resize(i + 1, 0.0);
    counts_.resize(i + 1, 0);
  }
  sums_[i] += value;
  ++counts_[i];
}

double TimeBucketSeries::bucket_mean(std::size_t i) const {
  CF_CHECK(i < sums_.size());
  return counts_[i] == 0 ? 0.0 : sums_[i] / static_cast<double>(counts_[i]);
}

double TimeBucketSeries::bucket_sum(std::size_t i) const {
  CF_CHECK(i < sums_.size());
  return sums_[i];
}

std::uint64_t TimeBucketSeries::bucket_samples(std::size_t i) const {
  CF_CHECK(i < counts_.size());
  return counts_[i];
}

}  // namespace cloudfog::util
