// Validated environment-variable parsing.
//
// The bench/experiment knobs (CLOUDFOG_BENCH_SEEDS, CLOUDFOG_BENCH_JOBS)
// are read from the environment; std::atol-style parsing silently maps
// garbage ("abc") and out-of-range values to the fallback, which makes a
// typo indistinguishable from the default. env_long_or parses with full
// strtol end-pointer validation and emits exactly one stderr warning per
// rejected variable, then returns the fallback.
#pragma once

namespace cloudfog::util {

/// Reads `name` from the environment and parses it as a base-10 long.
/// Returns `fallback` when the variable is unset. When the value is not a
/// number (trailing garbage, empty, overflow) or falls outside
/// [min, max], prints one warning to stderr naming the variable and the
/// accepted range, and returns `fallback`.
long env_long_or(const char* name, long min, long max, long fallback);

}  // namespace cloudfog::util
