// Fundamental scalar types and units used across the CloudFog codebase.
//
// Conventions:
//   * Simulation time is a double counting milliseconds since simulation
//     start (the natural unit of the paper: latency requirements are
//     30..110 ms).
//   * Bitrates are kilobits per second (kbps), matching Figure 2 of the
//     paper (300..1800 kbps).
//   * Data sizes are kilobits (kbit) so that size / rate = seconds; helpers
//     below convert to/from bytes.
#pragma once

#include <cstdint>
#include <limits>

namespace cloudfog {

/// Identifier of any simulated host (player, supernode, edge server, DC).
using NodeId = std::uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Simulation time in milliseconds.
using TimeMs = double;

/// Bitrate in kilobits per second.
using Kbps = double;

/// Data size in kilobits.
using Kbit = double;

/// Converts a size in bytes to kilobits.
constexpr Kbit bytes_to_kbit(double bytes) { return bytes * 8.0 / 1000.0; }

/// Converts a size in kilobits to bytes.
constexpr double kbit_to_bytes(Kbit kbit) { return kbit * 1000.0 / 8.0; }

/// Transmission time, in milliseconds, of `size` kilobits at `rate` kbps.
constexpr TimeMs transmission_ms(Kbit size, Kbps rate) {
  return rate > 0.0 ? size / rate * 1000.0 : std::numeric_limits<TimeMs>::infinity();
}

/// Milliseconds in one second/minute/hour, for readable arithmetic.
inline constexpr TimeMs kMsPerSecond = 1000.0;
inline constexpr TimeMs kMsPerMinute = 60.0 * kMsPerSecond;
inline constexpr TimeMs kMsPerHour = 60.0 * kMsPerMinute;

}  // namespace cloudfog
