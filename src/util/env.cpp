#include "util/env.h"

#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace cloudfog::util {

long env_long_or(const char* name, long min, long max, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;

  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  const bool numeric = end != value && end != nullptr && *end == '\0' &&
                       errno != ERANGE;
  if (!numeric || parsed < min || parsed > max) {
    std::cerr << name << "=\"" << value << "\" is not an integer in ["
              << min << ", " << max << "]; using default " << fallback
              << "\n";
    return fallback;
  }
  return parsed;
}

}  // namespace cloudfog::util
