// Minimal leveled logger. Off by default in benchmarks; tests can raise the
// level to debug a failing scenario. Not thread-safe by design — the
// simulator core is single-threaded; experiment-level parallelism runs whole
// simulations in separate processes.
#pragma once

#include <sstream>
#include <string>

namespace cloudfog::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace cloudfog::util

#define CF_LOG(level) ::cloudfog::util::detail::LogMessage(level)
#define CF_LOG_DEBUG CF_LOG(::cloudfog::util::LogLevel::kDebug)
#define CF_LOG_INFO CF_LOG(::cloudfog::util::LogLevel::kInfo)
#define CF_LOG_WARN CF_LOG(::cloudfog::util::LogLevel::kWarn)
#define CF_LOG_ERROR CF_LOG(::cloudfog::util::LogLevel::kError)
