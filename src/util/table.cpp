#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace cloudfog::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::set_header(std::vector<std::string> header) {
  CF_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  CF_CHECK_MSG(!header.empty(), "header must have at least one column");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  CF_CHECK_MSG(!header_.empty(), "set_header before add_row");
  CF_CHECK_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  CF_CHECK(i < rows_.size());
  return rows_[i];
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c], '-') << "  ";
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

}  // namespace cloudfog::util
