// Summary statistics, histograms and time-series accumulators used by the
// metric collectors and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cloudfog::util {

/// Streaming mean/variance/min/max (Welford's algorithm). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores samples and answers percentile queries. Suited to the experiment
/// scale here (<= a few million samples).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires samples.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Fraction of samples <= threshold.
  double fraction_at_most(double threshold) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  /// Renders a compact one-line-per-bucket ASCII view (for examples/docs).
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Accumulates (time, value) observations into fixed time buckets and
/// reports per-bucket means — used for bandwidth-over-time series.
class TimeBucketSeries {
 public:
  explicit TimeBucketSeries(double bucket_width);

  void add(double time, double value);
  std::size_t bucket_count() const { return sums_.size(); }
  double bucket_mean(std::size_t i) const;
  double bucket_sum(std::size_t i) const;
  std::uint64_t bucket_samples(std::size_t i) const;
  double bucket_width() const { return width_; }

 private:
  double width_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace cloudfog::util
