// Aligned-column table printer used by the benchmark harnesses to emit the
// same rows/series the paper's figures report, plus a CSV writer so results
// can be plotted externally.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cloudfog::util {

/// A simple row/column table with a title, built incrementally and rendered
/// either as aligned text or CSV.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a row; its width must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const;

  /// Renders the table with aligned columns.
  std::string to_text() const;

  /// Renders the table as RFC-4180-ish CSV (fields quoted when needed).
  std::string to_csv() const;

  /// Writes both representations to the stream (text form only).
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing garbage), e.g. 0.125.
std::string format_double(double v, int precision = 3);

}  // namespace cloudfog::util
