#include "util/rng.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace cloudfog::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (char ch : label) {
    const auto c = static_cast<unsigned char>(ch);
    h ^= c;
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const {
  // Mix the current state with the label hash; the parent stream is not
  // advanced, so forking is order-independent for distinct labels.
  std::uint64_t mixed = state_[0] ^ rotl(state_[1], 17) ^ hash_label(label);
  return Rng(mixed);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CF_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CF_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~span + 1) % span;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  CF_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  CF_CHECK_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 60.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

double Rng::pareto(double xm, double alpha) {
  CF_CHECK_MSG(xm > 0.0 && alpha > 0.0, "pareto requires positive scale and shape");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::pareto_with_mean(double mean, double alpha, double cap_multiple) {
  CF_CHECK_MSG(mean > 0.0 && cap_multiple > 1.0, "pareto_with_mean parameters");
  const double cap = cap_multiple * mean;
  double xm;
  if (alpha > 1.0) {
    xm = mean * (alpha - 1.0) / alpha;
  } else {
    // alpha <= 1: infinite mean; choose xm so the cap-truncated mean equals
    // `mean`. For alpha == 1 the truncated mean is xm * (1 + ln(cap/xm));
    // solve by bisection on xm in (0, mean].
    double lo = mean / cap_multiple / 100.0, hi = mean;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      double truncated_mean;
      if (alpha == 1.0) {
        truncated_mean = mid * (1.0 + std::log(cap / mid));
      } else {
        // E[min(X, cap)] = xm * (a - (xm/cap)^(a-1)) / (a - 1), valid a != 1.
        truncated_mean =
            mid * (alpha - std::pow(mid / cap, alpha - 1.0)) / (alpha - 1.0);
      }
      if (truncated_mean < mean)
        lo = mid;
      else
        hi = mid;
    }
    xm = 0.5 * (lo + hi);
  }
  return std::min(pareto(xm, alpha), cap);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  CF_CHECK_MSG(n >= 1, "zipf requires n >= 1");
  if (n == 1) return 1;
  // Rejection-inversion (Hörmann & Derflinger) specialised for s != 1 and
  // a simple harmonic fallback for s == 1.
  const double x_min = 1.0, x_max = static_cast<double>(n) + 0.5;
  auto h_integral = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_integral_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double lo = h_integral(x_min - 0.5 < 0.5 ? 0.5 : x_min - 0.5);
  const double hi = h_integral(x_max);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double u = uniform(lo, hi);
    const double x = h_integral_inv(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    // Accept with probability proportional to the true mass at k.
    const double accept = std::pow(static_cast<double>(k), -s) /
                          std::pow(x, -s);
    if (uniform() < accept) return k;
  }
  return 1;  // vanishing probability; keeps the function total
}

std::uint64_t Rng::power_law(std::uint64_t k_min, std::uint64_t k_max, double gamma) {
  CF_CHECK_MSG(k_min >= 1 && k_min <= k_max, "power_law bounds");
  if (k_min == k_max) return k_min;
  // Inverse-CDF on the continuous approximation, then round.
  const double a = static_cast<double>(k_min);
  const double b = static_cast<double>(k_max) + 1.0;
  const double one_minus_g = 1.0 - gamma;
  double x;
  if (std::abs(one_minus_g) < 1e-12) {
    x = a * std::pow(b / a, uniform());
  } else {
    const double ca = std::pow(a, one_minus_g);
    const double cb = std::pow(b, one_minus_g);
    x = std::pow(ca + (cb - ca) * uniform(), 1.0 / one_minus_g);
  }
  auto k = static_cast<std::uint64_t>(x);
  if (k < k_min) k = k_min;
  if (k > k_max) k = k_max;
  return k;
}

std::size_t Rng::index(std::size_t n) {
  CF_CHECK_MSG(n > 0, "index requires non-empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  CF_CHECK_MSG(k <= n, "cannot sample more indices than the population");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: first k slots are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CF_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  CF_CHECK_MSG(total > 0.0, "weighted_index requires a positive total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return last positive slot
}

}  // namespace cloudfog::util
