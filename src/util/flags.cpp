#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace cloudfog::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    CF_CHECK_MSG(arg.size() > 2, "malformed flag: '--'");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare switch
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CF_CHECK_MSG(end != it->second.c_str() && *end == '\0',
               "flag --" + key + " expects a number, got '" + it->second + "'");
  return v;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  CF_CHECK_MSG(end != it->second.c_str() && *end == '\0',
               "flag --" + key + " expects an integer, got '" + it->second + "'");
  return static_cast<std::int64_t>(v);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  CF_CHECK_MSG(false, "flag --" + key + " expects a boolean, got '" + v + "'");
  return fallback;  // unreachable
}

std::vector<std::string> Flags::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end())
      out.push_back(key);
  }
  return out;
}

}  // namespace cloudfog::util
