// Fixed-capacity move-only callable with inline storage: the event-loop
// replacement for `std::function` on the packet hot path (DESIGN.md §14).
//
// `std::function` guarantees to hold *any* callable, so large captures go to
// the heap — and on the packet path every sim event and sender hook used to
// pay that allocation. `small_function<R(Args...), Capacity>` inverts the
// contract: the capture must fit in `Capacity` bytes (enforced at compile
// time by a static_assert at the construction site), storage is always
// inline, and no code path ever allocates. Conversion is a hard error, not a
// silent fallback, so growing a lambda past the budget fails the build
// instead of quietly reintroducing the allocation.
//
// Semantics mirror the subset of std::function the engine uses:
//   * move-only (move leaves the source empty; self-move is a no-op)
//   * `operator() const` may invoke a mutable lambda (storage is mutable,
//     matching std::function's shallow-const behaviour)
//   * assigning nullptr (or an empty small_function) clears
//   * a target may destroy or re-assign the small_function that is invoking
//     it — invoke() reads the trampoline pointer before entering the target,
//     the same discipline the slab engine uses for self-cancelling events.
//
// Trivially-movable captures (function pointers, capture-less lambdas,
// [this]/value captures of trivial types — the common case on the hot path)
// take the `manage_ == nullptr` fast path: moves are a memcpy of the inline
// buffer and destruction is a no-op.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace cloudfog::util {

inline constexpr std::size_t kSmallFunctionDefaultCapacity = 48;

template <typename Signature,
          std::size_t Capacity = kSmallFunctionDefaultCapacity>
class small_function;  // primary template; only R(Args...) is defined

template <typename R, typename... Args, std::size_t Capacity>
class small_function<R(Args...), Capacity> {
 public:
  small_function() = default;
  small_function(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, small_function> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  small_function(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for this small_function's inline "
                  "buffer; shrink the capture or raise the capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* storage, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(storage)))(
          std::forward<Args>(args)...);
    };
    if constexpr (!(std::is_trivially_move_constructible_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {  // relocate src -> dst, then destroy src
          Fn* from = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        } else {  // destroy dst
          std::launder(reinterpret_cast<Fn*>(dst))->~Fn();
        }
      };
    }
  }

  small_function(small_function&& other) noexcept { move_from(other); }

  small_function& operator=(small_function&& other) noexcept {
    if (this == &other) return *this;
    reset();
    move_from(other);
    return *this;
  }

  small_function& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  small_function(const small_function&) = delete;
  small_function& operator=(const small_function&) = delete;

  ~small_function() { reset(); }

  /// Swaps two small_functions (used by container recycling).
  void swap(small_function& other) noexcept {
    small_function tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    // Read the trampoline before entering the target: the target may
    // destroy or re-assign *this from inside its own invocation.
    auto* invoke = invoke_;
    return invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  void reset() noexcept {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Transfers other's target into empty *this and empties other.
  void move_from(small_function& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(storage_, other.storage_);
    } else if (other.invoke_ != nullptr) {
      // The whole buffer is copied even when the target is smaller than
      // Capacity; the tail bytes beyond it may be uninitialized, which is
      // fine for raw byte storage but trips GCC's tracker.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
      std::memcpy(storage_, other.storage_, Capacity);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  using Invoke = R (*)(void*, Args...);
  /// dst, src: src != null relocates src into dst; src == null destroys dst.
  using Manage = void (*)(void*, void*);

  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;  // null: trivial memcpy move, no-op destroy
  alignas(std::max_align_t) mutable std::byte storage_[Capacity];
};

}  // namespace cloudfog::util
