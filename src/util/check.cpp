#include "util/check.h"

#include <atomic>
#include <thread>

namespace cloudfog::detail {

namespace {
// Captured during static initialisation, which runs on the main thread.
const std::thread::id g_main_thread = std::this_thread::get_id();
}  // namespace

std::string off_main_thread_suffix() {
  const std::thread::id self = std::this_thread::get_id();
  if (self == g_main_thread) return {};
  std::ostringstream os;
  os << " [thread " << self << ']';
  return os.str();
}

}  // namespace cloudfog::detail

namespace cloudfog::util {

namespace {
InvariantAuditHook g_hook = nullptr;
std::atomic<std::uint64_t> g_violations{0};
}  // namespace

InvariantAuditHook set_invariant_audit_hook(InvariantAuditHook hook) {
  InvariantAuditHook previous = g_hook;
  g_hook = hook;
  return previous;
}

std::uint64_t invariant_violations() {
  return g_violations.load(std::memory_order_relaxed);
}

namespace detail {

void invariant_failed(const char* expr, const char* what, const char* file,
                      int line) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << expr << " at " << file << ':' << line;
  if (g_hook != nullptr) g_hook(what, os.str());
  ::cloudfog::detail::check_failed(expr, file, line, what);
}

}  // namespace detail

}  // namespace cloudfog::util
