// Host registry and placement: who exists, where they sit, and how far apart
// any two hosts are in latency terms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geo.h"
#include "net/latency_model.h"
#include "net/trace_fwd.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::net {

/// Role a host plays in the infrastructure. Supernode capability of players
/// is decided by upper layers; the topology only distinguishes structural
/// roles.
enum class HostRole : std::uint8_t { kPlayer, kDatacenter, kEdgeServer };

const char* to_string(HostRole role);

/// Static description of one simulated host.
struct Host {
  NodeId id = kInvalidNode;
  HostRole role = HostRole::kPlayer;
  GeoPoint position;
  TimeMs last_mile_ms = 0.0;
  /// Access delay when this host acts as a *server* (streaming side). For
  /// datacenters/edge servers this equals last_mile_ms; for players it is
  /// the wired-interface delay — supernode eligibility screens for
  /// well-provisioned uplinks, so a contributed machine serves over its
  /// wired access, not the Wi-Fi path its owner games over.
  TimeMs server_last_mile_ms = 0.0;
  /// cos(latitude), precomputed once at add_host time and forwarded into
  /// every Endpoint so the latency model's haversine skips its two cos
  /// calls (bit-identical — see net::cos_lat).
  double cos_lat = 1.0;
  std::string label;  // metro name or datacenter name, for reports
};

/// Placement parameters for building a topology.
struct PlacementConfig {
  std::size_t num_players = 10'000;
  std::size_t num_datacenters = 5;
  std::size_t num_edge_servers = 0;
  double player_scatter_km = 30.0;       // Gaussian scatter around metro center
  double player_last_mile_mean_ms = 12.0; // median residential access delay
  double player_last_mile_min_ms = 1.0;
  double poor_connectivity_fraction = 0.2;  // rural / congested players
  double poor_last_mile_median_ms = 35.0;
  double server_last_mile_ms = 0.5;      // datacenters/edge servers: wired
  bool planetlab_hosts = false;          // true: university-grade last mile
  std::uint64_t seed = 1;
};

/// The world: hosts plus the latency model between them.
///
/// A measured LatencyTrace can be attached, after which pair latencies come
/// from the trace (with per-packet jitter on top) instead of the geographic
/// model — the workflow the paper used: PeerSim driven by a PlanetLab
/// trace. Loss probabilities and host metadata still come from the model.
class Topology {
 public:
  explicit Topology(LatencyModel model) : model_(std::move(model)) {}

  /// Attaches a measured trace overriding pairwise latencies for hosts with
  /// ids below trace->size(). The trace must outlive the topology (or be
  /// detached with nullptr).
  void attach_trace(const LatencyTrace* trace);
  bool has_trace() const { return trace_ != nullptr; }

  /// Registers a host; its id is assigned sequentially and returned.
  /// `server_last_mile_ms` < 0 (default) means "same as last_mile_ms".
  NodeId add_host(HostRole role, GeoPoint position, TimeMs last_mile_ms,
                  std::string label = {}, TimeMs server_last_mile_ms = -1.0);

  std::size_t size() const { return hosts_.size(); }
  const Host& host(NodeId id) const;
  const std::vector<Host>& hosts() const { return hosts_; }
  const LatencyModel& model() const { return model_; }

  /// All hosts with the given role.
  std::vector<NodeId> hosts_with_role(HostRole role) const;

  Endpoint endpoint(NodeId id) const;
  /// Endpoint using the host's server-side (wired) access delay.
  Endpoint server_endpoint(NodeId id) const;

  TimeMs expected_one_way_ms(NodeId a, NodeId b) const;
  TimeMs expected_rtt_ms(NodeId a, NodeId b) const;
  TimeMs sample_one_way_ms(NodeId a, NodeId b, util::Rng& rng) const;

  /// Latency of the serving path between `server` (using its wired
  /// server-side interface) and `client` (using its access interface).
  TimeMs expected_server_one_way_ms(NodeId server, NodeId client) const;
  /// As above, with the pair's great-circle distance already in hand (e.g.
  /// from the supernode grid's candidate list). `distance_km` must be the
  /// exact haversine_km double for the two hosts' positions; the result is
  /// then bit-identical to the two-argument overload (a trace, when
  /// attached, still takes precedence and ignores the distance).
  TimeMs expected_server_one_way_ms(NodeId server, NodeId client,
                                    double distance_km) const;
  /// As above with the client endpoint already resolved (endpoint(client)).
  /// A probe loop over k candidate servers resolves the client once.
  TimeMs expected_server_one_way_ms(NodeId server, const Endpoint& client,
                                    double distance_km) const;
  TimeMs expected_server_rtt_ms(NodeId server, NodeId client) const {
    return 2.0 * expected_server_one_way_ms(server, client);
  }
  TimeMs sample_server_one_way_ms(NodeId server, NodeId client,
                                  util::Rng& rng) const;

  /// Per-packet loss probability between two hosts / along a serving path.
  double loss_probability(NodeId a, NodeId b) const;
  double server_loss_probability(NodeId server, NodeId client) const;

  /// Candidates sorted ascending by expected one-way latency from `from`.
  /// Ties broken by id for determinism.
  std::vector<NodeId> sorted_by_latency(NodeId from,
                                        const std::vector<NodeId>& candidates) const;

  /// The single nearest candidate (by expected one-way latency); requires a
  /// non-empty candidate list.
  NodeId nearest(NodeId from, const std::vector<NodeId>& candidates) const;

 private:
  /// Trace lookup helper: the trace value when both ids are covered.
  bool trace_lookup(NodeId a, NodeId b, TimeMs* out) const;

  LatencyModel model_;
  std::vector<Host> hosts_;
  const LatencyTrace* trace_ = nullptr;
};

/// Builds a topology per the config: datacenters at the largest metros
/// (round-robin spread), players sampled population-weighted with Gaussian
/// scatter, optional edge servers at random metros.
Topology build_topology(const PlacementConfig& config, const LatencyParams& params);

/// Builds the PlanetLab-profile topology the paper used: 750 university
/// hosts nationwide and 2 datacenters (Princeton, UCLA).
Topology build_planetlab_topology(std::size_t num_hosts = 750,
                                  std::uint64_t seed = 1);

}  // namespace cloudfog::net
