// Forward declaration shared by topology.h and trace.h (trace.h includes
// topology.h for the measurement constructor; the override hook only needs
// the name).
#pragma once

namespace cloudfog::net {
class LatencyTrace;
}  // namespace cloudfog::net
