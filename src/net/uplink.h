// Flow-level (fluid) fair-share uplink model.
//
// A host's uplink of capacity C kbps is shared equally among its active
// flows (processor sharing — the standard fluid approximation of TCP fair
// sharing on a single bottleneck). Between mutations (flow start/finish/
// cancel) every flow progresses at C / n, so completion times are exact and
// the model scales to thousands of concurrent transfers.
//
// Each flow may carry a deadline; because progress is piecewise linear, the
// amount delivered by the deadline is computed exactly and reported in the
// completion callback — this is what the playback-continuity metric (paper
// Figure 9) consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulator.h"
#include "util/types.h"

namespace cloudfog::net {

/// Result handed to a flow's completion (or cancellation) callback.
struct FlowResult {
  TimeMs start = 0.0;
  TimeMs end = 0.0;
  Kbit size = 0.0;
  Kbit delivered = 0.0;             // == size unless cancelled
  TimeMs deadline = 0.0;            // copied from the request (0 = none)
  Kbit delivered_by_deadline = 0.0; // exact fluid amount at the deadline
  bool cancelled = false;

  /// Fraction of the flow's data that arrived by its deadline.
  double on_time_fraction() const {
    return size > 0.0 ? delivered_by_deadline / size : 1.0;
  }
};

/// One sender uplink with processor-sharing bandwidth allocation.
class FairShareUplink {
 public:
  using FlowId = std::uint64_t;
  using CompletionFn = std::function<void(const FlowResult&)>;
  static constexpr FlowId kInvalidFlow = 0;

  /// `capacity_kbps` > 0. The uplink registers its own events on `sim`.
  FairShareUplink(sim::Simulator& sim, Kbps capacity_kbps);
  ~FairShareUplink();

  FairShareUplink(const FairShareUplink&) = delete;
  FairShareUplink& operator=(const FairShareUplink&) = delete;

  /// Starts a flow of `size` kbit; `deadline` of 0 means none. The callback
  /// fires exactly once, at completion or cancellation. Zero-size flows
  /// complete immediately (callback runs inline).
  FlowId start_flow(Kbit size, TimeMs deadline, CompletionFn on_complete);

  /// Cancels an in-flight flow; its callback fires with cancelled=true and
  /// the data delivered so far. Returns false for unknown/finished flows.
  bool cancel_flow(FlowId id);

  Kbps capacity() const { return capacity_; }
  std::size_t active_flows() const { return flows_.size(); }

  /// Bandwidth each active flow currently receives (capacity if idle).
  Kbps current_share() const;

  /// Total kilobits fully delivered by completed flows.
  Kbit total_delivered() const { return total_delivered_; }

 private:
  struct Flow {
    TimeMs start = 0.0;
    Kbit size = 0.0;
    Kbit remaining = 0.0;
    TimeMs deadline = 0.0;
    bool deadline_recorded = false;
    Kbit delivered_by_deadline = 0.0;
    CompletionFn on_complete;
  };

  /// Advances all flows to now() at the share that held since last_update_.
  void advance();

  /// (Re)schedules the completion event for the earliest-finishing flow.
  void reschedule();

  /// Fires completions for flows whose remaining has reached zero.
  void complete_finished();

  sim::Simulator& sim_;
  Kbps capacity_;
  TimeMs last_update_ = 0.0;
  FlowId next_id_ = 1;
  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  sim::EventId pending_event_ = sim::kInvalidEvent;
  Kbit total_delivered_ = 0.0;
};

}  // namespace cloudfog::net
