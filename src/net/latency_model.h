// Pairwise latency model — the substitute for the PlanetLab latency trace.
//
// A host pair's *expected* one-way latency decomposes as
//
//   fiber propagation (5 us/km over the great-circle distance, stretched by a
//   route-inflation factor) + per-hop router delay (hop count grows with
//   distance) + each endpoint's last-mile access delay + a deterministic
//   per-pair route bias (lognormal; some pairs simply have bad routes).
//
// Individual packets additionally see multiplicative lognormal jitter.
// The per-pair bias is derived from a hash of (seed, min_id, max_id), so the
// same pair always gets the same route quality and the full 10,000-node
// matrix never has to be materialised.
//
// Two parameter profiles mirror the paper's two testbeds: the PeerSim-style
// simulation profile, and a PlanetLab profile with heavier inflation and
// jitter (matching real measured PlanetLab path behaviour).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/geo.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::net {

/// Tuning knobs of the latency model.
struct LatencyParams {
  double fiber_ms_per_km = 0.005;   // speed of light in fiber, ~5 us/km
  double route_inflation = 1.8;     // path-stretch over great circle
  double per_hop_ms = 0.35;         // router queuing+processing per hop
  double hops_base = 4.0;           // minimum hop count
  double hops_per_1000km = 3.0;     // extra hops with distance
  double pair_bias_sigma = 0.20;    // lognormal sigma of per-pair route bias
  double jitter_sigma = 0.08;       // lognormal sigma of per-packet jitter
  /// Packet-loss model: per-packet loss probability grows with path length
  /// (more hops, more congestion points), capped at loss_cap.
  double base_loss = 0.001;
  double loss_per_1000km = 0.002;
  double loss_cap = 0.25;
  std::uint64_t seed = 1;           // seeds the per-pair bias

  /// PeerSim-style simulation profile (paper Section IV defaults).
  static LatencyParams simulation_profile(std::uint64_t seed = 1);

  /// PlanetLab profile: heavier route inflation and jitter, low last-mile
  /// (PlanetLab hosts sit on university networks).
  static LatencyParams planetlab_profile(std::uint64_t seed = 1);
};

/// Endpoint description consumed by the model.
struct Endpoint {
  NodeId id = kInvalidNode;
  GeoPoint position;
  TimeMs last_mile_ms = 0.0;  // access-network delay of this host
  /// Precomputed cos(latitude) (see net::cos_lat). Valid values lie in
  /// [-1, 1]; the default sentinel 2.0 makes the model derive it on the
  /// fly, so endpoints built by hand (tests) keep working unchanged.
  double cos_lat = 2.0;
};

/// Latency calculator over endpoint pairs. Logically const: every quantity
/// is a pure deterministic function of (params, endpoints). Internally it
/// memoizes the per-pair route bias and great-circle distance in a set-
/// associative cache — hits return the exact double a fresh computation
/// would, so memoization is invisible to results (DESIGN.md §8). The cache
/// starts at 4096 entries and is re-sized (power-of-two set counts, 4-way)
/// by reserve_endpoints() as the topology announces its roster, so the
/// working set of a million-player run does not thrash a fixed-size memo
/// (DESIGN.md §12). The cache makes the model non-thread-safe; the
/// simulation is single-threaded.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params)
      : params_(params),
        cache_(kPairCacheMinSets * kPairCacheWays),
        rr_(kPairCacheMinSets, 0) {}

  const LatencyParams& params() const { return params_; }

  /// Scales the pair memo to a roster of `num_endpoints` hosts: the set
  /// count becomes the clamped next power of two. Called by Topology as
  /// hosts register; safe at any time (a re-size discards memoized lines —
  /// results are unaffected, every line is recomputable).
  void reserve_endpoints(std::size_t num_endpoints) const;

  /// Deterministic expected one-way latency (ms) between two endpoints.
  /// Symmetric: expected(a, b) == expected(b, a).
  TimeMs expected_one_way_ms(const Endpoint& a, const Endpoint& b) const;

  /// As above, with the pair's great-circle distance already in hand (e.g.
  /// from the spatial index's candidate list). `d_km` MUST be the exact
  /// haversine_km double for the endpoints' positions (haversine is
  /// bit-identically symmetric, so argument order does not matter); the
  /// result and the memo state are then bit-identical to the two-argument
  /// overload, minus the recomputation. CF_DCHECKed against the memo.
  TimeMs expected_one_way_ms(const Endpoint& a, const Endpoint& b,
                             double d_km) const;

  /// One packet's one-way latency: expected value times lognormal jitter.
  TimeMs sample_one_way_ms(const Endpoint& a, const Endpoint& b,
                           util::Rng& rng) const;

  /// Expected round-trip latency (2x one-way; routes modelled symmetric).
  TimeMs expected_rtt_ms(const Endpoint& a, const Endpoint& b) const {
    return 2.0 * expected_one_way_ms(a, b);
  }

  /// The deterministic multiplicative route bias for a pair (exposed for
  /// tests and trace generation). Memoized; == pair_bias_uncached always.
  double pair_bias(NodeId a, NodeId b) const;

  /// pair_bias computed from scratch, bypassing the memo — the reference
  /// the memo is tested against.
  double pair_bias_uncached(NodeId a, NodeId b) const;

  /// The unbiased backbone component (fiber + routers) of a pair's path.
  TimeMs route_ms(const Endpoint& a, const Endpoint& b) const;

  /// Closed-form lower bound of route_ms over ANY pair: the backbone term
  /// at zero great-circle distance, hops_base × per_hop_ms. Note this
  /// bounds only the UNBIASED backbone — the per-pair path bias is
  /// multiplicative lognormal and can fall below 1, so a real expected
  /// one-way latency may undercut this value. The space-parallel shard
  /// runner (DESIGN.md §13) therefore derives its conservative lookahead
  /// from the actual minimum expected latency over its cross-shard message
  /// edges, not from this floor.
  TimeMs min_route_ms() const;

  /// Per-packet loss probability of the path (deterministic per pair:
  /// base + per-1000km x distance, scaled by the route bias, capped).
  double loss_probability(const Endpoint& a, const Endpoint& b) const;

 private:
  /// One memo line. Keyed on the unordered id pair; the bias is valid
  /// whenever the keys match (it depends only on seed + ids), the distance
  /// additionally requires the stored positions to match — node ids can be
  /// rebound to new coordinates across topologies sharing a model (tests
  /// do), so a hit must prove it cached *these* coordinates.
  struct PairEntry {
    NodeId lo = kInvalidNode;
    NodeId hi = kInvalidNode;
    GeoPoint lo_pos, hi_pos;
    double bias = 0.0;
    double d_km = -1.0;  // < 0: distance half not populated
  };
  static constexpr std::size_t kPairCacheWays = 4;
  /// 1024 sets x 4 ways = the 4096-entry footprint small runs always had.
  static constexpr std::size_t kPairCacheMinSets = 1024;
  /// 4096 sets x 4 ways x 56 B ~ 0.9 MB. Deliberately cache-resident: on a
  /// large roster the join/probe traffic is dominated by first-contact
  /// pairs (compulsory misses), so growing the memo past the L2 footprint
  /// buys no hits and turns every miss into a DRAM round-trip — measured
  /// ~2x slower probes at 100k players with a 15 MB memo.
  static constexpr std::size_t kPairCacheMaxSets = std::size_t{1} << 12;

  /// The memo line whose (bias, keys) cover the pair: associative lookup,
  /// round-robin eviction within the set on a miss. Distance freshness is
  /// the caller's business (pair_entry).
  PairEntry& find_line(NodeId lo, NodeId hi) const;
  /// Returns the memo line for the pair, populated/refreshed as needed.
  const PairEntry& pair_entry(const Endpoint& a, const Endpoint& b) const;
  /// Backbone latency for a known great-circle distance.
  TimeMs route_from_km(double d_km) const;

  LatencyParams params_;
  mutable std::vector<PairEntry> cache_;  // sets_ x kPairCacheWays lines
  mutable std::vector<std::uint8_t> rr_;  // per-set round-robin victim
  mutable std::size_t sets_ = kPairCacheMinSets;
};

}  // namespace cloudfog::net
