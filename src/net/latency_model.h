// Pairwise latency model — the substitute for the PlanetLab latency trace.
//
// A host pair's *expected* one-way latency decomposes as
//
//   fiber propagation (5 us/km over the great-circle distance, stretched by a
//   route-inflation factor) + per-hop router delay (hop count grows with
//   distance) + each endpoint's last-mile access delay + a deterministic
//   per-pair route bias (lognormal; some pairs simply have bad routes).
//
// Individual packets additionally see multiplicative lognormal jitter.
// The per-pair bias is derived from a hash of (seed, min_id, max_id), so the
// same pair always gets the same route quality and the full 10,000-node
// matrix never has to be materialised.
//
// Two parameter profiles mirror the paper's two testbeds: the PeerSim-style
// simulation profile, and a PlanetLab profile with heavier inflation and
// jitter (matching real measured PlanetLab path behaviour).
#pragma once

#include <cstdint>

#include "net/geo.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::net {

/// Tuning knobs of the latency model.
struct LatencyParams {
  double fiber_ms_per_km = 0.005;   // speed of light in fiber, ~5 us/km
  double route_inflation = 1.8;     // path-stretch over great circle
  double per_hop_ms = 0.35;         // router queuing+processing per hop
  double hops_base = 4.0;           // minimum hop count
  double hops_per_1000km = 3.0;     // extra hops with distance
  double pair_bias_sigma = 0.20;    // lognormal sigma of per-pair route bias
  double jitter_sigma = 0.08;       // lognormal sigma of per-packet jitter
  /// Packet-loss model: per-packet loss probability grows with path length
  /// (more hops, more congestion points), capped at loss_cap.
  double base_loss = 0.001;
  double loss_per_1000km = 0.002;
  double loss_cap = 0.25;
  std::uint64_t seed = 1;           // seeds the per-pair bias

  /// PeerSim-style simulation profile (paper Section IV defaults).
  static LatencyParams simulation_profile(std::uint64_t seed = 1);

  /// PlanetLab profile: heavier route inflation and jitter, low last-mile
  /// (PlanetLab hosts sit on university networks).
  static LatencyParams planetlab_profile(std::uint64_t seed = 1);
};

/// Endpoint description consumed by the model.
struct Endpoint {
  NodeId id = kInvalidNode;
  GeoPoint position;
  TimeMs last_mile_ms = 0.0;  // access-network delay of this host
};

/// Stateless latency calculator over endpoint pairs.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params) : params_(params) {}

  const LatencyParams& params() const { return params_; }

  /// Deterministic expected one-way latency (ms) between two endpoints.
  /// Symmetric: expected(a, b) == expected(b, a).
  TimeMs expected_one_way_ms(const Endpoint& a, const Endpoint& b) const;

  /// One packet's one-way latency: expected value times lognormal jitter.
  TimeMs sample_one_way_ms(const Endpoint& a, const Endpoint& b,
                           util::Rng& rng) const;

  /// Expected round-trip latency (2x one-way; routes modelled symmetric).
  TimeMs expected_rtt_ms(const Endpoint& a, const Endpoint& b) const {
    return 2.0 * expected_one_way_ms(a, b);
  }

  /// The deterministic multiplicative route bias for a pair (exposed for
  /// tests and trace generation).
  double pair_bias(NodeId a, NodeId b) const;

  /// The unbiased backbone component (fiber + routers) of a pair's path.
  TimeMs route_ms(const Endpoint& a, const Endpoint& b) const;

  /// Per-packet loss probability of the path (deterministic per pair:
  /// base + per-1000km x distance, scaled by the route bias, capped).
  double loss_probability(const Endpoint& a, const Endpoint& b) const;

 private:
  LatencyParams params_;
};

}  // namespace cloudfog::net
