#include "net/trace.h"

#include <fstream>
#include <sstream>

#include "util/check.h"

namespace cloudfog::net {

std::size_t LatencyTrace::index(NodeId a, NodeId b) const {
  CF_CHECK_MSG(a < n_ && b < n_, "trace index out of range");
  return static_cast<std::size_t>(a) * n_ + b;
}

TimeMs LatencyTrace::one_way_ms(NodeId a, NodeId b) const {
  return data_[index(a, b)];
}

void LatencyTrace::set_one_way_ms(NodeId a, NodeId b, TimeMs value) {
  CF_CHECK_MSG(value >= 0.0, "latency must be non-negative");
  data_[index(a, b)] = value;
  data_[index(b, a)] = value;
}

LatencyTrace LatencyTrace::measure(const Topology& topology, util::Rng& rng) {
  LatencyTrace trace(topology.size());
  for (NodeId a = 0; a < topology.size(); ++a) {
    for (NodeId b = a; b < static_cast<NodeId>(topology.size()); ++b) {
      if (a == b) {
        trace.set_one_way_ms(a, b, 0.0);
      } else {
        trace.set_one_way_ms(a, b, topology.sample_one_way_ms(a, b, rng));
      }
    }
  }
  return trace;
}

void LatencyTrace::save(std::ostream& os) const {
  os << "cloudfog-latency-trace v1 " << n_ << '\n';
  for (NodeId a = 0; a < n_; ++a) {
    for (NodeId b = a; b < n_; ++b) {
      if (b > a) os << ' ';
      os << one_way_ms(a, b);
    }
    os << '\n';
  }
}

LatencyTrace LatencyTrace::load(std::istream& is) {
  std::string word1, word2;
  std::size_t n = 0;
  is >> word1 >> word2 >> n;
  CF_CHECK_MSG(word1 == "cloudfog-latency-trace" && word2 == "v1",
               "unrecognised trace header");
  CF_CHECK_MSG(n > 0, "trace must contain at least one host");
  LatencyTrace trace(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a; b < n; ++b) {
      TimeMs v = 0.0;
      is >> v;
      CF_CHECK_MSG(static_cast<bool>(is), "truncated trace file");
      trace.set_one_way_ms(a, b, v);
    }
  }
  return trace;
}

void LatencyTrace::save_file(const std::string& path) const {
  std::ofstream os(path);
  CF_CHECK_MSG(os.good(), "cannot open trace file for writing: " + path);
  save(os);
}

LatencyTrace LatencyTrace::load_file(const std::string& path) {
  std::ifstream is(path);
  CF_CHECK_MSG(is.good(), "cannot open trace file for reading: " + path);
  return load(is);
}

}  // namespace cloudfog::net
