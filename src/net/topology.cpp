#include "net/topology.h"

#include "net/trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudfog::net {

const char* to_string(HostRole role) {
  switch (role) {
    case HostRole::kPlayer: return "player";
    case HostRole::kDatacenter: return "datacenter";
    case HostRole::kEdgeServer: return "edge-server";
  }
  return "?";
}

NodeId Topology::add_host(HostRole role, GeoPoint position, TimeMs last_mile_ms,
                          std::string label, TimeMs server_last_mile_ms) {
  CF_CHECK_MSG(last_mile_ms >= 0.0, "last-mile delay must be non-negative");
  Host h;
  h.id = static_cast<NodeId>(hosts_.size());
  h.role = role;
  h.position = position;
  h.last_mile_ms = last_mile_ms;
  h.server_last_mile_ms =
      server_last_mile_ms < 0.0 ? last_mile_ms : server_last_mile_ms;
  h.cos_lat = cos_lat(position);
  h.label = std::move(label);
  hosts_.push_back(std::move(h));
  // Keep the latency model's pair memo scaled to the roster (resizing only
  // on power-of-two crossings; dropped memo lines are recomputable, so
  // results never depend on when this happens).
  model_.reserve_endpoints(hosts_.size());
  return hosts_.back().id;
}

const Host& Topology::host(NodeId id) const {
  CF_CHECK_MSG(id < hosts_.size(), "unknown host id");
  return hosts_[id];
}

std::vector<NodeId> Topology::hosts_with_role(HostRole role) const {
  std::vector<NodeId> out;
  for (const auto& h : hosts_)
    if (h.role == role) out.push_back(h.id);
  return out;
}

Endpoint Topology::endpoint(NodeId id) const {
  const Host& h = host(id);
  return Endpoint{h.id, h.position, h.last_mile_ms, h.cos_lat};
}

Endpoint Topology::server_endpoint(NodeId id) const {
  const Host& h = host(id);
  return Endpoint{h.id, h.position, h.server_last_mile_ms, h.cos_lat};
}

TimeMs Topology::expected_server_one_way_ms(NodeId server, NodeId client) const {
  TimeMs traced = 0.0;
  // A trace measures end-to-end paths; the server-interface refinement only
  // applies to the synthetic model.
  if (trace_lookup(server, client, &traced)) return traced;
  return model_.expected_one_way_ms(server_endpoint(server), endpoint(client));
}

TimeMs Topology::expected_server_one_way_ms(NodeId server, NodeId client,
                                            double distance_km) const {
  TimeMs traced = 0.0;
  if (trace_lookup(server, client, &traced)) return traced;
  return model_.expected_one_way_ms(server_endpoint(server), endpoint(client),
                                    distance_km);
}

TimeMs Topology::expected_server_one_way_ms(NodeId server,
                                            const Endpoint& client,
                                            double distance_km) const {
  TimeMs traced = 0.0;
  if (trace_lookup(server, client.id, &traced)) return traced;
  return model_.expected_one_way_ms(server_endpoint(server), client,
                                    distance_km);
}

TimeMs Topology::sample_server_one_way_ms(NodeId server, NodeId client,
                                          util::Rng& rng) const {
  TimeMs traced = 0.0;
  if (trace_lookup(server, client, &traced)) {
    return traced * rng.lognormal(0.0, model_.params().jitter_sigma);
  }
  return model_.sample_one_way_ms(server_endpoint(server), endpoint(client), rng);
}

void Topology::attach_trace(const LatencyTrace* trace) { trace_ = trace; }

bool Topology::trace_lookup(NodeId a, NodeId b, TimeMs* out) const {
  if (trace_ == nullptr || a >= trace_->size() || b >= trace_->size())
    return false;
  *out = trace_->one_way_ms(a, b);
  return true;
}

double Topology::loss_probability(NodeId a, NodeId b) const {
  return model_.loss_probability(endpoint(a), endpoint(b));
}

double Topology::server_loss_probability(NodeId server, NodeId client) const {
  return model_.loss_probability(server_endpoint(server), endpoint(client));
}

TimeMs Topology::expected_one_way_ms(NodeId a, NodeId b) const {
  TimeMs traced = 0.0;
  if (trace_lookup(a, b, &traced)) return traced;
  return model_.expected_one_way_ms(endpoint(a), endpoint(b));
}

TimeMs Topology::expected_rtt_ms(NodeId a, NodeId b) const {
  // Via expected_one_way_ms so an attached trace is honoured.
  return 2.0 * expected_one_way_ms(a, b);
}

TimeMs Topology::sample_one_way_ms(NodeId a, NodeId b, util::Rng& rng) const {
  TimeMs traced = 0.0;
  if (trace_lookup(a, b, &traced)) {
    return traced * rng.lognormal(0.0, model_.params().jitter_sigma);
  }
  return model_.sample_one_way_ms(endpoint(a), endpoint(b), rng);
}

std::vector<NodeId> Topology::sorted_by_latency(
    NodeId from, const std::vector<NodeId>& candidates) const {
  std::vector<std::pair<TimeMs, NodeId>> keyed;
  keyed.reserve(candidates.size());
  for (NodeId c : candidates) keyed.emplace_back(expected_one_way_ms(from, c), c);
  std::sort(keyed.begin(), keyed.end());
  std::vector<NodeId> out;
  out.reserve(keyed.size());
  for (const auto& [lat, id] : keyed) out.push_back(id);
  return out;
}

NodeId Topology::nearest(NodeId from, const std::vector<NodeId>& candidates) const {
  CF_CHECK_MSG(!candidates.empty(), "nearest() requires candidates");
  NodeId best = candidates.front();
  TimeMs best_lat = expected_one_way_ms(from, best);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const TimeMs lat = expected_one_way_ms(from, candidates[i]);
    if (lat < best_lat || (lat == best_lat && candidates[i] < best)) {
      best_lat = lat;
      best = candidates[i];
    }
  }
  return best;
}

namespace {

/// Scatters a point around a metro center by a Gaussian with the given
/// radius (km), converted to degrees (approximate, fine at US latitudes).
GeoPoint scatter(const GeoPoint& center, double radius_km, util::Rng& rng) {
  constexpr double kKmPerDegLat = 111.0;
  const double dlat = rng.normal(0.0, radius_km / kKmPerDegLat);
  const double cos_lat = std::max(0.2, std::cos(center.lat_deg * 3.14159265 / 180.0));
  const double dlon = rng.normal(0.0, radius_km / (kKmPerDegLat * cos_lat));
  return GeoPoint{center.lat_deg + dlat, center.lon_deg + dlon};
}

std::vector<double> metro_weights() {
  std::vector<double> w;
  w.reserve(us_metros().size());
  for (const auto& m : us_metros()) w.push_back(m.population_millions);
  return w;
}

}  // namespace

Topology build_topology(const PlacementConfig& config, const LatencyParams& params) {
  Topology topo{LatencyModel{params}};
  util::Rng rng(config.seed);
  util::Rng placement_rng = rng.fork("placement");
  util::Rng lastmile_rng = rng.fork("last-mile");

  const auto& metros = us_metros();
  const auto weights = metro_weights();

  // Datacenters at real cloud hub sites in deployment-priority order.
  const auto& dc_sites = us_datacenter_sites();
  CF_CHECK_MSG(config.num_datacenters <= dc_sites.size(),
               "more datacenters than hub sites available");
  for (std::size_t i = 0; i < config.num_datacenters; ++i) {
    topo.add_host(HostRole::kDatacenter, dc_sites[i].center,
                  config.server_last_mile_ms, "DC:" + dc_sites[i].name);
  }

  // Edge servers at randomly chosen metros (paper: "randomly distributed").
  for (std::size_t i = 0; i < config.num_edge_servers; ++i) {
    const std::size_t m = placement_rng.index(metros.size());
    topo.add_host(HostRole::kEdgeServer,
                  scatter(metros[m].center, 10.0, placement_rng),
                  config.server_last_mile_ms, "Edge:" + metros[m].name);
  }

  // Players sampled population-weighted with residential scatter and
  // exponential last-mile access delay.
  for (std::size_t i = 0; i < config.num_players; ++i) {
    const std::size_t m = placement_rng.weighted_index(weights);
    const GeoPoint pos =
        scatter(metros[m].center, config.player_scatter_km, placement_rng);
    double last_mile;
    if (config.planetlab_hosts) {
      // University hosts: small, tight access delay.
      last_mile = 0.5 + lastmile_rng.exponential(1.0 / 1.5);
    } else if (lastmile_rng.bernoulli(config.poor_connectivity_fraction)) {
      // Poorly connected players (rural links, congested towers): the heavy
      // tail behind the paper's low baseline coverage.
      last_mile = config.player_last_mile_min_ms +
                  config.poor_last_mile_median_ms * lastmile_rng.lognormal(0.0, 0.5);
    } else {
      // Residential access delay: lognormal around the configured median
      // with a heavy tail (DSL/cable/Wi-Fi), floored at the minimum.
      last_mile = config.player_last_mile_min_ms +
                  config.player_last_mile_mean_ms *
                      lastmile_rng.lognormal(0.0, 0.7);
    }
    // Wired (server-side) interface: bounded, tight — supernode vetting
    // screens for well-provisioned uplinks.
    const double wired =
        std::min(last_mile, 2.0 + lastmile_rng.exponential(1.0 / 2.0));
    topo.add_host(HostRole::kPlayer, pos, last_mile, metros[m].name, wired);
  }
  return topo;
}

Topology build_planetlab_topology(std::size_t num_hosts, std::uint64_t seed) {
  Topology topo{LatencyModel{LatencyParams::planetlab_profile(seed)}};
  util::Rng rng(seed);
  util::Rng placement_rng = rng.fork("pl-placement");
  util::Rng lastmile_rng = rng.fork("pl-last-mile");

  // The two cloud hosts the paper names: Princeton and UCLA.
  topo.add_host(HostRole::kDatacenter, princeton_coords(), 0.5,
                "DC:Princeton (128.112.139.43)");
  topo.add_host(HostRole::kDatacenter, ucla_coords(), 0.5,
                "DC:UCLA (131.179.150.72)");

  const auto& metros = us_metros();
  for (std::size_t i = 0; i < num_hosts; ++i) {
    // PlanetLab sites skew towards university towns; uniform metro choice
    // (rather than population-weighted) approximates that spread.
    const std::size_t m = placement_rng.index(metros.size());
    const GeoPoint pos = [&] {
      constexpr double kKmPerDegLat = 111.0;
      const double r = 15.0 / kKmPerDegLat;
      return GeoPoint{metros[m].center.lat_deg + placement_rng.normal(0.0, r),
                      metros[m].center.lon_deg + placement_rng.normal(0.0, r)};
    }();
    const double last_mile = 0.5 + lastmile_rng.exponential(1.0 / 1.5);
    topo.add_host(HostRole::kPlayer, pos, last_mile, metros[m].name);
  }
  return topo;
}

}  // namespace cloudfog::net
