#include "net/latency_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::net {

LatencyParams LatencyParams::simulation_profile(std::uint64_t seed) {
  // Calibrated against the coverage numbers of Choy et al. (the paper's
  // reference measurement): one-way latency to the nearest of a handful of
  // datacenters has a median of tens of ms with a heavy tail, so a 110 ms
  // RTT requirement still leaves a substantial uncovered fraction.
  LatencyParams p;
  p.route_inflation = 2.2;
  p.per_hop_ms = 0.5;
  p.hops_base = 6.0;
  p.hops_per_1000km = 4.0;
  p.pair_bias_sigma = 0.55;
  p.jitter_sigma = 0.10;
  p.seed = seed;
  return p;
}

LatencyParams LatencyParams::planetlab_profile(std::uint64_t seed) {
  LatencyParams p;
  p.base_loss = 0.003;
  p.loss_per_1000km = 0.004;
  p.route_inflation = 2.5;
  p.per_hop_ms = 0.6;
  p.hops_base = 7.0;
  p.hops_per_1000km = 4.0;
  p.pair_bias_sigma = 0.60;
  p.jitter_sigma = 0.20;
  p.seed = seed;
  return p;
}

namespace {

/// The endpoint's precomputed cos(latitude), or the on-the-fly value for
/// hand-built endpoints carrying the sentinel (bit-identical either way —
/// cos_lat() is the exact expression haversine_km uses internally).
double endpoint_cos_lat(const Endpoint& e) {
  return e.cos_lat <= 1.0 ? e.cos_lat : cos_lat(e.position);
}

/// Deterministic cache-line index for an unordered id pair.
std::size_t pair_slot(std::uint64_t lo, std::uint64_t hi, std::size_t mask) {
  std::uint64_t state = (lo << 32) ^ hi;
  return static_cast<std::size_t>(util::splitmix64(state)) & mask;
}

}  // namespace

double LatencyModel::pair_bias_uncached(NodeId a, NodeId b) const {
  // Deterministic lognormal(0, sigma) derived from (seed, unordered pair).
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  std::uint64_t state = params_.seed ^ (lo << 32) ^ hi ^ 0xa5a5a5a5deadbeefull;
  const std::uint64_t r1 = util::splitmix64(state);
  const std::uint64_t r2 = util::splitmix64(state);
  // Box–Muller from two uniform doubles.
  const double u1 =
      (static_cast<double>(r1 >> 11) + 0.5) * 0x1.0p-53;  // (0, 1)
  const double u2 = static_cast<double>(r2 >> 11) * 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979 * u2);
  return std::exp(params_.pair_bias_sigma * z);
}

void LatencyModel::reserve_endpoints(std::size_t num_endpoints) const {
  std::size_t sets = kPairCacheMinSets;
  while (sets < num_endpoints && sets < kPairCacheMaxSets) sets *= 2;
  if (sets == sets_) return;
  sets_ = sets;
  cache_.assign(sets_ * kPairCacheWays, PairEntry{});
  rr_.assign(sets_, 0);
}

LatencyModel::PairEntry& LatencyModel::find_line(NodeId lo, NodeId hi) const {
  const std::size_t set = pair_slot(lo, hi, sets_ - 1);
  PairEntry* ways = &cache_[set * kPairCacheWays];
  for (std::size_t w = 0; w < kPairCacheWays; ++w) {
    if (ways[w].lo == lo && ways[w].hi == hi) {
      CF_OBS_COUNT_HOT("net.latency.pair_memo.hits", 1);
      return ways[w];
    }
  }
  CF_OBS_COUNT_HOT("net.latency.pair_memo.misses", 1);
  PairEntry& e = ways[rr_[set]];
  rr_[set] = static_cast<std::uint8_t>((rr_[set] + 1) % kPairCacheWays);
  e.lo = lo;
  e.hi = hi;
  e.bias = pair_bias_uncached(lo, hi);
  e.d_km = -1.0;  // distance half belongs to the evicted pair
  return e;
}

double LatencyModel::pair_bias(NodeId a, NodeId b) const {
  return find_line(std::min(a, b), std::max(a, b)).bias;
}

const LatencyModel::PairEntry& LatencyModel::pair_entry(
    const Endpoint& a, const Endpoint& b) const {
  // Normalize to (lo, hi) id order. haversine_km is bit-identically
  // symmetric (the delta terms are squared, the cos product commutes), so
  // the stored distance serves queries in either argument order.
  const bool a_is_lo = a.id <= b.id;
  const Endpoint& lo_ep = a_is_lo ? a : b;
  const Endpoint& hi_ep = a_is_lo ? b : a;
  PairEntry& e = find_line(lo_ep.id, hi_ep.id);
  if (e.d_km < 0.0 || !(e.lo_pos == lo_ep.position) ||
      !(e.hi_pos == hi_ep.position)) {
    e.lo_pos = lo_ep.position;
    e.hi_pos = hi_ep.position;
    e.d_km = haversine_km(lo_ep.position, endpoint_cos_lat(lo_ep),
                          hi_ep.position, endpoint_cos_lat(hi_ep));
  }
  return e;
}

TimeMs LatencyModel::route_from_km(double d_km) const {
  const double fiber = d_km * params_.fiber_ms_per_km * params_.route_inflation;
  const double hops = params_.hops_base + params_.hops_per_1000km * d_km / 1000.0;
  return fiber + hops * params_.per_hop_ms;
}

TimeMs LatencyModel::route_ms(const Endpoint& a, const Endpoint& b) const {
  return route_from_km(pair_entry(a, b).d_km);
}

TimeMs LatencyModel::min_route_ms() const { return route_from_km(0.0); }

TimeMs LatencyModel::expected_one_way_ms(const Endpoint& a,
                                         const Endpoint& b) const {
  if (a.id == b.id) return 0.1;  // loopback-ish floor
  // The per-pair route bias applies to the backbone path only — a host's
  // access (last-mile) delay is a property of the host, not the route, and
  // must not be scaled away by picking a lucky peer.
  const PairEntry& e = pair_entry(a, b);
  return route_from_km(e.d_km) * e.bias + a.last_mile_ms + b.last_mile_ms;
}

TimeMs LatencyModel::expected_one_way_ms(const Endpoint& a, const Endpoint& b,
                                         double d_km) const {
  if (a.id == b.id) return 0.1;
  const bool a_is_lo = a.id <= b.id;
  const Endpoint& lo_ep = a_is_lo ? a : b;
  const Endpoint& hi_ep = a_is_lo ? b : a;
  PairEntry& e = find_line(lo_ep.id, hi_ep.id);
  if (e.d_km < 0.0 || !(e.lo_pos == lo_ep.position) ||
      !(e.hi_pos == hi_ep.position)) {
    e.lo_pos = lo_ep.position;
    e.hi_pos = hi_ep.position;
    e.d_km = d_km;
  }
  // On a fresh hit the caller's distance must agree with the memoized one —
  // both are the exact haversine for these positions.
  CF_DCHECK(e.d_km == d_km);
  return route_from_km(e.d_km) * e.bias + a.last_mile_ms + b.last_mile_ms;
}

double LatencyModel::loss_probability(const Endpoint& a,
                                      const Endpoint& b) const {
  if (a.id == b.id) return 0.0;
  const PairEntry& e = pair_entry(a, b);
  const double rate = (params_.base_loss +
                       params_.loss_per_1000km * e.d_km / 1000.0) *
                      e.bias;
  return std::min(params_.loss_cap, std::max(0.0, rate));
}

TimeMs LatencyModel::sample_one_way_ms(const Endpoint& a, const Endpoint& b,
                                       util::Rng& rng) const {
  CF_OBS_COUNT_HOT("net.latency.samples", 1);
  if (a.id == b.id) return 0.1;
  const PairEntry& e = pair_entry(a, b);
  const double route = route_from_km(e.d_km) * e.bias *
                       rng.lognormal(0.0, params_.jitter_sigma);
  const TimeMs sample = route + a.last_mile_ms + b.last_mile_ms;
  CF_OBS_HIST_HOT("net.latency.one_way_ms", sample);
  return sample;
}

}  // namespace cloudfog::net
