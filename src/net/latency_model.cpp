#include "net/latency_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace cloudfog::net {

LatencyParams LatencyParams::simulation_profile(std::uint64_t seed) {
  // Calibrated against the coverage numbers of Choy et al. (the paper's
  // reference measurement): one-way latency to the nearest of a handful of
  // datacenters has a median of tens of ms with a heavy tail, so a 110 ms
  // RTT requirement still leaves a substantial uncovered fraction.
  LatencyParams p;
  p.route_inflation = 2.2;
  p.per_hop_ms = 0.5;
  p.hops_base = 6.0;
  p.hops_per_1000km = 4.0;
  p.pair_bias_sigma = 0.55;
  p.jitter_sigma = 0.10;
  p.seed = seed;
  return p;
}

LatencyParams LatencyParams::planetlab_profile(std::uint64_t seed) {
  LatencyParams p;
  p.base_loss = 0.003;
  p.loss_per_1000km = 0.004;
  p.route_inflation = 2.5;
  p.per_hop_ms = 0.6;
  p.hops_base = 7.0;
  p.hops_per_1000km = 4.0;
  p.pair_bias_sigma = 0.60;
  p.jitter_sigma = 0.20;
  p.seed = seed;
  return p;
}

double LatencyModel::pair_bias(NodeId a, NodeId b) const {
  // Deterministic lognormal(0, sigma) derived from (seed, unordered pair).
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  std::uint64_t state = params_.seed ^ (lo << 32) ^ hi ^ 0xa5a5a5a5deadbeefull;
  const std::uint64_t r1 = util::splitmix64(state);
  const std::uint64_t r2 = util::splitmix64(state);
  // Box–Muller from two uniform doubles.
  const double u1 =
      (static_cast<double>(r1 >> 11) + 0.5) * 0x1.0p-53;  // (0, 1)
  const double u2 = static_cast<double>(r2 >> 11) * 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979 * u2);
  return std::exp(params_.pair_bias_sigma * z);
}

TimeMs LatencyModel::route_ms(const Endpoint& a, const Endpoint& b) const {
  const double d_km = haversine_km(a.position, b.position);
  const double fiber = d_km * params_.fiber_ms_per_km * params_.route_inflation;
  const double hops = params_.hops_base + params_.hops_per_1000km * d_km / 1000.0;
  return fiber + hops * params_.per_hop_ms;
}

TimeMs LatencyModel::expected_one_way_ms(const Endpoint& a,
                                         const Endpoint& b) const {
  if (a.id == b.id) return 0.1;  // loopback-ish floor
  // The per-pair route bias applies to the backbone path only — a host's
  // access (last-mile) delay is a property of the host, not the route, and
  // must not be scaled away by picking a lucky peer.
  return route_ms(a, b) * pair_bias(a.id, b.id) + a.last_mile_ms + b.last_mile_ms;
}

double LatencyModel::loss_probability(const Endpoint& a,
                                      const Endpoint& b) const {
  if (a.id == b.id) return 0.0;
  const double d_km = haversine_km(a.position, b.position);
  const double rate = (params_.base_loss +
                       params_.loss_per_1000km * d_km / 1000.0) *
                      pair_bias(a.id, b.id);
  return std::min(params_.loss_cap, std::max(0.0, rate));
}

TimeMs LatencyModel::sample_one_way_ms(const Endpoint& a, const Endpoint& b,
                                       util::Rng& rng) const {
  CF_OBS_COUNT("net.latency.samples", 1);
  if (a.id == b.id) return 0.1;
  const double route = route_ms(a, b) * pair_bias(a.id, b.id) *
                       rng.lognormal(0.0, params_.jitter_sigma);
  const TimeMs sample = route + a.last_mile_ms + b.last_mile_ms;
  CF_OBS_HIST("net.latency.one_way_ms", sample);
  return sample;
}

}  // namespace cloudfog::net
