// Latency traces: dense matrices of measured pairwise one-way latencies.
//
// The paper drives its PeerSim experiments with a latency trace collected on
// PlanetLab. We reproduce that workflow: a trace can be *generated* by
// sampling the geographic latency model over a topology (playing the role of
// the measurement campaign), saved to disk, loaded back, and used as the
// latency source for a simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/topology.h"
#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::net {

/// Dense symmetric matrix of one-way latencies between `size()` hosts.
class LatencyTrace {
 public:
  LatencyTrace() = default;
  explicit LatencyTrace(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const { return n_; }

  TimeMs one_way_ms(NodeId a, NodeId b) const;
  void set_one_way_ms(NodeId a, NodeId b, TimeMs value);  // sets both directions

  /// Measures every pair of `topology` once through the latency model with
  /// per-measurement jitter — the analogue of one ping campaign.
  static LatencyTrace measure(const Topology& topology, util::Rng& rng);

  /// Text round-trip: header line "cloudfog-latency-trace v1 <n>", then one
  /// row per line (upper triangle including diagonal).
  void save(std::ostream& os) const;
  static LatencyTrace load(std::istream& is);

  void save_file(const std::string& path) const;
  static LatencyTrace load_file(const std::string& path);

 private:
  std::size_t index(NodeId a, NodeId b) const;

  std::size_t n_ = 0;
  std::vector<TimeMs> data_;
};

}  // namespace cloudfog::net
