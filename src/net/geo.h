// Geographic primitives: WGS-84 points and great-circle distance.
//
// The paper's experiments place 10,000 simulated players (PeerSim) and 750
// testbed hosts (PlanetLab) across the continental US; both our profiles
// sample host locations from real US metro coordinates, so distances — and
// hence propagation latencies — have realistic magnitudes.
#pragma once

#include <string>
#include <vector>

namespace cloudfog::net {

/// Mean Earth radius and degree→radian factor used by haversine_km —
/// exported so spatial indexes can derive distance bounds consistent with
/// the distances the model computes.
inline constexpr double kEarthRadiusKm = 6371.0;
inline constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

/// A point on the globe, degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const GeoPoint&) const = default;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// cos(latitude) of `p` — the only per-point term of haversine_km worth
/// precomputing (the delta terms depend on both points). Hosts compute it
/// once at topology build time; the value is bit-identical to what
/// haversine_km(a, b) derives internally, so feeding it back through the
/// overload below changes nothing but speed.
double cos_lat(const GeoPoint& p);

/// haversine_km with both cos(latitude) terms precomputed (see cos_lat).
/// Bit-identical to the two-argument overload by construction: the delta
/// terms are still computed from the degree differences, because
/// (b - a) * kDegToRad and b * kDegToRad - a * kDegToRad round differently.
double haversine_km(const GeoPoint& a, double cos_lat_a, const GeoPoint& b,
                    double cos_lat_b);

/// A US metro area used for population-weighted host placement.
struct Metro {
  std::string name;
  GeoPoint center;
  double population_millions;  // sampling weight
};

/// Built-in table of major continental-US metros (population-weighted).
const std::vector<Metro>& us_metros();

/// Real-world cloud datacenter hub sites, in deployment-priority order.
/// Unlike metros, commercial cloud regions sit in datacenter corridors
/// (Ashburn, The Dalles, Council Bluffs, ...), not downtown population
/// centers — which is why nearest-datacenter latencies are nontrivial for
/// most of the population (the paper's Choy-et-al. motivation).
const std::vector<Metro>& us_datacenter_sites();

/// Coordinates of the two PlanetLab datacenter hosts named in the paper.
GeoPoint princeton_coords();  // 128.112.139.43, Princeton University
GeoPoint ucla_coords();       // 131.179.150.72, UCLA

}  // namespace cloudfog::net
