#include "net/geo.h"

#include <cmath>

namespace cloudfog::net {

double cos_lat(const GeoPoint& p) { return std::cos(p.lat_deg * kDegToRad); }

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  return haversine_km(a, cos_lat(a), b, cos_lat(b));
}

double haversine_km(const GeoPoint& a, double cos_lat_a, const GeoPoint& b,
                    double cos_lat_b) {
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + cos_lat_a * cos_lat_b * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

const std::vector<Metro>& us_metros() {
  // Top continental-US metro areas; weights are approximate metro
  // populations (millions) used only as relative sampling weights.
  static const std::vector<Metro> kMetros = {
      {"New York, NY", {40.7128, -74.0060}, 19.8},
      {"Los Angeles, CA", {34.0522, -118.2437}, 13.2},
      {"Chicago, IL", {41.8781, -87.6298}, 9.5},
      {"Dallas, TX", {32.7767, -96.7970}, 7.6},
      {"Houston, TX", {29.7604, -95.3698}, 7.1},
      {"Washington, DC", {38.9072, -77.0369}, 6.3},
      {"Philadelphia, PA", {39.9526, -75.1652}, 6.2},
      {"Miami, FL", {25.7617, -80.1918}, 6.1},
      {"Atlanta, GA", {33.7490, -84.3880}, 6.0},
      {"Boston, MA", {42.3601, -71.0589}, 4.9},
      {"Phoenix, AZ", {33.4484, -112.0740}, 4.8},
      {"San Francisco, CA", {37.7749, -122.4194}, 4.7},
      {"Riverside, CA", {33.9806, -117.3755}, 4.6},
      {"Detroit, MI", {42.3314, -83.0458}, 4.3},
      {"Seattle, WA", {47.6062, -122.3321}, 4.0},
      {"Minneapolis, MN", {44.9778, -93.2650}, 3.7},
      {"San Diego, CA", {32.7157, -117.1611}, 3.3},
      {"Tampa, FL", {27.9506, -82.4572}, 3.2},
      {"Denver, CO", {39.7392, -104.9903}, 3.0},
      {"St. Louis, MO", {38.6270, -90.1994}, 2.8},
      {"Baltimore, MD", {39.2904, -76.6122}, 2.8},
      {"Charlotte, NC", {35.2271, -80.8431}, 2.7},
      {"Orlando, FL", {28.5383, -81.3792}, 2.6},
      {"San Antonio, TX", {29.4241, -98.4936}, 2.6},
      {"Portland, OR", {45.5051, -122.6750}, 2.5},
      {"Sacramento, CA", {38.5816, -121.4944}, 2.4},
      {"Pittsburgh, PA", {40.4406, -79.9959}, 2.3},
      {"Las Vegas, NV", {36.1699, -115.1398}, 2.3},
      {"Austin, TX", {30.2672, -97.7431}, 2.3},
      {"Cincinnati, OH", {39.1031, -84.5120}, 2.2},
      {"Kansas City, MO", {39.0997, -94.5786}, 2.2},
      {"Columbus, OH", {39.9612, -82.9988}, 2.1},
      {"Indianapolis, IN", {39.7684, -86.1581}, 2.1},
      {"Cleveland, OH", {41.4993, -81.6944}, 2.0},
      {"Nashville, TN", {36.1627, -86.7816}, 2.0},
      {"San Jose, CA", {37.3382, -121.8863}, 1.9},
      {"Virginia Beach, VA", {36.8529, -75.9780}, 1.8},
      {"Providence, RI", {41.8240, -71.4128}, 1.7},
      {"Milwaukee, WI", {43.0389, -87.9065}, 1.6},
      {"Jacksonville, FL", {30.3322, -81.6557}, 1.6},
      {"Oklahoma City, OK", {35.4676, -97.5164}, 1.4},
      {"Raleigh, NC", {35.7796, -78.6382}, 1.4},
      {"Memphis, TN", {35.1495, -90.0490}, 1.3},
      {"Richmond, VA", {37.5407, -77.4360}, 1.3},
      {"New Orleans, LA", {29.9511, -90.0715}, 1.3},
      {"Louisville, KY", {38.2527, -85.7585}, 1.3},
      {"Salt Lake City, UT", {40.7608, -111.8910}, 1.2},
      {"Hartford, CT", {41.7658, -72.6734}, 1.2},
      {"Buffalo, NY", {42.8864, -78.8784}, 1.1},
      {"Birmingham, AL", {33.5186, -86.8104}, 1.1},
      {"Rochester, NY", {43.1566, -77.6088}, 1.1},
      {"Grand Rapids, MI", {42.9634, -85.6681}, 1.1},
      {"Tucson, AZ", {32.2226, -110.9747}, 1.0},
      {"Tulsa, OK", {36.1540, -95.9928}, 1.0},
      {"Fresno, CA", {36.7378, -119.7871}, 1.0},
      {"Omaha, NE", {41.2565, -95.9345}, 0.9},
      {"Albuquerque, NM", {35.0844, -106.6504}, 0.9},
      {"Albany, NY", {42.6526, -73.7562}, 0.9},
      {"Boise, ID", {43.6150, -116.2023}, 0.8},
      {"Des Moines, IA", {41.5868, -93.6250}, 0.7},
  };
  return kMetros;
}

const std::vector<Metro>& us_datacenter_sites() {
  // Deployment-priority-ordered hub sites; the weight field is unused for
  // datacenters (they are taken in order).
  static const std::vector<Metro> kSites = {
      {"Ashburn, VA", {39.0438, -77.4874}, 0},
      {"The Dalles, OR", {45.5946, -121.1787}, 0},
      {"Dallas, TX", {32.8, -96.9}, 0},
      {"Council Bluffs, IA", {41.2619, -95.8608}, 0},
      {"Atlanta, GA", {33.75, -84.39}, 0},
      {"San Jose, CA", {37.24, -121.78}, 0},
      {"Chicago, IL", {41.85, -88.0}, 0},
      {"Phoenix, AZ", {33.45, -112.07}, 0},
      {"Columbus, OH", {39.96, -83.0}, 0},
      {"Salt Lake City, UT", {40.77, -111.89}, 0},
      {"Miami, FL", {25.78, -80.19}, 0},
      {"Seattle, WA", {47.45, -122.3}, 0},
      {"Denver, CO", {39.74, -104.98}, 0},
      {"Newark, NJ", {40.73, -74.17}, 0},
      {"Los Angeles, CA", {34.05, -118.24}, 0},
      {"Kansas City, MO", {39.1, -94.58}, 0},
      {"Minneapolis, MN", {44.98, -93.26}, 0},
      {"Houston, TX", {29.76, -95.37}, 0},
      {"Boston, MA", {42.36, -71.06}, 0},
      {"Charlotte, NC", {35.23, -80.84}, 0},
      {"Las Vegas, NV", {36.17, -115.14}, 0},
      {"St. Louis, MO", {38.63, -90.2}, 0},
      {"Nashville, TN", {36.16, -86.78}, 0},
      {"Portland, OR", {45.51, -122.68}, 0},
      {"Albany, NY", {42.65, -73.76}, 0},
  };
  return kSites;
}

GeoPoint princeton_coords() { return {40.3573, -74.6672}; }

GeoPoint ucla_coords() { return {34.0689, -118.4452}; }

}  // namespace cloudfog::net
