#include "net/uplink.h"

#include <limits>
#include <vector>

#include "util/check.h"

namespace cloudfog::net {

FairShareUplink::FairShareUplink(sim::Simulator& sim, Kbps capacity_kbps)
    : sim_(sim), capacity_(capacity_kbps), last_update_(sim.now()) {
  CF_CHECK_MSG(capacity_kbps > 0.0, "uplink capacity must be positive");
}

FairShareUplink::~FairShareUplink() {
  if (pending_event_ != sim::kInvalidEvent) sim_.cancel(pending_event_);
}

Kbps FairShareUplink::current_share() const {
  return flows_.empty() ? capacity_
                        : capacity_ / static_cast<double>(flows_.size());
}

void FairShareUplink::advance() {
  const TimeMs now = sim_.now();
  CF_DCHECK(now >= last_update_);
  if (now == last_update_ || flows_.empty()) {
    last_update_ = now;
    return;
  }
  const Kbps share = capacity_ / static_cast<double>(flows_.size());
  for (auto& [id, flow] : flows_) {
    const Kbit progressed = share * (now - last_update_) / 1000.0;
    // Record the exact fluid amount delivered when the deadline passed.
    if (!flow.deadline_recorded && flow.deadline > 0.0 && flow.deadline <= now) {
      const TimeMs effective = std::max(flow.deadline, last_update_);
      const Kbit at_deadline = share * (effective - last_update_) / 1000.0;
      flow.delivered_by_deadline =
          std::min(flow.size, flow.size - flow.remaining + at_deadline);
      flow.deadline_recorded = true;
    }
    flow.remaining = std::max(0.0, flow.remaining - progressed);
  }
  last_update_ = now;
}

void FairShareUplink::reschedule() {
  if (pending_event_ != sim::kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = sim::kInvalidEvent;
  }
  if (flows_.empty()) return;
  Kbit min_remaining = std::numeric_limits<Kbit>::max();
  for (const auto& [id, flow] : flows_)
    min_remaining = std::min(min_remaining, flow.remaining);
  const Kbps share = capacity_ / static_cast<double>(flows_.size());
  const TimeMs eta = min_remaining / share * 1000.0;
  pending_event_ = sim_.schedule_after(eta, [this] {
    pending_event_ = sim::kInvalidEvent;
    advance();
    complete_finished();
    reschedule();
  });
}

void FairShareUplink::complete_finished() {
  // Collect first, then fire: callbacks may start new flows on this uplink.
  std::vector<std::pair<FlowId, Flow>> done;
  constexpr Kbit kEpsilon = 1e-9;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kEpsilon) {
      done.emplace_back(it->first, std::move(it->second));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [id, flow] : done) {
    FlowResult result;
    result.start = flow.start;
    result.end = sim_.now();
    result.size = flow.size;
    result.delivered = flow.size;
    result.deadline = flow.deadline;
    if (flow.deadline_recorded) {
      result.delivered_by_deadline = flow.delivered_by_deadline;
    } else {
      // Flow finished before its deadline (or has none): everything on time.
      result.delivered_by_deadline = flow.size;
    }
    total_delivered_ += flow.size;
    if (flow.on_complete) flow.on_complete(result);
  }
}

FairShareUplink::FlowId FairShareUplink::start_flow(Kbit size, TimeMs deadline,
                                                    CompletionFn on_complete) {
  CF_CHECK_MSG(size >= 0.0, "flow size must be non-negative");
  if (size == 0.0) {
    FlowResult result;
    result.start = result.end = sim_.now();
    result.deadline = deadline;
    if (on_complete) on_complete(result);
    return kInvalidFlow;
  }
  advance();
  const FlowId id = next_id_++;
  Flow flow;
  flow.start = sim_.now();
  flow.size = size;
  flow.remaining = size;
  flow.deadline = deadline;
  if (deadline > 0.0 && deadline <= sim_.now()) {
    // Deadline already missed at start: nothing can arrive on time.
    flow.deadline_recorded = true;
    flow.delivered_by_deadline = 0.0;
  }
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  reschedule();
  return id;
}

bool FairShareUplink::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance();
  // Re-find: advance() does not mutate the map structure, but be explicit.
  it = flows_.find(id);
  CF_DCHECK(it != flows_.end());
  Flow flow = std::move(it->second);
  flows_.erase(it);
  FlowResult result;
  result.start = flow.start;
  result.end = sim_.now();
  result.size = flow.size;
  result.delivered = flow.size - flow.remaining;
  result.deadline = flow.deadline;
  result.delivered_by_deadline =
      flow.deadline_recorded ? flow.delivered_by_deadline : result.delivered;
  result.cancelled = true;
  reschedule();
  if (flow.on_complete) flow.on_complete(result);
  return true;
}

}  // namespace cloudfog::net
