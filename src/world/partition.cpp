#include "world/partition.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::world {

double PartitionStats::imbalance() const {
  if (load.empty()) return 1.0;
  std::size_t total = 0, peak = 0;
  for (std::size_t l : load) {
    total += l;
    peak = std::max(peak, l);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(load.size());
  return static_cast<double>(peak) / mean;
}

std::size_t PartitionStats::max_load() const {
  std::size_t peak = 0;
  for (std::size_t l : load) peak = std::max(peak, l);
  return peak;
}

PartitionStats Partition::stats(const std::vector<Position>& avatars) const {
  PartitionStats out;
  out.load.assign(servers(), 0);
  for (const Position& p : avatars) {
    const std::size_t s = server_of(p);
    CF_CHECK_MSG(s < out.load.size(), "server index out of range");
    ++out.load[s];
  }
  return out;
}

GridPartition::GridPartition(const WorldConfig& config, std::size_t columns,
                             std::size_t rows)
    : config_(config), columns_(columns), rows_(rows) {
  CF_CHECK_MSG(columns >= 1 && rows >= 1, "grid must have cells");
}

std::size_t GridPartition::server_of(Position position) const {
  const double x = std::clamp(position.x, 0.0, config_.width);
  const double y = std::clamp(position.y, 0.0, config_.height);
  auto cx = static_cast<std::size_t>(x / config_.width *
                                     static_cast<double>(columns_));
  auto cy = static_cast<std::size_t>(y / config_.height *
                                     static_cast<double>(rows_));
  if (cx >= columns_) cx = columns_ - 1;
  if (cy >= rows_) cy = rows_ - 1;
  return cy * columns_ + cx;
}

KdPartition::KdPartition(const std::vector<Position>& avatars, int depth) {
  CF_CHECK_MSG(depth >= 0 && depth <= 20, "depth out of range");
  CF_CHECK_MSG(!avatars.empty(), "cannot partition an empty population");
  root_ = build(avatars, depth, /*split_on_x=*/true);
}

std::size_t KdPartition::servers() const { return leaves_; }

int KdPartition::build(std::vector<Position> points, int depth, bool split_on_x) {
  if (depth == 0) {
    Node leaf;
    leaf.leaf = true;
    leaf.server = leaves_++;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size()) - 1;
  }
  // Median split on the alternating axis (Bezerra et al.'s balancing rule).
  const std::size_t mid = points.size() / 2;
  std::nth_element(points.begin(),
                   points.begin() + static_cast<std::ptrdiff_t>(mid),
                   points.end(), [split_on_x](const Position& a, const Position& b) {
                     return split_on_x ? a.x < b.x : a.y < b.y;
                   });
  const double split =
      split_on_x ? points[mid].x : points[mid].y;
  std::vector<Position> left(points.begin(),
                             points.begin() + static_cast<std::ptrdiff_t>(mid));
  std::vector<Position> right(points.begin() + static_cast<std::ptrdiff_t>(mid),
                              points.end());
  // Degenerate guard: all points identical on this axis — still split the
  // index space so the leaf count stays 2^depth.
  if (left.empty()) {
    left.push_back(right.front());
  }
  const int left_child = build(std::move(left), depth - 1, !split_on_x);
  const int right_child = build(std::move(right), depth - 1, !split_on_x);
  Node inner;
  inner.split_on_x = split_on_x;
  inner.split = split;
  inner.left = left_child;
  inner.right = right_child;
  nodes_.push_back(inner);
  return static_cast<int>(nodes_.size()) - 1;
}

std::size_t KdPartition::server_of(Position position) const {
  int index = root_;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.leaf) return node.server;
    const double v = node.split_on_x ? position.x : position.y;
    index = v < node.split ? node.left : node.right;
  }
}

}  // namespace cloudfog::world
