// The cloud-side virtual world — the substrate behind the paper's
// "intensive computation of the new game state of the virtual world
// (including the new shape and position of objects and states of avatars)".
//
// A deliberately compact MMOG state machine:
//   * avatars live on a bounded 2D map divided into square regions;
//   * players submit actions (move / strike / emote) that are buffered and
//     applied at the next tick, the way MMOG servers batch input;
//   * each tick produces a TickDelta — exactly the "update information" the
//     cloud streams to supernodes, with per-region indexing so the interest
//     manager can filter it (world/interest.h) and a serialized size so the
//     update-feed bandwidth Lambda can be *measured* instead of assumed.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::world {

using AvatarId = std::uint32_t;
using RegionId = std::uint32_t;
inline constexpr AvatarId kInvalidAvatar = 0xffffffffu;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

struct Avatar {
  AvatarId id = kInvalidAvatar;
  Position position;
  double health = 100.0;
  bool alive = true;
};

enum class ActionType : std::uint8_t { kMove, kStrike, kEmote };

struct Action {
  AvatarId actor = kInvalidAvatar;
  ActionType type = ActionType::kMove;
  /// kMove: target direction (normalised internally). kStrike/kEmote: unused.
  double dx = 0.0;
  double dy = 0.0;
};

/// One avatar's state change within a tick.
struct AvatarDelta {
  AvatarId id = kInvalidAvatar;
  Position position;
  double health = 100.0;
  bool alive = true;
  RegionId region = 0;  // region of the *new* position
};

/// The update information of one tick.
struct TickDelta {
  std::uint64_t tick = 0;
  std::vector<AvatarDelta> changes;

  /// Serialized size in kilobits: a fixed header plus a compact per-change
  /// record (id + position + health + flags ~ 24 bytes).
  Kbit size_kbit() const;

  /// Changes restricted to a region set (used by the interest manager).
  std::vector<AvatarDelta> in_regions(const std::vector<bool>& subscribed) const;
};

struct WorldConfig {
  double width = 4'000.0;      // world units
  double height = 4'000.0;
  double region_size = 250.0;  // square regions
  double move_speed = 12.0;    // units per tick
  double strike_range = 30.0;
  double strike_damage = 15.0;
  double respawn_health = 100.0;
};

/// Deterministic, single-authority world state (the cloud's job).
class VirtualWorld {
 public:
  explicit VirtualWorld(WorldConfig config);

  // --- population ------------------------------------------------------------
  /// Spawns an avatar at a uniform random position.
  AvatarId spawn(util::Rng& rng);
  /// Spawns at an explicit position (clamped to the map).
  AvatarId spawn_at(Position position);
  void despawn(AvatarId id);
  bool exists(AvatarId id) const;
  const Avatar& avatar(AvatarId id) const;
  std::size_t population() const { return avatars_.size(); }

  // --- actions & ticks ---------------------------------------------------------
  /// Buffers an action for the next tick. Unknown actors are rejected.
  void submit(const Action& action);
  std::size_t pending_actions() const { return pending_.size(); }

  /// Applies all buffered actions, advances the world one tick and returns
  /// the delta (only avatars that actually changed appear in it). Struck
  /// avatars whose health reaches 0 respawn at a random position with full
  /// health (standard MMOG behaviour), drawing from `rng`.
  TickDelta tick(util::Rng& rng);
  std::uint64_t ticks() const { return tick_count_; }

  // --- regions ----------------------------------------------------------------
  RegionId region_of(Position position) const;
  std::size_t region_count() const { return regions_x_ * regions_y_; }
  std::size_t regions_x() const { return regions_x_; }
  std::size_t regions_y() const { return regions_y_; }
  /// All regions within `halo` regions (Chebyshev) of `center` — the
  /// interest set of a player whose avatar sits in `center`.
  std::vector<RegionId> neighborhood(RegionId center, int halo) const;

  const WorldConfig& config() const { return config_; }

 private:
  Position clamp(Position p) const;
  /// Nearest living avatar within strike range of `from`, excluding self.
  std::optional<AvatarId> strike_target(const Avatar& from) const;

  WorldConfig config_;
  std::size_t regions_x_;
  std::size_t regions_y_;
  AvatarId next_id_ = 1;
  std::uint64_t tick_count_ = 0;
  std::unordered_map<AvatarId, Avatar> avatars_;
  std::vector<Action> pending_;
};

}  // namespace cloudfog::world
