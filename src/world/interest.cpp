#include "world/interest.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::world {

InterestManager::InterestManager(const VirtualWorld& world, int halo)
    : world_(world), halo_(halo) {
  CF_CHECK_MSG(halo >= 0, "halo must be non-negative");
}

void InterestManager::track(NodeId supernode, AvatarId avatar) {
  CF_CHECK_MSG(world_.exists(avatar), "tracking unknown avatar");
  auto& list = tracked_[supernode];
  CF_CHECK_MSG(std::find(list.begin(), list.end(), avatar) == list.end(),
               "avatar already tracked by this supernode");
  list.push_back(avatar);
  rebuild(supernode);
}

void InterestManager::untrack(NodeId supernode, AvatarId avatar) {
  const auto it = tracked_.find(supernode);
  CF_CHECK_MSG(it != tracked_.end(), "unknown supernode");
  auto& list = it->second;
  const auto pos = std::find(list.begin(), list.end(), avatar);
  CF_CHECK_MSG(pos != list.end(), "avatar not tracked by this supernode");
  list.erase(pos);
  if (list.empty()) {
    tracked_.erase(it);
    subscriptions_.erase(supernode);
  } else {
    rebuild(supernode);
  }
}

void InterestManager::rebuild(NodeId supernode) {
  std::vector<bool> bits(world_.region_count(), false);
  for (AvatarId avatar : tracked_.at(supernode)) {
    if (!world_.exists(avatar)) continue;  // despawned since last refresh
    const RegionId center = world_.region_of(world_.avatar(avatar).position);
    for (RegionId r : world_.neighborhood(center, halo_)) bits[r] = true;
  }
  subscriptions_[supernode] = std::move(bits);
}

void InterestManager::refresh() {
  for (const auto& [supernode, avatars] : tracked_) rebuild(supernode);
}

const std::vector<bool>& InterestManager::subscription(NodeId supernode) const {
  const auto it = subscriptions_.find(supernode);
  CF_CHECK_MSG(it != subscriptions_.end(), "unknown supernode");
  return it->second;
}

std::size_t InterestManager::subscribed_regions(NodeId supernode) const {
  const auto& bits = subscription(supernode);
  return static_cast<std::size_t>(std::count(bits.begin(), bits.end(), true));
}

std::vector<AvatarDelta> InterestManager::update_for(
    NodeId supernode, const TickDelta& delta) const {
  return delta.in_regions(subscription(supernode));
}

InterestManager::FeedSizes InterestManager::feed_sizes(
    const TickDelta& delta) const {
  FeedSizes sizes;
  const Kbit full = delta.size_kbit();
  for (const auto& [supernode, bits] : subscriptions_) {
    TickDelta filtered;
    filtered.tick = delta.tick;
    filtered.changes = delta.in_regions(bits);
    sizes.filtered_kbit += filtered.size_kbit();
    sizes.broadcast_kbit += full;
  }
  return sizes;
}

}  // namespace cloudfog::world
