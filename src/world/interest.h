// Area-of-interest update filtering — what makes the cloud->supernode
// update feed (the paper's Lambda) small.
//
// A supernode only needs the world state its players can see: each player
// avatar subscribes the supernode to the regions around its position (a
// Chebyshev halo). The cloud then sends each supernode only the per-tick
// delta entries falling in its subscribed regions, instead of broadcasting
// the full delta. This module maintains the subscriptions and measures the
// bandwidth both ways — grounding Lambda in mechanism instead of assumption.
#pragma once

#include <unordered_map>
#include <vector>

#include "util/types.h"
#include "world/virtual_world.h"

namespace cloudfog::world {

class InterestManager {
 public:
  /// `halo`: how many rings of neighbouring regions a player sees.
  InterestManager(const VirtualWorld& world, int halo = 1);

  /// (Re)registers a player avatar served by `supernode`; its subscription
  /// follows the avatar's current region.
  void track(NodeId supernode, AvatarId avatar);
  /// Removes the avatar (player left or moved to another supernode).
  void untrack(NodeId supernode, AvatarId avatar);

  /// Refreshes subscriptions from current avatar positions — call after
  /// each tick (players move).
  void refresh();

  /// Regions the supernode is subscribed to (bitset by region id).
  const std::vector<bool>& subscription(NodeId supernode) const;
  std::size_t subscribed_regions(NodeId supernode) const;

  /// The per-tick update for one supernode: the delta filtered to its
  /// subscription.
  std::vector<AvatarDelta> update_for(NodeId supernode,
                                      const TickDelta& delta) const;

  /// Update-feed sizes for one tick: filtered (sum over supernodes) vs the
  /// broadcast alternative (full delta to every supernode).
  struct FeedSizes {
    Kbit filtered_kbit = 0.0;
    Kbit broadcast_kbit = 0.0;
    double saving() const {
      return broadcast_kbit > 0.0 ? 1.0 - filtered_kbit / broadcast_kbit : 0.0;
    }
  };
  FeedSizes feed_sizes(const TickDelta& delta) const;

  std::size_t supernodes() const { return tracked_.size(); }

 private:
  void rebuild(NodeId supernode);

  const VirtualWorld& world_;
  int halo_;
  std::unordered_map<NodeId, std::vector<AvatarId>> tracked_;
  std::unordered_map<NodeId, std::vector<bool>> subscriptions_;
};

}  // namespace cloudfog::world
