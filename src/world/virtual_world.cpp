#include "world/virtual_world.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudfog::world {

Kbit TickDelta::size_kbit() const {
  // 16-byte header + 24 bytes per change record.
  const double bytes = 16.0 + 24.0 * static_cast<double>(changes.size());
  return bytes_to_kbit(bytes);
}

std::vector<AvatarDelta> TickDelta::in_regions(
    const std::vector<bool>& subscribed) const {
  std::vector<AvatarDelta> out;
  for (const AvatarDelta& c : changes) {
    if (c.region < subscribed.size() && subscribed[c.region]) out.push_back(c);
  }
  return out;
}

VirtualWorld::VirtualWorld(WorldConfig config) : config_(config) {
  CF_CHECK_MSG(config.width > 0.0 && config.height > 0.0, "map must be non-empty");
  CF_CHECK_MSG(config.region_size > 0.0, "region size must be positive");
  CF_CHECK_MSG(config.move_speed >= 0.0, "move speed must be non-negative");
  regions_x_ = static_cast<std::size_t>(
      std::ceil(config.width / config.region_size));
  regions_y_ = static_cast<std::size_t>(
      std::ceil(config.height / config.region_size));
  CF_CHECK_MSG(regions_x_ >= 1 && regions_y_ >= 1, "degenerate region grid");
}

Position VirtualWorld::clamp(Position p) const {
  p.x = std::clamp(p.x, 0.0, config_.width);
  p.y = std::clamp(p.y, 0.0, config_.height);
  return p;
}

AvatarId VirtualWorld::spawn(util::Rng& rng) {
  return spawn_at(Position{rng.uniform(0.0, config_.width),
                           rng.uniform(0.0, config_.height)});
}

AvatarId VirtualWorld::spawn_at(Position position) {
  Avatar a;
  a.id = next_id_++;
  a.position = clamp(position);
  a.health = config_.respawn_health;
  avatars_.emplace(a.id, a);
  return a.id;
}

void VirtualWorld::despawn(AvatarId id) {
  CF_CHECK_MSG(avatars_.erase(id) == 1, "despawning unknown avatar");
}

bool VirtualWorld::exists(AvatarId id) const { return avatars_.contains(id); }

const Avatar& VirtualWorld::avatar(AvatarId id) const {
  const auto it = avatars_.find(id);
  CF_CHECK_MSG(it != avatars_.end(), "unknown avatar");
  return it->second;
}

void VirtualWorld::submit(const Action& action) {
  CF_CHECK_MSG(avatars_.contains(action.actor), "action from unknown avatar");
  pending_.push_back(action);
}

RegionId VirtualWorld::region_of(Position position) const {
  const Position p = clamp(position);
  auto rx = static_cast<std::size_t>(p.x / config_.region_size);
  auto ry = static_cast<std::size_t>(p.y / config_.region_size);
  if (rx >= regions_x_) rx = regions_x_ - 1;
  if (ry >= regions_y_) ry = regions_y_ - 1;
  return static_cast<RegionId>(ry * regions_x_ + rx);
}

std::vector<RegionId> VirtualWorld::neighborhood(RegionId center, int halo) const {
  CF_CHECK_MSG(center < region_count(), "region out of range");
  CF_CHECK_MSG(halo >= 0, "halo must be non-negative");
  const auto cx = static_cast<long>(center % regions_x_);
  const auto cy = static_cast<long>(center / regions_x_);
  std::vector<RegionId> out;
  for (long dy = -halo; dy <= halo; ++dy) {
    for (long dx = -halo; dx <= halo; ++dx) {
      const long x = cx + dx;
      const long y = cy + dy;
      if (x < 0 || y < 0 || x >= static_cast<long>(regions_x_) ||
          y >= static_cast<long>(regions_y_)) {
        continue;
      }
      out.push_back(static_cast<RegionId>(y * static_cast<long>(regions_x_) + x));
    }
  }
  return out;
}

std::optional<AvatarId> VirtualWorld::strike_target(const Avatar& from) const {
  std::optional<AvatarId> best;
  double best_distance = config_.strike_range;
  for (const auto& [id, other] : avatars_) {
    if (id == from.id || !other.alive) continue;
    const double dx = other.position.x - from.position.x;
    const double dy = other.position.y - from.position.y;
    const double distance = std::sqrt(dx * dx + dy * dy);
    if (distance < best_distance ||
        (distance == best_distance && best.has_value() && id < *best)) {
      best_distance = distance;
      best = id;
    }
  }
  return best;
}

TickDelta VirtualWorld::tick(util::Rng& rng) {
  TickDelta delta;
  delta.tick = ++tick_count_;
  std::unordered_map<AvatarId, bool> changed;

  // Apply actions in submission order (the cloud's authoritative ordering).
  for (const Action& action : pending_) {
    const auto it = avatars_.find(action.actor);
    if (it == avatars_.end()) continue;  // actor despawned mid-tick
    Avatar& actor = it->second;
    switch (action.type) {
      case ActionType::kMove: {
        const double norm = std::sqrt(action.dx * action.dx +
                                      action.dy * action.dy);
        if (norm <= 0.0) break;
        actor.position = clamp(Position{
            actor.position.x + action.dx / norm * config_.move_speed,
            actor.position.y + action.dy / norm * config_.move_speed});
        changed[actor.id] = true;
        break;
      }
      case ActionType::kStrike: {
        const auto target = strike_target(actor);
        if (!target.has_value()) break;
        Avatar& victim = avatars_.at(*target);
        victim.health -= config_.strike_damage;
        changed[victim.id] = true;
        if (victim.health <= 0.0) {
          // Respawn with full health at a random position.
          victim.health = config_.respawn_health;
          victim.position = clamp(Position{rng.uniform(0.0, config_.width),
                                           rng.uniform(0.0, config_.height)});
        }
        break;
      }
      case ActionType::kEmote:
        // Cosmetic: visible to others, so it is part of the delta.
        changed[actor.id] = true;
        break;
    }
  }
  pending_.clear();

  delta.changes.reserve(changed.size());
  for (const auto& [id, was_changed] : changed) {
    const auto it = avatars_.find(id);
    if (it == avatars_.end()) continue;
    AvatarDelta d;
    d.id = id;
    d.position = it->second.position;
    d.health = it->second.health;
    d.alive = it->second.alive;
    d.region = region_of(it->second.position);
    delta.changes.push_back(d);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(delta.changes.begin(), delta.changes.end(),
            [](const AvatarDelta& a, const AvatarDelta& b) { return a.id < b.id; });
  return delta;
}

}  // namespace cloudfog::world
