// Avatar-to-server partitioning for the cloud's state computation — the
// kd-tree load balancing of Bezerra et al. (the paper's reference [12])
// against the naive static grid, reproduced as the cloud-side substrate's
// scaling mechanism.
//
// A KdPartition recursively splits the avatar population at coordinate
// medians (alternating axes) into 2^depth cells, one per state server, so
// every server handles ~the same number of avatars even when players
// cluster. A GridPartition splits the *map* uniformly instead, which
// clusters of players defeat.
#pragma once

#include <cstdint>
#include <vector>

#include "world/virtual_world.h"

namespace cloudfog::world {

/// Result of assigning avatars to servers.
struct PartitionStats {
  std::vector<std::size_t> load;  // avatars per server
  double imbalance() const;       // max load / mean load (1.0 = perfect)
  std::size_t max_load() const;
};

/// Interface: maps positions to state-server indices.
class Partition {
 public:
  virtual ~Partition() = default;
  virtual std::size_t servers() const = 0;
  virtual std::size_t server_of(Position position) const = 0;

  /// Loads for a concrete avatar population.
  PartitionStats stats(const std::vector<Position>& avatars) const;
};

/// Uniform map grid: `columns x rows` cells, one server each.
class GridPartition final : public Partition {
 public:
  GridPartition(const WorldConfig& config, std::size_t columns, std::size_t rows);
  std::size_t servers() const override { return columns_ * rows_; }
  std::size_t server_of(Position position) const override;

 private:
  WorldConfig config_;
  std::size_t columns_;
  std::size_t rows_;
};

/// kd-tree over the avatar population: 2^depth leaves, median splits.
/// Rebuild (re-run the constructor) to rebalance after the population moves.
class KdPartition final : public Partition {
 public:
  /// Builds from the avatar positions; `depth` >= 0 gives 2^depth servers.
  KdPartition(const std::vector<Position>& avatars, int depth);

  std::size_t servers() const override;
  std::size_t server_of(Position position) const override;

 private:
  struct Node {
    bool leaf = false;
    bool split_on_x = true;
    double split = 0.0;
    std::size_t server = 0;   // leaf only
    int left = -1, right = -1;  // indices into nodes_
  };

  int build(std::vector<Position> points, int depth, bool split_on_x);

  std::vector<Node> nodes_;
  int root_ = -1;
  std::size_t leaves_ = 0;
};

}  // namespace cloudfog::world
