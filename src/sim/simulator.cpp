#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::sim {

EventId Simulator::schedule_at(TimeMs when, Callback fn) {
  CF_CHECK_GE(when, now_);  // cannot schedule an event in the past
  CF_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  return push(when, std::move(fn), -1.0);
}

EventId Simulator::schedule_after(TimeMs delay, Callback fn) {
  CF_CHECK_GE(delay, 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_every(TimeMs first_delay, TimeMs period,
                                  Callback fn) {
  CF_CHECK_GE(first_delay, 0.0);
  CF_CHECK_GT(period, 0.0);
  CF_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  return push(now_ + first_delay, std::move(fn), period);
}

EventId Simulator::push(TimeMs when, Callback fn, TimeMs period) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    CF_CHECK_MSG(slots_.size() < std::numeric_limits<std::uint32_t>::max(),
                 "event slab exhausted (2^32 concurrent events)");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);  // s.fn is empty (cleared on release)
  s.period = period;
  s.cancelled = false;
  s.in_use = true;
  heap_push(HeapNode{when, next_seq_++, slot, s.generation});
  ++live_count_;
  // Hot path: resolve both instruments once per registry epoch instead of
  // paying two name lookups per scheduled event (see CachedCounter docs).
  // The simulator is single-threaded, which is what the caches require.
  if (obs::MetricsRegistry* cf_obs_r = obs::registry()) {
    thread_local obs::CachedCounter scheduled{"sim.events.scheduled"};
    thread_local obs::CachedGauge depth{"sim.queue.depth"};
    const std::uint64_t epoch = obs::registry_epoch();
    scheduled.add(cf_obs_r, epoch, 1);
    depth.set(cf_obs_r, epoch, static_cast<double>(live_count_));
  }
  return pack(slot, s.generation);
}

bool Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (generation == 0 || slot >= slots_.size()) {
    return false;  // kInvalidEvent or never a handle this simulator issued
  }
  Slot& s = slots_[slot];
  if (!s.in_use || s.generation != generation || s.cancelled) {
    return false;  // already fired, already cancelled, or slot recycled
  }
  s.cancelled = true;
  CF_INVARIANT(live_count_ > 0, "cancel of a live event implies pending > 0");
  --live_count_;
  ++dead_in_heap_;
  CF_OBS_COUNT_HOT("sim.events.cancelled", 1);
  if (obs::MetricsRegistry* cf_obs_r = obs::registry()) {
    thread_local obs::CachedGauge depth{"sim.queue.depth"};
    depth.set(cf_obs_r, obs::registry_epoch(),
              static_cast<double>(live_count_));
  }
  // Eager compaction: once tombstones outnumber live nodes, one O(n) sweep
  // reclaims their slots instead of letting every pop wade through them.
  // Deferred while a callback is on the stack — a self-cancelling periodic
  // callback would otherwise have its own slot released (destroying the
  // std::function mid-invocation) and recycled by a same-callback
  // schedule_*; fire_next services the purge once the callback returns.
  if (dead_in_heap_ * 2 > heap_.size()) {
    if (callback_depth_ > 0) {
      purge_pending_ = true;
    } else {
      purge_tombstones();
    }
  }
  return true;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // drop captured state promptly
  s.in_use = false;
  if (++s.generation == 0) {
    s.generation = 1;  // keep pack() != kInvalidEvent after a wrap
  }
  free_slots_.push_back(slot);
}

void Simulator::heap_push(const HeapNode& n) {
  std::size_t i = heap_.size();
  heap_.push_back(n);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!node_less(n, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = n;
}

void Simulator::sift_down(std::size_t i) {
  const HeapNode node = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (node_less(heap_[c], heap_[best])) best = c;
    }
    if (!node_less(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

Simulator::HeapNode Simulator::heap_pop() {
  const HeapNode top = heap_[0];
  const std::size_t n = heap_.size() - 1;  // size after the pop
  if (n == 0) {
    heap_.pop_back();
    return top;
  }
  // Bottom-up deletion: walk the root hole down the min-child path to a
  // leaf (4 comparisons per level, none against the displaced element),
  // then bubble the former last element up from that leaf — it was a leaf
  // itself, so it almost always stays within a level of the bottom.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = hole * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (node_less(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  const HeapNode last = heap_[n];
  std::size_t i = hole;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!node_less(last, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = last;
  heap_.pop_back();
  return top;
}

void Simulator::drop_dead_top() {
  const HeapNode n = heap_pop();
  const Slot& s = slots_[n.slot];
  if (s.in_use && s.generation == n.generation) {
    release_slot(n.slot);  // tombstoned by cancel(); reclaim the slot now
  }
  CF_INVARIANT(dead_in_heap_ > 0, "dead node popped but none accounted");
  --dead_in_heap_;
}

void Simulator::purge_tombstones() {
  std::size_t kept = 0;
  std::uint64_t purged = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const HeapNode n = heap_[i];
    const Slot& s = slots_[n.slot];
    if (s.in_use && s.generation == n.generation) {
      if (!s.cancelled) {
        heap_[kept++] = n;
        continue;
      }
      release_slot(n.slot);
    }
    ++purged;
  }
  heap_.resize(kept);
  // Re-establish the heap property bottom-up. Pop order depends only on the
  // (when, seq) total order, so compaction cannot perturb determinism.
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;) {
      sift_down(i);
    }
  }
  dead_in_heap_ = 0;
  CF_OBS_COUNT("sim.events.purged", purged);
}

bool Simulator::fire_next() {
  CF_CHECK_MSG(callback_depth_ == 0,
               "step()/run_until()/run_all() must not be re-entered from an "
               "event callback");
  while (!heap_.empty()) {
    const HeapNode n = heap_pop();
    Slot& s = slots_[n.slot];
    if (!s.in_use || s.generation != n.generation) {
      // Slot reclaimed while its node waited; just skip.
      CF_INVARIANT(dead_in_heap_ > 0, "dead node popped but none accounted");
      --dead_in_heap_;
      continue;
    }
    if (s.cancelled) {
      release_slot(n.slot);
      CF_INVARIANT(dead_in_heap_ > 0, "dead node popped but none accounted");
      --dead_in_heap_;
      continue;
    }
    // Trust boundary: the heap must hand events out in non-decreasing time
    // order, and a cancelled event must never reach its callback.
    CF_INVARIANT(n.when >= now_, "event timestamps must be monotone");
    CF_INVARIANT(!s.cancelled, "cancelled event must not fire");
    now_ = n.when;
    if (s.period >= 0.0) {
      CF_OBS_COUNT_HOT("sim.events.executed", 1);
      // Re-arm the periodic event under the same handle before running it so
      // the callback can cancel it. The slab (a deque) pins `s` even if the
      // callback schedules enough new events to grow it.
      heap_push(HeapNode{now_ + s.period, next_seq_++, n.slot, n.generation});
      ++executed_;
      CallbackScope scope(*this, kNoSlot);
      s.fn();
    } else {
      // Hide the slot before running: pending() excludes the executing
      // event and cancel() on its own handle returns false, matching the
      // erase-then-invoke order of the original map-based engine. The
      // callback runs in place (the deque pins it even if the callback
      // grows the slab); the scope reclaims the slot once it returns —
      // including via an exception, so a throwing callback cannot leak it.
      s.in_use = false;
      --live_count_;
      if (obs::MetricsRegistry* cf_obs_r = obs::registry()) {
        thread_local obs::CachedGauge depth{"sim.queue.depth"};
        depth.set(cf_obs_r, obs::registry_epoch(),
                  static_cast<double>(live_count_));
      }
      CF_OBS_COUNT_HOT("sim.events.executed", 1);
      ++executed_;
      CallbackScope scope(*this, n.slot);
      s.fn();
    }
    // Service a purge that a mid-callback cancel deferred. Re-checked
    // against the threshold: the callback may have scheduled enough new
    // events that compaction is no longer worth it.
    if (purge_pending_) {
      purge_pending_ = false;
      if (dead_in_heap_ * 2 > heap_.size()) purge_tombstones();
    }
    return true;
  }
  return false;
}

bool Simulator::step() {
  // Same re-entry guard as run_until(): a callback must not pump the loop
  // (fire_next re-checks, but the public boundary validates explicitly).
  CF_CHECK_MSG(callback_depth_ == 0,
               "step()/run_until()/run_all() must not be re-entered from an "
               "event callback");
  return fire_next();
}

void Simulator::run_until(TimeMs horizon) {
  CF_CHECK_GE(horizon, now_);  // horizon must not precede current time
  // Checked here as well as in fire_next: drop_dead_top() below releases
  // slots, which must never happen while a callback is executing.
  CF_CHECK_MSG(callback_depth_ == 0,
               "step()/run_until()/run_all() must not be re-entered from an "
               "event callback");
  RunScope run_scope(*this, horizon);
  for (;;) {
    // Peek through tombstones to find the next live event time.
    while (!heap_.empty() && !node_live(heap_[0])) {
      drop_dead_top();
    }
    if (heap_.empty() || heap_[0].when > horizon) break;
    fire_next();
  }
  now_ = std::max(now_, horizon);
}

void Simulator::run_before(TimeMs bound) {
  CF_CHECK_GE(bound, now_);  // bound must not precede current time
  CF_CHECK_MSG(callback_depth_ == 0,
               "step()/run_until()/run_all() must not be re-entered from an "
               "event callback");
  // The inline horizon is `bound` inclusive even though events at exactly
  // `bound` belong to the next window: a completion landing exactly on the
  // boundary was scheduled before any barrier-delivered message at the same
  // timestamp, so it would fire first anyway — completing it inline cannot
  // change the interleaving.
  RunScope run_scope(*this, bound);
  for (;;) {
    while (!heap_.empty() && !node_live(heap_[0])) {
      drop_dead_top();
    }
    if (heap_.empty() || heap_[0].when >= bound) break;
    fire_next();
  }
  now_ = std::max(now_, bound);
}

void Simulator::run_all() {
  CF_CHECK_MSG(callback_depth_ == 0,
               "step()/run_until()/run_all() must not be re-entered from an "
               "event callback");
  RunScope run_scope(*this, std::numeric_limits<TimeMs>::infinity());
  while (fire_next()) {
  }
}

}  // namespace cloudfog::sim
