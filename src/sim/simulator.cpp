#include "sim/simulator.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace cloudfog::sim {

EventId Simulator::push(TimeMs when, std::shared_ptr<Entry> entry) {
  const EventId id = next_id_++;
  live_[id] = entry;
  queue_.push(HeapItem{when, next_seq_++, id, std::move(entry)});
  CF_OBS_COUNT("sim.events.scheduled", 1);
  CF_OBS_GAUGE_SET("sim.queue.depth", live_.size());
  return id;
}

EventId Simulator::schedule_at(TimeMs when, Callback fn) {
  CF_CHECK_GE(when, now_);  // cannot schedule an event in the past
  CF_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  auto entry = std::make_shared<Entry>();
  entry->fn = std::move(fn);
  return push(when, std::move(entry));
}

EventId Simulator::schedule_after(TimeMs delay, Callback fn) {
  CF_CHECK_GE(delay, 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_every(TimeMs first_delay, TimeMs period, Callback fn) {
  CF_CHECK_GE(first_delay, 0.0);
  CF_CHECK_GT(period, 0.0);
  CF_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  auto entry = std::make_shared<Entry>();
  entry->fn = std::move(fn);
  entry->period = period;
  return push(now_ + first_delay, std::move(entry));
}

bool Simulator::cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  auto entry = it->second.lock();
  live_.erase(it);
  if (!entry || entry->cancelled) return false;
  entry->cancelled = true;
  CF_OBS_COUNT("sim.events.cancelled", 1);
  return true;
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    HeapItem item = queue_.top();
    queue_.pop();
    if (item.entry->cancelled) continue;  // tombstone
    // Trust boundary: the heap must hand events out in non-decreasing time
    // order, and a cancelled event must never reach its callback.
    CF_INVARIANT(item.when >= now_, "event timestamps must be monotone");
    CF_INVARIANT(!item.entry->cancelled, "cancelled event must not fire");
    now_ = item.when;
    CF_OBS_COUNT("sim.events.executed", 1);
    if (item.entry->period >= 0.0) {
      // Re-arm the periodic event under the same handle before running it so
      // the callback can cancel it.
      queue_.push(HeapItem{now_ + item.entry->period, next_seq_++, item.id,
                           item.entry});
      ++executed_;
      item.entry->fn();
    } else {
      live_.erase(item.id);
      CF_OBS_GAUGE_SET("sim.queue.depth", live_.size());
      ++executed_;
      item.entry->fn();
    }
    return true;
  }
  return false;
}

bool Simulator::step() { return fire_next(); }

void Simulator::run_until(TimeMs horizon) {
  CF_CHECK_GE(horizon, now_);  // horizon must not precede current time
  while (!queue_.empty()) {
    // Peek through tombstones to find the next live event time.
    while (!queue_.empty() && queue_.top().entry->cancelled) queue_.pop();
    if (queue_.empty()) break;
    if (queue_.top().when > horizon) break;
    fire_next();
  }
  now_ = std::max(now_, horizon);
}

void Simulator::run_all() {
  while (fire_next()) {
  }
}

}  // namespace cloudfog::sim
