// Deterministic discrete-event simulation engine — the substrate standing in
// for the paper's PeerSim harness.
//
// Properties the experiments rely on:
//   * Events at equal timestamps fire in scheduling order (a monotone
//     sequence number breaks ties), so runs are deterministic.
//   * Events can be cancelled by handle (used by churn: a node leaving
//     cancels its pending streaming events).
//   * Periodic events reschedule themselves until cancelled or the horizon
//     is reached.
//
// Engine layout (DESIGN.md §8): event records live in a slab (a stable
// deque indexed by 32-bit slot number) recycled through a free list, so the
// steady-state schedule/fire cycle performs zero heap allocations. Handles
// are generation-tagged — EventId packs (generation << 32 | slot) — so a
// stale handle for a recycled slot is rejected in O(1) without any lookup
// table. The pending set is an intrusive 4-ary min-heap of 24-byte nodes
// keyed on (when, seq); cancellation tombstones a slot and the heap is
// purged eagerly once tombstones outnumber live nodes. While a callback is
// executing the purge is deferred to fire_next's tail: compacting
// mid-callback would release the executing slot (destroying the running
// callback and letting a same-callback schedule_* recycle its storage).
// Callbacks may throw — the slot is still reclaimed — but must not
// re-enter step()/run_until()/run_all() (checked).
//
// Callbacks are util::small_function (DESIGN.md §14): captures live inline
// in the slab record and a capture larger than kCallbackCapacity is a
// compile error at the scheduling site, so the schedule/fire cycle can
// never allocate — not just "doesn't in steady state".
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "util/small_function.h"
#include "util/types.h"

namespace cloudfog::sim {

/// Opaque handle identifying a scheduled event. Packs a slab slot index in
/// the low 32 bits and that slot's generation (>= 1) in the high 32 bits;
/// a slot's generation bumps every time it is recycled, so handles to dead
/// events stay invalid. (A single slot would need 2^32 recycles to see a
/// generation repeat — beyond any plausible run.)
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Inline capture budget for event callbacks. Sized for the largest hot
/// capture in the tree (the sender's per-packet completion closure); grow it
/// deliberately if a new callsite trips the static_assert — every slab slot
/// carries this many bytes.
inline constexpr std::size_t kCallbackCapacity = 96;

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Callback = util::small_function<void(), kCallbackCapacity>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in milliseconds.
  TimeMs now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now()). Returns a handle.
  EventId schedule_at(TimeMs when, Callback fn);

  /// Schedules `fn` after `delay` milliseconds (>= 0).
  EventId schedule_after(TimeMs delay, Callback fn);

  /// Schedules `fn` every `period` ms starting at now() + `first_delay`.
  /// The callback keeps firing until the returned handle is cancelled.
  EventId schedule_every(TimeMs first_delay, TimeMs period, Callback fn);

  /// Cancels a pending event. Returns true if the event existed and was
  /// still pending. Cancelling an already-fired or invalid handle is a
  /// harmless no-op returning false.
  bool cancel(EventId id);

  /// Runs a single event. Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue empties or simulated time would exceed
  /// `horizon`; the clock is left at min(horizon, last event time).
  void run_until(TimeMs horizon);

  /// Conservative-window variant of run_until: fires only events with
  /// `when` strictly BEFORE `bound` and leaves the clock exactly at
  /// `bound`. An event landing exactly on `bound` belongs to the *next*
  /// window — the half-open [start, bound) advance the space-parallel
  /// shard runner (src/shard) builds its barrier protocol on: a message
  /// arriving exactly at a window boundary is executed after the barrier,
  /// never squeezed into the closing window.
  void run_before(TimeMs bound);

  /// Runs until the queue is empty.
  void run_all();

  /// Conservative O(1) peek at the earliest pending event time: +infinity
  /// when the heap is empty, otherwise the root's timestamp — which may be
  /// a cancelled tombstone, so the returned time is a *lower bound* on the
  /// next live event. That direction is the safe one for the burst
  /// transmission trains (DESIGN.md §14): a train breaks whenever
  /// next_event_time() <= its in-flight completion, so a stale tombstone
  /// can only break a train early, never let it run past a live event.
  /// Never releases slots, so it is safe to call from inside a callback
  /// (unlike the run_* peek loop, which reclaims dead tops as it goes).
  TimeMs next_event_time() const {
    return heap_.empty() ? std::numeric_limits<TimeMs>::infinity()
                         : heap_[0].when;
  }

  /// Upper bound on the timestamp of any event the currently-executing
  /// run_*() call may still fire: the bound argument during run_until() and
  /// run_before(), +infinity during run_all(), and -infinity when no run
  /// loop is active (including bare step()). Burst transmission trains
  /// (DESIGN.md §14) consult this before completing a packet inline at a
  /// future timestamp: beyond the run horizon the heap says nothing about
  /// future inputs — a direct submit() from driver code between run calls,
  /// or a cross-shard message delivered at the next window barrier — so
  /// the train must arm a real event there and let the heap decide the
  /// interleaving.
  TimeMs run_horizon() const { return run_horizon_; }

  /// Number of live pending events (cancelled tombstones excluded; a
  /// periodic event counts once).
  std::size_t pending() const { return live_count_; }

  /// Total events executed since construction (tombstones excluded).
  std::uint64_t executed() const { return executed_; }

 private:
  /// One slab record. `generation` survives recycling (it is what makes
  /// stale handles detectable) — everything else is re-initialised when the
  /// slot is acquired.
  struct Slot {
    Callback fn;
    TimeMs period = -1.0;  // >= 0 means periodic
    std::uint32_t generation = 1;
    bool cancelled = false;
    bool in_use = false;
  };

  /// 24-byte heap node; the callback stays in the slab.
  struct HeapNode {
    TimeMs when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static EventId pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static bool node_less(const HeapNode& a, const HeapNode& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  bool node_live(const HeapNode& n) const {
    const Slot& s = slots_[n.slot];
    return s.in_use && s.generation == n.generation && !s.cancelled;
  }

  /// Sentinel slot index; push() caps the slab below 2^32 slots, so no real
  /// slot ever carries this value.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// RAII around a running callback. Tracks callback depth so cancel()
  /// defers tombstone purges while any callback executes (a purge would
  /// release_slot() the executing slot, destroying the callback that
  /// is mid-invocation), and — when given a slot — releases it even if the
  /// callback throws, so one-shot slots cannot leak on unwind.
  struct CallbackScope {
    CallbackScope(Simulator& sim, std::uint32_t slot_to_release)
        : sim_(sim), slot_(slot_to_release) {
      ++sim_.callback_depth_;
    }
    ~CallbackScope() {
      --sim_.callback_depth_;
      if (slot_ != kNoSlot) sim_.release_slot(slot_);
    }
    CallbackScope(const CallbackScope&) = delete;
    CallbackScope& operator=(const CallbackScope&) = delete;

   private:
    Simulator& sim_;
    std::uint32_t slot_;
  };

  /// RAII for run_horizon_ across one run_*() call: installs the bound and
  /// restores the idle value (-infinity) even if a callback throws. Run
  /// loops cannot nest (checked), so restoring to the constant is exact.
  struct RunScope {
    RunScope(Simulator& sim, TimeMs horizon) : sim_(sim) {
      sim_.run_horizon_ = horizon;
    }
    ~RunScope() {
      sim_.run_horizon_ = -std::numeric_limits<TimeMs>::infinity();
    }
    RunScope(const RunScope&) = delete;
    RunScope& operator=(const RunScope&) = delete;

   private:
    Simulator& sim_;
  };

  EventId push(TimeMs when, Callback fn, TimeMs period);
  void release_slot(std::uint32_t slot);
  void heap_push(const HeapNode& n);
  HeapNode heap_pop();
  void sift_down(std::size_t i);
  /// Pops the dead heap top, freeing its slot if still tombstoned.
  void drop_dead_top();
  /// Filters every dead node out of the heap and restores the heap
  /// property; counted via the "sim.events.purged" counter.
  void purge_tombstones();
  bool fire_next();

  TimeMs now_ = 0.0;
  TimeMs run_horizon_ = -std::numeric_limits<TimeMs>::infinity();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::size_t dead_in_heap_ = 0;
  std::uint32_t callback_depth_ = 0;  // > 0 while a callback is on the stack
  bool purge_pending_ = false;        // a mid-callback cancel deferred a purge
  std::deque<Slot> slots_;  // deque: callbacks stay pinned while they run
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapNode> heap_;  // 4-ary min-heap on (when, seq)
};

}  // namespace cloudfog::sim
