// Deterministic discrete-event simulation engine — the substrate standing in
// for the paper's PeerSim harness.
//
// Properties the experiments rely on:
//   * Events at equal timestamps fire in scheduling order (a monotone
//     sequence number breaks ties), so runs are deterministic.
//   * Events can be cancelled by handle (used by churn: a node leaving
//     cancels its pending streaming events).
//   * Periodic events reschedule themselves until cancelled or the horizon
//     is reached.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace cloudfog::sim {

/// Opaque handle identifying a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in milliseconds.
  TimeMs now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now()). Returns a handle.
  EventId schedule_at(TimeMs when, Callback fn);

  /// Schedules `fn` after `delay` milliseconds (>= 0).
  EventId schedule_after(TimeMs delay, Callback fn);

  /// Schedules `fn` every `period` ms starting at now() + `first_delay`.
  /// The callback keeps firing until the returned handle is cancelled.
  EventId schedule_every(TimeMs first_delay, TimeMs period, Callback fn);

  /// Cancels a pending event. Returns true if the event existed and was
  /// still pending. Cancelling an already-fired or invalid handle is a
  /// harmless no-op returning false.
  bool cancel(EventId id);

  /// Runs a single event. Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue empties or simulated time would exceed
  /// `horizon`; the clock is left at min(horizon, last event time).
  void run_until(TimeMs horizon);

  /// Runs until the queue is empty.
  void run_all();

  /// Number of events still pending (including cancelled tombstones not yet
  /// popped — an implementation detail acceptable for monitoring).
  std::size_t pending() const { return live_.size(); }

  /// Total events executed since construction (tombstones excluded).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Callback fn;
    TimeMs period = -1.0;  // >= 0 means periodic
    bool cancelled = false;
  };

  struct HeapItem {
    TimeMs when;
    std::uint64_t seq;
    EventId id;
    std::shared_ptr<Entry> entry;
    bool operator>(const HeapItem& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  EventId push(TimeMs when, std::shared_ptr<Entry> entry);
  bool fire_next();

  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> queue_;
  std::unordered_map<EventId, std::weak_ptr<Entry>> live_;
};

}  // namespace cloudfog::sim
