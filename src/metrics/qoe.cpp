#include "metrics/qoe.h"

#include "util/check.h"

namespace cloudfog::metrics {

void QoECollector::add_latency(NodeId id, TimeMs latency_ms) {
  CF_CHECK_MSG(latency_ms >= 0.0, "latency must be non-negative");
  players_[id].response_latency_ms.add(latency_ms);
}

void QoECollector::add_units(NodeId id, double total, double on_time) {
  CF_CHECK_MSG(total >= 0.0 && on_time >= -1e-9 && on_time <= total + 1e-9,
               "on-time units must lie in [0, total]");
  auto& p = players_[id];
  p.units_total += total;
  p.units_on_time += std::min(std::max(on_time, 0.0), total);
}

double QoECollector::mean_response_latency_ms() const {
  if (players_.empty()) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& [id, q] : players_) {
    if (q.response_latency_ms.count() > 0) {
      total += q.response_latency_ms.mean();
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double QoECollector::mean_continuity() const {
  if (players_.empty()) return 1.0;
  double total = 0.0;
  for (const auto& [id, q] : players_) total += q.continuity();
  return total / static_cast<double>(players_.size());
}

double QoECollector::satisfied_fraction(double threshold) const {
  if (players_.empty()) return 1.0;
  std::size_t satisfied = 0;
  for (const auto& [id, q] : players_)
    if (q.satisfied(threshold)) ++satisfied;
  return static_cast<double>(satisfied) / static_cast<double>(players_.size());
}

}  // namespace cloudfog::metrics
