// QoE accounting — the paper's three evaluation metrics:
//   * response latency: time from a player action to the arrival of the
//     video data responding to it;
//   * playback continuity: "the proportion of packets arrived within the
//     required response latency over all packets in a game video";
//   * satisfied player: receives >= 95% of its packets within its game's
//     response latency (the paper's Section-IV definition).
#pragma once

#include <cstdint>
#include <map>

#include "util/stats.h"
#include "util/types.h"

namespace cloudfog::metrics {

/// The paper's satisfaction threshold: >= 95% of packets on time.
inline constexpr double kSatisfactionThreshold = 0.95;

/// Per-player QoE accumulator.
struct PlayerQoE {
  util::RunningStats response_latency_ms;  // one sample per action/segment
  double units_total = 0.0;    // packets (packet-level) or kbit (fluid)
  double units_on_time = 0.0;  // arrived within the response latency

  /// Playback continuity in [0, 1]; 1.0 before any data is recorded.
  double continuity() const {
    return units_total > 0.0 ? units_on_time / units_total : 1.0;
  }
  bool satisfied(double threshold = kSatisfactionThreshold) const {
    return continuity() >= threshold;
  }
};

/// Aggregates QoE over a set of players.
class QoECollector {
 public:
  /// Accumulator for `player` (created on first use).
  PlayerQoE& player(NodeId id) { return players_[id]; }
  const std::map<NodeId, PlayerQoE>& all() const { return players_; }
  std::size_t player_count() const { return players_.size(); }

  /// Records a response-latency sample for a player.
  void add_latency(NodeId id, TimeMs latency_ms);

  /// Records delivered units (`on_time` <= `total`).
  void add_units(NodeId id, double total, double on_time);

  /// Mean of the per-player mean response latencies (the paper's "average
  /// response latency per player"). 0 with no players.
  double mean_response_latency_ms() const;

  /// Mean per-player continuity. 1 with no players.
  double mean_continuity() const;

  /// Fraction of players with continuity >= threshold. 1 with no players.
  double satisfied_fraction(double threshold = kSatisfactionThreshold) const;

 private:
  std::map<NodeId, PlayerQoE> players_;  // ordered: deterministic reports
};

}  // namespace cloudfog::metrics
