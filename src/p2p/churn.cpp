#include "p2p/churn.h"

#include <limits>

#include "util/check.h"

namespace cloudfog::p2p {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}

ChurnProcess::ChurnProcess(sim::Simulator& sim, const Population& population,
                           const SocialGraph* graph, ChurnConfig config,
                           util::Rng rng)
    : sim_(sim),
      population_(population),
      graph_(graph),
      config_(config),
      rng_(rng),
      online_(population.size(), false),
      game_(population.size(), -1),
      eligible_pos_(population.size(), kNpos) {
  CF_CHECK_MSG(config.arrival_rate_per_s > 0.0, "arrival rate must be positive");
  eligible_.reserve(population.size());
  for (std::size_t i = 0; i < population.size(); ++i) {
    eligible_.push_back(i);
    eligible_pos_[i] = i;
  }
}

void ChurnProcess::set_callbacks(PlayerFn on_join, PlayerFn on_leave) {
  CF_CHECK_MSG(!started_, "set callbacks before start()");
  on_join_ = std::move(on_join);
  on_leave_ = std::move(on_leave);
}

TimeMs ChurnProcess::session_length_ms(std::size_t player) const {
  return population_.player(player).daily_play_hours * kMsPerHour;
}

void ChurnProcess::start() {
  CF_CHECK_MSG(!started_, "start() may only be called once");
  started_ = true;

  if (config_.warm_start) {
    // Stationary start of each player's on/off renewal process: online with
    // probability (daily play / 24 h) with a uniform residual session;
    // otherwise mid-off-period, becoming eligible after a uniform residual
    // of the (24 h - daily play) gap.
    const std::size_t n = population_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double p_online = population_.player(i).daily_play_hours / 24.0;
      if (rng_.bernoulli(p_online)) {
        const TimeMs residual = rng_.uniform() * session_length_ms(i);
        join(i, std::max(residual, 1.0));
      } else {
        // Remove from the eligible pool until the residual off time passes.
        const std::size_t pos = eligible_pos_[i];
        const std::size_t last = eligible_.back();
        eligible_[pos] = last;
        eligible_pos_[last] = pos;
        eligible_.pop_back();
        eligible_pos_[i] = kNpos;
        const TimeMs gap =
            std::max(1.0, 24.0 * kMsPerHour - session_length_ms(i));
        const TimeMs residual_off = rng_.uniform() * gap;
        sim_.schedule_after(residual_off, [this, i] {
          if (!online_[i] && eligible_pos_[i] == kNpos) {
            eligible_pos_[i] = eligible_.size();
            eligible_.push_back(i);
          }
        });
      }
    }
  }

  // Poisson arrival stream.
  sim_.schedule_after(rng_.exponential(config_.arrival_rate_per_s) * kMsPerSecond,
                      [this] { on_arrival_tick(); });
}

void ChurnProcess::on_arrival_tick() {
  if (!eligible_.empty()) {
    const std::size_t slot = rng_.index(eligible_.size());
    const std::size_t player = eligible_[slot];
    join(player, session_length_ms(player));
  }
  sim_.schedule_after(rng_.exponential(config_.arrival_rate_per_s) * kMsPerSecond,
                      [this] { on_arrival_tick(); });
}

game::GameId ChurnProcess::pick_game(std::size_t player) {
  std::vector<game::GameId> friend_games;
  if (graph_ != nullptr) {
    for (std::size_t f : graph_->friends(player)) {
      if (online_[f]) friend_games.push_back(game_[f]);
    }
  }
  return game::choose_game(friend_games, rng_);
}

void ChurnProcess::join(std::size_t player, TimeMs session_ms) {
  CF_CHECK_MSG(!online_[player], "player already online");
  // Remove from the eligible list (swap-with-back), if present.
  const std::size_t pos = eligible_pos_[player];
  if (pos != kNpos) {
    const std::size_t last = eligible_.back();
    eligible_[pos] = last;
    eligible_pos_[last] = pos;
    eligible_.pop_back();
    eligible_pos_[player] = kNpos;
  }
  online_[player] = true;
  ++online_count_;
  ++total_joins_;
  game_[player] = pick_game(player);
  sim_.schedule_after(session_ms, [this, player] { leave(player); });
  if (on_join_) on_join_(player);
}

void ChurnProcess::leave(std::size_t player) {
  CF_CHECK_MSG(online_[player], "player not online");
  online_[player] = false;
  CF_DCHECK(online_count_ > 0);
  --online_count_;
  ++total_leaves_;
  game_[player] = -1;
  // Diurnal gate: eligible again after the rest of the day.
  const TimeMs gap =
      std::max(1.0, 24.0 * kMsPerHour - session_length_ms(player));
  sim_.schedule_after(gap, [this, player] {
    if (!online_[player] && eligible_pos_[player] == kNpos) {
      eligible_pos_[player] = eligible_.size();
      eligible_.push_back(player);
    }
  });
  if (on_leave_) on_leave_(player);
}

bool ChurnProcess::is_online(std::size_t player) const {
  CF_CHECK_MSG(player < online_.size(), "player index out of range");
  return online_[player];
}

game::GameId ChurnProcess::game_of(std::size_t player) const {
  CF_CHECK_MSG(player < game_.size(), "player index out of range");
  return game_[player];
}

std::vector<std::size_t> ChurnProcess::online_players() const {
  std::vector<std::size_t> out;
  out.reserve(online_count_);
  for (std::size_t i = 0; i < online_.size(); ++i)
    if (online_[i]) out.push_back(i);
  return out;
}

}  // namespace cloudfog::p2p
