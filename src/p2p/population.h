// Player population: per-player static attributes drawn from the paper's
// distributions (Section IV):
//   * node capacities ~ Pareto(mean 5, shape alpha = 1) — for a supernode,
//     the maximum number of normal nodes it can support;
//   * 10% of players are supernode-capable (simulation profile);
//   * daily play time: 50% of players in (0,2] h, 30% in (2,5] h,
//     20% in (5,24] h.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace cloudfog::p2p {

/// Daily play-time class (paper cites [33]).
enum class PlayTimeClass : std::uint8_t { kShort, kMedium, kLong };

/// One player's static attributes. Dynamic session state lives in the churn
/// process / gaming systems, not here.
struct PlayerProfile {
  NodeId host = kInvalidNode;   // topology host id of this player
  double capacity = 0.0;        // Pareto sample: supportable normal nodes
  bool supernode_capable = false;
  PlayTimeClass play_class = PlayTimeClass::kShort;
  double daily_play_hours = 0.0;
};

/// Parameters for building a population.
struct PopulationConfig {
  double supernode_capable_fraction = 0.10;  // simulation profile
  double capacity_mean = 5.0;                // Pareto mean
  double capacity_alpha = 1.0;               // Pareto shape
  double short_fraction = 0.5;               // (0, 2] h/day
  double medium_fraction = 0.3;              // (2, 5] h/day
  // remaining fraction: (5, 24] h/day
};

/// The set of players; indexable by position (not by host id).
class Population {
 public:
  /// Builds profiles for `player_hosts` using `config`; draws from `rng`.
  Population(std::vector<NodeId> player_hosts, const PopulationConfig& config,
             util::Rng& rng);

  std::size_t size() const { return players_.size(); }
  const PlayerProfile& player(std::size_t i) const;
  const std::vector<PlayerProfile>& players() const { return players_; }

  /// Positions of all supernode-capable players.
  std::vector<std::size_t> supernode_capable_indices() const;

  /// Expected fraction of the population online at a uniformly random
  /// instant (sum of daily play hours / 24 / population) — used to size
  /// steady-state experiments.
  double expected_online_fraction() const;

 private:
  std::vector<PlayerProfile> players_;
};

}  // namespace cloudfog::p2p
