// Churn process: player joins and leaves over simulated time.
//
// Paper Section IV: players join following a Poisson process with an average
// rate of 5 players per second; each node leaves after it finishes playing
// and rejoins for its next session; daily play time follows the 50/30/20
// class split held in the Population.
//
// To make those two knobs consistent at steady state we add a diurnal
// eligibility gate: after finishing its daily session a player only becomes
// eligible to rejoin after (24 h − its daily play time). The Poisson arrival
// process then draws uniformly among *eligible* offline players. The
// long-run online fraction therefore converges to
// Population::expected_online_fraction() while arrivals remain Poisson.
#pragma once

#include <functional>
#include <vector>

#include "game/game.h"
#include "p2p/population.h"
#include "p2p/social_graph.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace cloudfog::p2p {

struct ChurnConfig {
  double arrival_rate_per_s = 5.0;  // Poisson join rate (paper default)
  bool warm_start = true;           // begin at steady state instead of empty
};

/// Drives join/leave events on the simulator and tracks who is online and
/// which game each online player chose.
class ChurnProcess {
 public:
  using PlayerFn = std::function<void(std::size_t player)>;

  /// `graph` may be null (game choice then ignores friends).
  ChurnProcess(sim::Simulator& sim, const Population& population,
               const SocialGraph* graph, ChurnConfig config, util::Rng rng);

  /// Registers observers; either may be empty. Call before start().
  void set_callbacks(PlayerFn on_join, PlayerFn on_leave);

  /// Applies the warm start (if configured) and schedules the arrival
  /// process. Must be called exactly once, before running the simulator.
  void start();

  bool is_online(std::size_t player) const;
  std::size_t online_count() const { return online_count_; }
  /// Game the player currently plays, or -1 when offline.
  game::GameId game_of(std::size_t player) const;

  /// Snapshot of all online player indices (ascending).
  std::vector<std::size_t> online_players() const;

  std::uint64_t total_joins() const { return total_joins_; }
  std::uint64_t total_leaves() const { return total_leaves_; }

 private:
  void on_arrival_tick();
  void join(std::size_t player, TimeMs session_ms);
  void leave(std::size_t player);
  game::GameId pick_game(std::size_t player);
  TimeMs session_length_ms(std::size_t player) const;

  sim::Simulator& sim_;
  const Population& population_;
  const SocialGraph* graph_;
  ChurnConfig config_;
  util::Rng rng_;
  PlayerFn on_join_;
  PlayerFn on_leave_;

  std::vector<bool> online_;
  std::vector<game::GameId> game_;
  std::vector<std::size_t> eligible_;    // offline and allowed to rejoin
  std::vector<std::size_t> eligible_pos_;  // player -> index in eligible_, or npos
  std::size_t online_count_ = 0;
  std::uint64_t total_joins_ = 0;
  std::uint64_t total_leaves_ = 0;
  bool started_ = false;
};

}  // namespace cloudfog::p2p
