// Social graph among players. The paper: "The number of friends for each
// player follows power-law distribution with skew factor of 0.5" (citing a
// Facebook measurement study). We realise target degrees with a
// configuration-model wiring pass (random stub matching, self-loops and
// duplicate edges rejected best-effort), which preserves the degree
// distribution — the only property the experiments consume, via
// friend-driven game selection.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cloudfog::p2p {

struct SocialGraphConfig {
  double skew = 0.5;          // power-law exponent of the degree distribution
  std::size_t min_friends = 1;
  std::size_t max_friends = 50;
};

/// Undirected friendship graph over `n` players (indices 0..n-1).
class SocialGraph {
 public:
  SocialGraph(std::size_t n, const SocialGraphConfig& config, util::Rng& rng);

  std::size_t size() const { return adjacency_.size(); }
  const std::vector<std::size_t>& friends(std::size_t player) const;
  std::size_t degree(std::size_t player) const { return friends(player).size(); }

  bool are_friends(std::size_t a, std::size_t b) const;

  /// Mean degree over all players.
  double mean_degree() const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace cloudfog::p2p
