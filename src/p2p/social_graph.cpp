#include "p2p/social_graph.h"

#include <algorithm>

#include "util/check.h"

namespace cloudfog::p2p {

SocialGraph::SocialGraph(std::size_t n, const SocialGraphConfig& config,
                         util::Rng& rng)
    : adjacency_(n) {
  if (n < 2) return;
  CF_CHECK_MSG(config.min_friends >= 1, "min_friends must be at least 1");
  CF_CHECK_MSG(config.min_friends <= config.max_friends, "friend bounds");

  // Draw target degrees from the power law, then match stubs randomly.
  std::vector<std::size_t> stubs;
  const std::size_t max_deg = std::min(config.max_friends, n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto deg = static_cast<std::size_t>(rng.power_law(
        config.min_friends, max_deg, config.skew));
    for (std::size_t s = 0; s < deg; ++s) stubs.push_back(i);
  }
  rng.shuffle(stubs);

  // Pair consecutive stubs; drop self-loops and duplicates (standard
  // configuration-model practice; the loss is a vanishing fraction).
  auto connected = [&](std::size_t a, std::size_t b) {
    const auto& fa = adjacency_[a];
    return std::find(fa.begin(), fa.end(), b) != fa.end();
  };
  for (std::size_t s = 0; s + 1 < stubs.size(); s += 2) {
    const std::size_t a = stubs[s], b = stubs[s + 1];
    if (a == b || connected(a, b)) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }

  // Guarantee the minimum degree: attach isolated players to random peers.
  for (std::size_t i = 0; i < n; ++i) {
    while (adjacency_[i].size() < config.min_friends) {
      const std::size_t j = rng.index(n);
      if (j == i || connected(i, j)) continue;
      adjacency_[i].push_back(j);
      adjacency_[j].push_back(i);
    }
  }
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
}

const std::vector<std::size_t>& SocialGraph::friends(std::size_t player) const {
  CF_CHECK_MSG(player < adjacency_.size(), "player index out of range");
  return adjacency_[player];
}

bool SocialGraph::are_friends(std::size_t a, std::size_t b) const {
  const auto& fa = friends(a);
  return std::binary_search(fa.begin(), fa.end(), b);
}

double SocialGraph::mean_degree() const {
  if (adjacency_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& nbrs : adjacency_) total += nbrs.size();
  return static_cast<double>(total) / static_cast<double>(adjacency_.size());
}

}  // namespace cloudfog::p2p
