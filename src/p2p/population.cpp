#include "p2p/population.h"

#include "util/check.h"

namespace cloudfog::p2p {

Population::Population(std::vector<NodeId> player_hosts,
                       const PopulationConfig& config, util::Rng& rng) {
  CF_CHECK_MSG(config.supernode_capable_fraction >= 0.0 &&
                   config.supernode_capable_fraction <= 1.0,
               "supernode fraction must be in [0, 1]");
  CF_CHECK_MSG(config.short_fraction + config.medium_fraction <= 1.0,
               "play-time class fractions exceed 1");
  players_.reserve(player_hosts.size());
  for (NodeId host : player_hosts) {
    PlayerProfile p;
    p.host = host;
    p.capacity = rng.pareto_with_mean(config.capacity_mean, config.capacity_alpha);
    p.supernode_capable = rng.bernoulli(config.supernode_capable_fraction);
    const double u = rng.uniform();
    if (u < config.short_fraction) {
      p.play_class = PlayTimeClass::kShort;
      p.daily_play_hours = rng.uniform(0.0, 2.0);
    } else if (u < config.short_fraction + config.medium_fraction) {
      p.play_class = PlayTimeClass::kMedium;
      p.daily_play_hours = rng.uniform(2.0, 5.0);
    } else {
      p.play_class = PlayTimeClass::kLong;
      p.daily_play_hours = rng.uniform(5.0, 24.0);
    }
    // Keep a floor so every session has measurable length.
    p.daily_play_hours = std::max(0.05, p.daily_play_hours);
    players_.push_back(p);
  }
}

const PlayerProfile& Population::player(std::size_t i) const {
  CF_CHECK_MSG(i < players_.size(), "player index out of range");
  return players_[i];
}

std::vector<std::size_t> Population::supernode_capable_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < players_.size(); ++i)
    if (players_[i].supernode_capable) out.push_back(i);
  return out;
}

double Population::expected_online_fraction() const {
  if (players_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& p : players_) total += p.daily_play_hours;
  return total / 24.0 / static_cast<double>(players_.size());
}

}  // namespace cloudfog::p2p
