# Sanitizer wiring for the CloudFog build.
#
# Usage: set CLOUDFOG_SANITIZE to a semicolon-separated list of sanitizers
# (e.g. -DCLOUDFOG_SANITIZE="address;undefined" or "thread"); the flags are
# applied globally so every target — libraries, tests, benches, examples —
# is instrumented consistently. Mixing `thread` with `address`/`leak` is
# rejected up front: the runtimes are mutually exclusive and the link error
# you would get otherwise is cryptic.
#
# The canonical entry points are the `asan-ubsan` and `tsan` presets in
# CMakePresets.json; this module is what they delegate to.

set(CLOUDFOG_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable (address;undefined;thread;leak)")

if(NOT CLOUDFOG_SANITIZE)
  return()
endif()

set(_cf_known_sanitizers address undefined thread leak)
set(_cf_san_flags "")
foreach(_san IN LISTS CLOUDFOG_SANITIZE)
  if(NOT _san IN_LIST _cf_known_sanitizers)
    message(FATAL_ERROR
      "CLOUDFOG_SANITIZE: unknown sanitizer '${_san}' "
      "(known: ${_cf_known_sanitizers})")
  endif()
  list(APPEND _cf_san_flags "-fsanitize=${_san}")
endforeach()

if("thread" IN_LIST CLOUDFOG_SANITIZE AND
   ("address" IN_LIST CLOUDFOG_SANITIZE OR "leak" IN_LIST CLOUDFOG_SANITIZE))
  message(FATAL_ERROR
    "CLOUDFOG_SANITIZE: 'thread' cannot be combined with 'address'/'leak' — "
    "their runtimes are mutually exclusive")
endif()

# Keep stack traces readable and make UBSan findings fatal so they fail the
# build's ctest run instead of scrolling past as warnings.
list(APPEND _cf_san_flags -fno-omit-frame-pointer)
if("undefined" IN_LIST CLOUDFOG_SANITIZE)
  list(APPEND _cf_san_flags -fno-sanitize-recover=undefined)
endif()

message(STATUS "CloudFog sanitizers enabled: ${CLOUDFOG_SANITIZE}")
add_compile_options(${_cf_san_flags})
add_link_options(${_cf_san_flags})

unset(_cf_known_sanitizers)
unset(_cf_san_flags)
