"""Entry point so both invocation styles work:

    python3 scripts/cflint [args]     # run the package directory
    python3 -m cflint [args]          # with scripts/ on PYTHONPATH

When the directory itself is executed, Python puts scripts/cflint on
sys.path and runs this file without package context, so absolute imports of
`cflint.*` would fail; re-rooting sys.path at scripts/ fixes both worlds.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from cflint.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
