"""The `// lint:allow(<rule>)` escape hatch, and its hygiene rules.

A waiver is parsed out of *comments only* (the lexer hands them over
separately), so `lint:allow` inside a string literal is documentation, not
a waiver. A trailing waiver comment suppresses matching findings on its
own line; a standalone waiver comment suppresses them on the line after
the comment ends. That is the retired lint's contract, kept so existing
waivers keep working.

Two hygiene rules keep the hatch honest, and neither is itself waivable:

  stale-waiver          — a waiver that suppresses no live finding (the
                          code it excused changed, or the rule name is
                          misspelled/unknown). Stale waivers are deleted,
                          not kept "just in case": a waiver that matches
                          nothing today will silently excuse a real
                          finding introduced tomorrow.
  waiver-justification  — every waiver must say *why* (≥ 12 chars of
                          comment text beyond the allow() marker, on the
                          waiver line or in a comment within the two lines
                          above). "Because the lint fired" is not a reason.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from cflint.model import Finding, Project, SourceFile

ALLOW = re.compile(r"lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

MIN_JUSTIFICATION_CHARS = 12


@dataclass
class Waiver:
    rel: str
    comment_line: int  # first line of the waiver comment
    target_line: int  # line whose findings it suppresses
    rules: Tuple[str, ...]
    justification: str
    used: Set[str] = field(default_factory=set)


def _comment_end_line(line: int, text: str) -> int:
    return line + text.count("\n")


def collect_waivers(sf: SourceFile) -> List[Waiver]:
    waivers: List[Waiver] = []
    for idx, comment in enumerate(sf.comments):
        m = ALLOW.search(comment.text)
        if not m:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(","))
        prefix = sf.raw_line(comment.line)[: comment.col - 1]
        standalone = not prefix.strip()
        end_line = _comment_end_line(comment.line, comment.text)
        target = end_line + 1 if standalone else comment.line
        # Justification: this comment minus the allow() markers, plus any
        # comment ending within the two lines above this one.
        own = ALLOW.sub("", comment.text).strip(" -—*/\t\n")
        nearby: List[str] = [own]
        for other in sf.comments:
            if other is comment:
                continue
            oend = _comment_end_line(other.line, other.text)
            if 0 <= comment.line - oend <= 2:
                nearby.append(ALLOW.sub("", other.text).strip(" -—*/\t\n"))
        justification = " ".join(t for t in nearby if t)
        waivers.append(
            Waiver(
                rel=sf.rel,
                comment_line=comment.line,
                target_line=target,
                rules=rules,
                justification=justification,
            )
        )
    return waivers


def apply_waivers(
    project: Project,
    findings: Sequence[Finding],
    known_rule_ids: Sequence[str],
) -> Tuple[List[Finding], List[Finding], List[Waiver]]:
    """Split findings into (kept, waived) and append hygiene findings for
    stale or unjustified waivers. Returns (kept + hygiene, waived, waivers).
    """
    table: Dict[Tuple[str, int], List[Waiver]] = {}
    all_waivers: List[Waiver] = []
    for sf in project.files:
        for w in collect_waivers(sf):
            all_waivers.append(w)
            table.setdefault((w.rel, w.target_line), []).append(w)

    kept: List[Finding] = []
    waived: List[Finding] = []
    for f in findings:
        hit = None
        for w in table.get((f.rel, f.line), ()):
            if f.rule in w.rules:
                hit = w
                break
        if hit is not None:
            hit.used.add(f.rule)
            waived.append(f)
        else:
            kept.append(f)

    known = set(known_rule_ids)
    for w in all_waivers:
        for rule in w.rules:
            if rule not in known:
                kept.append(
                    Finding(
                        rule="stale-waiver",
                        rel=w.rel,
                        line=w.comment_line,
                        col=1,
                        message=(
                            f"waiver names unknown rule '{rule}' (known: "
                            f"{', '.join(sorted(known))})"
                        ),
                        snippet="",
                    )
                )
            elif rule not in w.used:
                kept.append(
                    Finding(
                        rule="stale-waiver",
                        rel=w.rel,
                        line=w.comment_line,
                        col=1,
                        message=(
                            f"waiver for '{rule}' suppresses no live "
                            "finding; delete it (line "
                            f"{w.target_line} no longer trips the rule)"
                        ),
                        snippet="",
                    )
                )
        if len(w.justification) < MIN_JUSTIFICATION_CHARS:
            kept.append(
                Finding(
                    rule="waiver-justification",
                    rel=w.rel,
                    line=w.comment_line,
                    col=1,
                    message=(
                        "waiver has no justification; say why the rule "
                        "does not apply here, in this comment or one "
                        "within the two lines above"
                    ),
                    snippet="",
                )
            )
    return kept, waived, all_waivers
