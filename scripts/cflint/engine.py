"""Analysis driver: load -> rules -> waivers -> baseline -> report."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from cflint import baseline as baseline_mod
from cflint.model import Finding, Project, load_project
from cflint.rules import ALL_RULES, RULE_IDS
from cflint.waivers import Waiver, apply_waivers

META_RULE_DESCRIPTIONS: Dict[str, str] = {
    "stale-waiver": (
        "A lint:allow waiver that suppresses no live finding, or names an "
        "unknown rule. Delete it: a waiver matching nothing today will "
        "silently excuse a real finding tomorrow."
    ),
    "waiver-justification": (
        "Every lint:allow waiver must carry a justification comment (on "
        "the waiver line or within the two lines above) saying why the "
        "rule does not apply."
    ),
}


@dataclass
class Report:
    project: Project
    findings: List[Finding]  # actionable: new findings + hygiene findings
    baselined: List[Finding]
    waived: List[Finding]
    waivers: List[Waiver]

    @property
    def clean(self) -> bool:
        return not self.findings


def analyze(
    root: Path,
    roots: Sequence[Path],
    baseline_path: Optional[Path] = None,
    exclude_fixtures: bool = True,
) -> Report:
    project = load_project(root, roots, exclude_fixtures=exclude_fixtures)

    raw: List[Finding] = []
    for rule in ALL_RULES:
        for sf in project.files:
            raw.extend(rule.check_file(sf, project))
        raw.extend(rule.check_project(project))

    kept, waived, waivers = apply_waivers(project, raw, RULE_IDS)

    baselined: List[Finding] = []
    if baseline_path is not None:
        entries = baseline_mod.load(baseline_path)
        kept, baselined = baseline_mod.split(kept, entries, project)

    kept.sort(key=Finding.sort_key)
    return Report(
        project=project,
        findings=kept,
        baselined=baselined,
        waived=waived,
        waivers=waivers,
    )
