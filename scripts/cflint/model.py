"""Core data model: source files, the project, findings, and the rule API."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from cflint.lexer import Comment, scrub

SOURCE_SUFFIXES = frozenset({".cc", ".cpp", ".cxx", ".h", ".hpp"})

# Trees never scanned as production code. tests/cflint/fixtures holds the
# deliberately-failing rule exemplars — scanning them as part of the repo
# would make the corpus itself a finding factory.
EXCLUDED_PARTS: Tuple[Tuple[str, ...], ...] = (
    ("tests", "cflint", "fixtures"),
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a 1-based (line, col) in `rel`."""

    rule: str
    rel: str  # repo-root-relative POSIX path
    line: int
    col: int
    message: str
    snippet: str = ""

    def render(self) -> str:
        loc = f"{self.rel}:{self.line}:{self.col}"
        body = f"{loc}: [{self.rule}] {self.message}"
        if self.snippet:
            body += f"\n    {self.snippet.strip()}"
        return body

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.rel, self.line, self.col, self.rule)


class SourceFile:
    """One C++ file: raw text, scrubbed code, and its comments."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        result = scrub(text)
        self.code = result.code
        self.comments: Tuple[Comment, ...] = result.comments
        self.raw_lines: List[str] = text.splitlines()
        self.code_lines: List[str] = result.code.splitlines()

    def raw_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.raw_lines):
            return self.raw_lines[lineno - 1]
        return ""

    @property
    def subsystem(self) -> str:
        """Layering unit: `src/<sub>/...` maps to `<sub>`; anything else
        maps to its top directory (`bench`, `tests`, `examples`)."""
        parts = Path(self.rel).parts
        if len(parts) >= 2 and parts[0] == "src":
            return parts[1]
        return parts[0] if parts else ""


class Project:
    """Everything the rules see: the file set plus the repo root, so
    project-scoped rules (include graph) can resolve includes."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files: List[SourceFile] = list(files)
        self.by_rel: Dict[str, SourceFile] = {f.rel: f for f in self.files}

    def resolve_include(
        self, includer: SourceFile, target: str
    ) -> Optional[SourceFile]:
        """Resolve a quoted include the way the build does: against src/
        (every target adds it as an include dir), then against the
        includer's own directory, then against the repo root."""
        candidates = (
            Path("src") / target,
            Path(includer.rel).parent / target,
            Path(target),
        )
        for cand in candidates:
            rel = cand.as_posix()
            # Normalise a/../b without touching the filesystem.
            parts: List[str] = []
            for part in rel.split("/"):
                if part == "..":
                    if parts:
                        parts.pop()
                elif part not in (".", ""):
                    parts.append(part)
            hit = self.by_rel.get("/".join(parts))
            if hit is not None:
                return hit
        return None


class Rule:
    """Base class. File rules override check_file; project rules override
    check_project. `id` is the name used in findings, waivers, fixtures,
    and SARIF; `description` is the one-line rule-table entry."""

    id: str = ""
    description: str = ""

    def check_file(
        self, sf: SourceFile, project: Project
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


def _excluded(rel_parts: Tuple[str, ...]) -> bool:
    return any(
        rel_parts[: len(prefix)] == prefix for prefix in EXCLUDED_PARTS
    )


def load_project(
    root: Path, roots: Sequence[Path], exclude_fixtures: bool = True
) -> Project:
    """Load every C++ source under `roots` (files or directories, resolved
    against `root`) into a Project. Exits with code 2 on IO errors, the
    same contract the retired lint had."""
    files: List[SourceFile] = []
    seen: set = set()
    for r in roots:
        abs_r = r if r.is_absolute() else root / r
        if abs_r.is_file():
            paths: Iterable[Path] = [abs_r]
        elif abs_r.is_dir():
            paths = sorted(
                p
                for p in abs_r.rglob("*")
                if p.is_file() and p.suffix in SOURCE_SUFFIXES
            )
        else:
            print(f"error: no such file or directory: {r}", file=sys.stderr)
            raise SystemExit(2)
        for p in paths:
            try:
                rel = p.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = p.as_posix()
            if rel in seen:
                continue
            if exclude_fixtures and _excluded(tuple(Path(rel).parts)):
                continue
            seen.add(rel)
            try:
                text = p.read_text(encoding="utf-8", errors="replace")
            except OSError as exc:
                print(f"error: cannot read {p}: {exc}", file=sys.stderr)
                raise SystemExit(2)
            files.append(SourceFile(p, rel, text))
    return Project(root, files)
