"""Determinism rules, ported from the retired scripts/lint_determinism.py.

Patterns here run over *scrubbed* code (see cflint.lexer): comments, string
literals, char literals, and raw strings are already blanked, so a rule
keyword inside documentation text or a log message can never fire. That
retires the whole false-positive class the regex script had to hedge
around with line-granular comment tracking.

Path scoping replaces the old PATH_WAIVERS table: src/obs is the repo's one
sanctioned wall-clock boundary (scoped timers, bench wall time — pure
sinks that never feed simulation state, DESIGN.md §7), and src/exec is the
one sanctioned thread boundary (RunExecutor owns every worker thread,
DESIGN.md §9). Scoping is by directory component so the waiver follows a
subsystem re-root and never applies to a look-alike file elsewhere.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import FrozenSet, Iterable, Pattern

from cflint.model import Finding, Project, Rule, SourceFile


class RegexRule(Rule):
    """A determinism rule: one compiled pattern matched per scrubbed line,
    with optional per-directory exemptions."""

    def __init__(
        self,
        rule_id: str,
        pattern: Pattern[str],
        message: str,
        description: str,
        exempt_dirs: FrozenSet[str] = frozenset(),
    ) -> None:
        self.id = rule_id
        self.pattern = pattern
        self.message = message
        self.description = description
        self.exempt_dirs = exempt_dirs

    def _exempt(self, sf: SourceFile) -> bool:
        return bool(
            self.exempt_dirs.intersection(Path(sf.rel).parts[:-1])
        )

    def check_file(
        self, sf: SourceFile, project: Project
    ) -> Iterable[Finding]:
        if self._exempt(sf):
            return
        for lineno, code in enumerate(sf.code_lines, start=1):
            m = self.pattern.search(code)
            if m:
                yield Finding(
                    rule=self.id,
                    rel=sf.rel,
                    line=lineno,
                    col=m.start() + 1,
                    message=self.message,
                    snippet=sf.raw_line(lineno),
                )


DETERMINISM_RULES = [
    RegexRule(
        "wall-clock",
        re.compile(
            r"std::time\s*\(|[^:\w]time\s*\(\s*(?:NULL|nullptr|0|&)"
            r"|system_clock|steady_clock\s*::\s*now|high_resolution_clock"
        ),
        "host wall-clock read; use sim::Simulator::now() for simulation time",
        "Host clock reads (std::time, system_clock, steady_clock::now, "
        "high_resolution_clock) outside src/obs, the designated wall-clock "
        "boundary.",
        exempt_dirs=frozenset({"obs"}),
    ),
    RegexRule(
        "libc-rand",
        re.compile(r"(?<![\w:])s?rand\s*\(|(?<![\w:])random\s*\(\s*\)"),
        "libc PRNG has global, implementation-defined state; use util::Rng",
        "libc rand()/srand()/random(): unseeded global state with "
        "implementation-defined sequences across libcs.",
    ),
    RegexRule(
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device is nondeterministic; seed util::Rng from config",
        "std::random_device is nondeterministic by design; seed util::Rng "
        "from the experiment config instead.",
    ),
    RegexRule(
        "unseeded-engine",
        re.compile(
            r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)"
            r"\s+\w+\s*(?:;|\{\s*\})"
        ),
        "unseeded std engine; derive a util::Rng stream via fork(label)",
        "std engine constructed without an explicit seed expression; engine "
        "choice belongs in util::Rng, where streams are label-forked.",
    ),
    RegexRule(
        "unordered-iter",
        re.compile(
            r"for\s*\(\s*(?:const\s+)?auto\s*&?&?\s*(?:\[[^\]]*\]|\w+)\s*:\s*"
            r"\w*(?:unordered_|umap_|uset_)\w*"
        ),
        "iteration order of unordered containers is not reproducible; "
        "iterate a sorted/insertion-order mirror",
        "Range-for over a std::unordered_map/set: bucket order is "
        "libstdc++-version- and ASLR-dependent.",
    ),
    RegexRule(
        "float-accum",
        re.compile(
            r"std::accumulate\s*\([^;]*unordered_[^;]*(?:0\.0?f?|\w+\.0)"
        ),
        "floating-point reduction over an unordered range; order must be "
        "pinned before summing",
        "std::accumulate of floating-point over an unordered container: FP "
        "addition is non-associative, so reduction order must be pinned.",
    ),
    RegexRule(
        "raw-thread",
        re.compile(r"std::(?:jthread|async)\b|std::thread\b(?!\s*::\s*id)"),
        "raw threading outside src/exec + src/shard breaks bit-identical "
        "results; fan work through exec::RunExecutor or shard::BarrierPool",
        "std::thread/jthread/async outside src/exec and src/shard, the "
        "designated thread boundaries (exec::RunExecutor pins result order "
        "to submission order; shard::BarrierPool pins it to window-barrier "
        "rounds). std::thread::id is allowed: naming the current thread is "
        "not creating one.",
        exempt_dirs=frozenset({"exec", "shard"}),
    ),
]
