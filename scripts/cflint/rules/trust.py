"""Trust-boundary coverage audit.

The CF_CHECK discipline (DESIGN.md §6) guards the classes where a bad
argument corrupts simulation state instead of failing loudly: the event
engine, the deadline scheduler, rate adaptation, the receiver buffer, the
supernode sender, and the supernode manager. This rule makes the
discipline structural: every *public mutating method* (public, non-const,
non-static member function) of a guarded class must contain at least one
`CF_CHECK*` or `CF_INVARIANT` in its body — a new entry point that skips
validation fails the lint the moment it is written, not when a fuzzer
finds it.

Guarded classes are declared in GUARDED_CLASSES below (adding a class to
the audit is a one-line change). The rule parses the scrubbed header:
class span -> access regions -> member declarations, then finds each
method's body (inline, or out-of-line `Class::method` in any scanned
file). Deliberately exempt: constructors/destructors (covered by member
checks they call), operators (deleted or trivial here), const methods, and
declarations with no body in the scanned tree. A mutator that validates by
delegation gets a `// lint:allow(trust-boundary)` waiver naming the
delegate — see the waiver policy in DESIGN.md §10.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from cflint.model import Finding, Project, Rule, SourceFile

# class name -> header that declares it. The rule fails loudly if the
# header or the class disappears, so a rename cannot silently drop a class
# out of the audit.
GUARDED_CLASSES: Dict[str, str] = {
    "Simulator": "src/sim/simulator.h",
    "DeadlineScheduler": "src/core/deadline_scheduler.h",
    "RateAdaptationController": "src/core/rate_adaptation.h",
    "ReceiverBuffer": "src/stream/receiver_buffer.h",
    "SupernodeSender": "src/core/supernode_sender.h",
    "SupernodeManager": "src/core/supernode_manager.h",
}

# CF_CHECK, CF_CHECK_MSG, CF_CHECK_GE/GT/LE/LT/EQ/NE, CF_INVARIANT.
# CF_DCHECK does NOT count: it compiles out in release builds, and a trust
# boundary that vanishes under -DNDEBUG is not a trust boundary.
CHECK_MACRO = re.compile(r"\bCF_(?:CHECK|INVARIANT)\w*\s*\(")

_IDENT = re.compile(r"[A-Za-z_]\w*")


def match_brace(code: str, open_idx: int) -> int:
    """Index just past the `}` matching the `{` at open_idx (code is
    scrubbed, so braces in strings/comments cannot confuse the count).
    Returns len(code) if unbalanced."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _line_of(code: str, idx: int) -> int:
    return code.count("\n", 0, idx) + 1


def _find_class_span(
    code: str, cls: str
) -> Optional[Tuple[int, int, str]]:
    """(body_start, body_end, keyword) for `class|struct <cls> ... { ... }`.
    body_start points at the `{`."""
    m = re.search(rf"\b(class|struct)\s+{re.escape(cls)}\b", code)
    if not m:
        return None
    # Skip the base clause: first `{` after the name (scrubbed code, so a
    # brace inside a default argument string cannot appear; a brace inside
    # a base-clause template argument would break this, but the guarded
    # classes have no base classes).
    open_idx = code.find("{", m.end())
    if open_idx < 0:
        return None
    # Guard against `class Foo;` forward declarations: no `;` may appear
    # between the name and the `{`.
    if ";" in code[m.end() : open_idx]:
        nxt = _find_class_span(code[m.end() :], cls)
        if nxt is None:
            return None
        s, e, kw = nxt
        return s + m.end(), e + m.end(), kw
    return open_idx, match_brace(code, open_idx), m.group(1)


class _Member:
    def __init__(self, text: str, start_idx: int, body: Optional[str]):
        self.text = text  # declaration text (body excluded)
        self.start_idx = start_idx  # index into file code of first char
        self.body = body  # inline body text incl. braces, or None


def _iter_members(
    code: str, body_start: int, body_end: int, keyword: str
) -> Iterable[Tuple[str, _Member]]:
    """Yield (access, member) for each top-level member of the class body.
    Nested types are skipped wholesale: their members are not the outer
    class's API."""
    access = "public" if keyword == "struct" else "private"
    i = body_start + 1
    member_start: Optional[int] = None
    decl_parts: List[str] = []
    while i < body_end - 1:
        c = code[i]
        if member_start is None and not c.isspace():
            member_start = i
        # Access specifier?
        m = re.match(r"(public|private|protected)\s*:", code[i:])
        if m and member_start == i:
            access = m.group(1)
            i += m.end()
            member_start = None
            decl_parts = []
            continue
        if c == ";":
            if member_start is not None:
                decl_parts.append(code[member_start : i + 1])
                yield access, _Member(
                    "".join(decl_parts), member_start, None
                )
            member_start = None
            decl_parts = []
            i += 1
            continue
        if c == "(":
            # Keep parameter lists atomic so a `;`-free scan can't split on
            # commas/defaults; find the matching `)`.
            depth = 0
            j = i
            while j < body_end:
                if code[j] == "(":
                    depth += 1
                elif code[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            i = j + 1
            continue
        if c == "{":
            end = match_brace(code, i)
            start = member_start if member_start is not None else i
            decl = code[start:i]
            body = code[i:end]
            # `} ;` after a nested type / brace-init member
            k = end
            while k < body_end and code[k].isspace():
                k += 1
            if k < body_end and code[k] == ";":
                end = k + 1
            yield access, _Member(decl, start, body)
            member_start = None
            decl_parts = []
            i = end
            continue
        i += 1


_SKIP_LEADING = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static\b|enum\b|class\b|struct\b"
    r"|template\b)"
)


def _method_name(decl: str) -> Optional[str]:
    """Identifier directly before the first top-level `(` of `decl`, or
    None when decl is not a function declaration."""
    depth = 0
    for i, c in enumerate(decl):
        if c in "<[":
            depth += 1
        elif c in ">]":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0:
            m = _IDENT.search(decl[:i].rstrip()[::-1])
            if m is None or m.start() != 0:
                return None
            return m.group(0)[::-1]
    return None


def _is_const_or_unbodied(decl: str) -> bool:
    """Trailing qualifiers after the parameter list: const methods and
    `= delete` / `= default` / pure-virtual declarations are exempt."""
    close = decl.rfind(")")
    tail = decl[close + 1 :] if close >= 0 else ""
    if re.search(r"\bconst\b", tail):
        return True
    if re.search(r"=\s*(?:delete|default|0)\s*;?\s*$", tail):
        return True
    return False


def _find_out_of_line_body(
    project: Project, cls: str, name: str
) -> List[Tuple[SourceFile, int, str]]:
    """All `Cls::name(...) { ... }` definitions in the scanned tree."""
    pat = re.compile(rf"\b{re.escape(cls)}\s*::\s*{re.escape(name)}\s*\(")
    hits: List[Tuple[SourceFile, int, str]] = []
    for sf in project.files:
        for m in pat.finditer(sf.code):
            # Find the body `{` after the parameter list and any trailing
            # qualifiers / trailing return type; a `;` first means this is
            # a redeclaration, not a definition.
            depth = 0
            i = m.end() - 1
            while i < len(sf.code):
                c = sf.code[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            while i < len(sf.code) and sf.code[i] not in "{;":
                i += 1
            if i < len(sf.code) and sf.code[i] == "{":
                end = match_brace(sf.code, i)
                hits.append((sf, _line_of(sf.code, m.start()), sf.code[i:end]))
    return hits


class TrustBoundaryRule(Rule):
    id = "trust-boundary"
    description = (
        "Public mutating methods (public, non-const, non-static) of the "
        "CF_CHECK-guarded classes must contain at least one CF_CHECK*/"
        "CF_INVARIANT; ctors/dtors/operators/const/bodiless declarations "
        "are exempt, delegation cases carry a justified waiver."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls, header in sorted(GUARDED_CLASSES.items()):
            sf = project.by_rel.get(header)
            if sf is None:
                # The header is simply outside the scanned roots (e.g. a
                # fixture run): nothing to audit. A *renamed* header shows
                # up as the class-not-found finding on a full-tree run.
                continue
            span = _find_class_span(sf.code, cls)
            if span is None:
                findings.append(
                    Finding(
                        rule=self.id,
                        rel=sf.rel,
                        line=1,
                        col=1,
                        message=(
                            f"guarded class '{cls}' not found in {header}; "
                            "update GUARDED_CLASSES in "
                            "scripts/cflint/rules/trust.py after a rename"
                        ),
                    )
                )
                continue
            body_start, body_end, keyword = span
            for access, member in _iter_members(
                sf.code, body_start, body_end, keyword
            ):
                if access != "public":
                    continue
                decl = member.text
                if _SKIP_LEADING.search(decl):
                    continue
                name = _method_name(decl)
                if name is None or name == cls or name == "operator":
                    continue
                if "~" + cls in decl.replace(" ", "") or "operator" in decl:
                    continue
                if _is_const_or_unbodied(decl):
                    continue
                bodies: List[Tuple[str, str]] = []  # (where, body)
                if member.body is not None:
                    bodies.append((f"{sf.rel} (inline)", member.body))
                else:
                    for dsf, dline, dbody in _find_out_of_line_body(
                        project, cls, name
                    ):
                        bodies.append((f"{dsf.rel}:{dline}", dbody))
                if not bodies:
                    continue  # declaration only; nothing to audit
                unchecked = [w for w, b in bodies if not CHECK_MACRO.search(b)]
                if unchecked:
                    line = _line_of(sf.code, member.start_idx)
                    findings.append(
                        Finding(
                            rule=self.id,
                            rel=sf.rel,
                            line=line,
                            col=1,
                            message=(
                                f"public mutating method {cls}::{name} has "
                                "no CF_CHECK/CF_INVARIANT in its body "
                                f"({', '.join(unchecked)}); validate inputs "
                                "at the trust boundary or waive with a "
                                "justification naming the delegate"
                            ),
                            snippet=sf.raw_line(line),
                        )
                    )
        return findings
