"""Rule registry. Adding a rule = write it in one of the modules here,
append it to ALL_RULES, give it fixtures under tests/cflint/fixtures/<id>/
(at least one fail_*.cpp and one pass_*.cpp — the self-test enforces the
corpus), and add a row to the DESIGN.md §10 rule table."""

from __future__ import annotations

from typing import List

from cflint.model import Rule
from cflint.rules.determinism import DETERMINISM_RULES
from cflint.rules.hotpath import StdFunctionRule
from cflint.rules.layering import IncludeCycleRule, IncludeLayeringRule
from cflint.rules.trust import TrustBoundaryRule

ALL_RULES: List[Rule] = [
    *DETERMINISM_RULES,
    StdFunctionRule(),
    IncludeLayeringRule(),
    IncludeCycleRule(),
    TrustBoundaryRule(),
]

# Waiver-hygiene rules live in cflint.waivers, not here: they run as a
# post-pass over the waiver table, after every other rule has had the
# chance to be suppressed, and are themselves not waivable.
META_RULE_IDS = ("stale-waiver", "waiver-justification")

RULE_IDS = tuple(r.id for r in ALL_RULES) + META_RULE_IDS


def rule_by_id(rule_id: str) -> Rule:
    for r in ALL_RULES:
        if r.id == rule_id:
            return r
    raise KeyError(rule_id)
