"""Include-graph rules: subsystem layering DAG + file-level cycle detection.

The repo's subsystems form a strict layering (low rank = foundational):

    rank 0   util                    (leaf: depends on nothing)
    rank 10  obs                     (instrumentation sink; everything may
                                      include it, it includes only util —
                                      the one waivered exception is
                                      obs/sim_hook.h -> sim, the
                                      header-only sampler bridge)
    rank 20  sim, exec               (event engine; worker-pool boundary)
    rank 30  net, metrics, game, world
    rank 40  stream, p2p
    rank 45  cache                   (segment cache + transcoding over
                                      stream/game/sim; below core so the
                                      sender/manager can compose it)
    rank 50  core                    (assignment/scheduling/adaptation —
                                      composes net+stream+sim+cache)
    rank 55  shard                   (space-parallel run machinery:
                                      partition/inbox/barrier/window over
                                      sim+exec+net+core; below systems so
                                      the experiment drivers compose it)
    rank 60  systems                 (experiment drivers over everything)
    rank 70  bench, tests, examples  (harnesses; may include anything)

An `#include` edge is legal iff it stays inside one subsystem or points
strictly *down* in rank. Equal-rank edges between different subsystems are
violations too: peers must not couple (if they need to, one of them moves
down a layer — make that decision explicitly in this table, not silently
in an include line). Since ranks are a total preorder, any subsystem-level
cycle necessarily contains an upward edge, so `include-layering` subsumes
subsystem cycles; `include-cycle` additionally catches *file-level* include
cycles, which can exist entirely inside one subsystem.

The table lives here (not in a config file) deliberately: changing the
architecture should be a reviewed code change next to the rule that
enforces it. DESIGN.md §10 carries the same DAG as a diagram.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from cflint.model import Finding, Project, Rule, SourceFile

LAYERS: Dict[str, int] = {
    "util": 0,
    "obs": 10,
    "sim": 20,
    "exec": 20,
    "net": 30,
    "metrics": 30,
    "game": 30,
    "world": 30,
    "stream": 40,
    "p2p": 40,
    "cache": 45,
    "core": 50,
    "shard": 55,
    "systems": 60,
    "bench": 70,
    "tests": 70,
    "examples": 70,
}

_DIRECTIVE = re.compile(r"^\s*#\s*include\s")
_TARGET = re.compile(r'#\s*include\s+"([^"]+)"')


def _quoted_includes(sf: SourceFile) -> Iterable[Tuple[int, int, str]]:
    """Yield (line, col, target) for each quoted include. The *directive*
    is recognised on scrubbed code (so an `#include` spelled inside a
    comment or string literal is not an edge), while the target path is
    read back from the raw line — the lexer blanks it as a string literal.
    """
    for lineno, code in enumerate(sf.code_lines, start=1):
        if not _DIRECTIVE.match(code):
            continue
        m = _TARGET.search(sf.raw_line(lineno))
        if m:
            yield lineno, m.start(1) + 1, m.group(1)


class IncludeLayeringRule(Rule):
    id = "include-layering"
    description = (
        "Quoted includes must stay inside their subsystem or point "
        "strictly down the layering DAG (util < obs < sim/exec < "
        "net/metrics/game/world < stream/p2p < cache < core < shard < "
        "systems < bench/tests/examples); equal-rank cross-subsystem "
        "edges and unranked subsystems are violations."
    )

    def check_file(
        self, sf: SourceFile, project: Project
    ) -> Iterable[Finding]:
        src_sub = sf.subsystem
        src_rank = LAYERS.get(src_sub)
        for lineno, col, target in _quoted_includes(sf):
            tgt = project.resolve_include(sf, target)
            if tgt is None:
                continue  # system/vendored header outside the scanned tree
            tgt_sub = tgt.subsystem
            if tgt_sub == src_sub:
                continue
            tgt_rank = LAYERS.get(tgt_sub)
            if src_rank is None or tgt_rank is None:
                unknown = src_sub if src_rank is None else tgt_sub
                yield Finding(
                    rule=self.id,
                    rel=sf.rel,
                    line=lineno,
                    col=col,
                    message=(
                        f"subsystem '{unknown}' has no layer rank; add it "
                        "to LAYERS in scripts/cflint/rules/layering.py and "
                        "to the DESIGN.md §10 diagram"
                    ),
                    snippet=sf.raw_line(lineno),
                )
            elif tgt_rank > src_rank:
                yield Finding(
                    rule=self.id,
                    rel=sf.rel,
                    line=lineno,
                    col=col,
                    message=(
                        f"upward include: {src_sub} (rank {src_rank}) must "
                        f"not include {tgt_sub} (rank {tgt_rank}); invert "
                        "the dependency or move the shared piece down"
                    ),
                    snippet=sf.raw_line(lineno),
                )
            elif tgt_rank == src_rank:
                yield Finding(
                    rule=self.id,
                    rel=sf.rel,
                    line=lineno,
                    col=col,
                    message=(
                        f"peer include: {src_sub} and {tgt_sub} share rank "
                        f"{src_rank}; peers must not couple — move one "
                        "down a layer (a reviewed LAYERS change) instead"
                    ),
                    snippet=sf.raw_line(lineno),
                )


class IncludeCycleRule(Rule):
    id = "include-cycle"
    description = (
        "File-level include cycles (A includes B includes ... includes A), "
        "including cycles entirely inside one subsystem."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph: Dict[str, List[Tuple[str, int]]] = {}
        for sf in project.files:
            edges: List[Tuple[str, int]] = []
            for lineno, _col, target in _quoted_includes(sf):
                tgt = project.resolve_include(sf, target)
                if tgt is not None:
                    edges.append((tgt.rel, lineno))
            graph[sf.rel] = edges

        # Iterative DFS with colouring; report each cycle once, anchored at
        # the include line that closes it.
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[str, int] = {rel: WHITE for rel in graph}
        reported: Set[Tuple[str, ...]] = set()
        findings: List[Finding] = []

        def visit(start: str) -> None:
            stack: List[Tuple[str, Iterator[Tuple[str, int]]]] = []
            path: List[str] = []
            stack.append((start, iter(graph[start])))
            colour[start] = GREY
            path.append(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt, lineno in it:
                    if colour.get(nxt, BLACK) == GREY:
                        cycle = path[path.index(nxt) :] + [nxt]
                        key = tuple(sorted(set(cycle)))
                        if key not in reported:
                            reported.add(key)
                            findings.append(
                                Finding(
                                    rule=self.id,
                                    rel=node,
                                    line=lineno,
                                    col=1,
                                    message=(
                                        "include cycle: "
                                        + " -> ".join(cycle)
                                    ),
                                    snippet=project.by_rel[node].raw_line(
                                        lineno
                                    ),
                                )
                            )
                    elif colour.get(nxt) == WHITE:
                        colour[nxt] = GREY
                        path.append(nxt)
                        stack.append((nxt, iter(graph[nxt])))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    path.pop()
                    colour[node] = BLACK

        for rel in sorted(graph):
            if colour[rel] == WHITE:
                visit(rel)
        return findings

