"""Hot-path allocation rule: no std::function in the packet-path subsystems.

The packet-path overhaul (DESIGN.md §14) replaced `std::function` with
`util::small_function<Sig, Capacity>` throughout src/sim, src/core and
src/stream: `std::function` promises to hold *any* callable, so non-tiny
captures heap-allocate, and on the packet hot loop (sim callbacks, sender
hooks, drop observers) those allocations dominated the profile. This rule
makes the conversion structural — naming `std::function` in one of the
hot-path subsystems fails the lint the moment it is written, so a future
convenience lambda cannot quietly reintroduce per-event allocation. Cold
paths with a genuine need (recursive self-reference, unbounded captures)
take a `// lint:allow(std-function)` waiver with a justification; code in
other subsystems (exec, cache, shard, systems fan-out plumbing) is out of
scope by design.
"""

from __future__ import annotations

import re
from typing import Iterable, Tuple

from cflint.model import Finding, Project, Rule, SourceFile

# Repo-relative prefixes where std::function is banned. Prefix-scoped (not
# component-scoped) so a look-alike directory elsewhere (tests/sim fixtures,
# examples) never trips the rule.
HOT_PATH_PREFIXES: Tuple[str, ...] = ("src/sim/", "src/core/", "src/stream/")

_PATTERN = re.compile(r"\bstd\s*::\s*function\b")


class StdFunctionRule(Rule):
    id = "std-function"
    description = (
        "std::function inside the hot-path subsystems (src/sim, src/core, "
        "src/stream) heap-allocates for non-tiny captures; use "
        "util::small_function with an explicit capacity, or waive with a "
        "justification for a genuinely cold path."
    )

    def check_file(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if not sf.rel.startswith(HOT_PATH_PREFIXES):
            return
        for lineno, code in enumerate(sf.code_lines, start=1):
            m = _PATTERN.search(code)
            if m:
                yield Finding(
                    rule=self.id,
                    rel=sf.rel,
                    line=lineno,
                    col=m.start() + 1,
                    message=(
                        "std::function on the packet hot path allocates for "
                        "non-tiny captures; use util::small_function "
                        "(DESIGN.md §14)"
                    ),
                    snippet=sf.raw_line(lineno),
                )
