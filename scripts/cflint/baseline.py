"""Committed baseline for grandfathered findings.

A baseline entry fingerprints a finding by (rule, path, normalised line
text) — deliberately *not* by line number, so unrelated edits shifting a
file do not churn the baseline, while any edit to the offending line
itself un-baselines the finding and forces a fresh look.

Policy: the committed baseline (scripts/cflint/baseline.json) is empty and
should stay that way — fix findings or waive them with a justification.
`--write-baseline` exists for the migration story when a *new rule* lands
against a tree with pre-existing findings too numerous to fix in the same
PR; the baseline is then a debt ledger burned down in follow-ups, and CI
fails on any finding not in it (so the debt can only shrink).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from cflint.model import Finding, Project

FORMAT_VERSION = 1


def fingerprint(f: Finding, project: Project) -> str:
    sf = project.by_rel.get(f.rel)
    line_text = sf.raw_line(f.line).strip() if sf else ""
    blob = f"{f.rule}\0{f.rel}\0{line_text}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def load(path: Path) -> Dict[str, dict]:
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    return {e["fingerprint"]: e for e in data.get("findings", [])}


def save(path: Path, findings: Sequence[Finding], project: Project) -> None:
    entries = [
        {
            "fingerprint": fingerprint(f, project),
            "rule": f.rule,
            "path": f.rel,
            "line": f.line,  # informational; matching is by fingerprint
            "message": f.message,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    path.write_text(
        json.dumps(
            {"version": FORMAT_VERSION, "findings": entries}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )


def split(
    findings: Sequence[Finding], baseline: Dict[str, dict], project: Project
) -> Tuple[List[Finding], List[Finding]]:
    """(new, baselined)."""
    new: List[Finding] = []
    old: List[Finding] = []
    for f in findings:
        (old if fingerprint(f, project) in baseline else new).append(f)
    return new, old
