"""cflint — token-aware static analysis for the CloudFog reproduction.

Every figure this repo produces is contractually a pure function of
(config, seed). cflint is the analysis layer that keeps it that way as the
codebase grows threads, sockets, and caches: a C++-aware lexer (comments,
string literals, char literals, and raw strings are stripped before any
rule runs, killing the regex-on-raw-text false-positive class), a rule
engine with per-rule fixtures under tests/cflint/fixtures/, machine-readable
SARIF 2.1.0 output for GitHub code scanning, and a committed baseline for
grandfathered findings (kept empty — fix findings, don't baseline them).

Rule families (see scripts/cflint/rules/):
  determinism  — wall-clock, libc-rand, random-device, unseeded-engine,
                 unordered-iter, float-accum, raw-thread (ported from the
                 retired scripts/lint_determinism.py, now token-aware).
  layering     — include-graph DAG between subsystems plus file-level
                 include-cycle detection.
  trust        — trust-boundary coverage: public mutating methods of the
                 CF_CHECK-guarded classes must validate their inputs.
  waivers      — stale-waiver and waiver-justification hygiene for the
                 `// lint:allow(<rule>)` escape hatch.

Run it:  python3 scripts/cflint [ROOT ...]        (default: src bench tests
examples, resolved against the repo root).  See DESIGN.md §10.
"""

__version__ = "1.0.0"
