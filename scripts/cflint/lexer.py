"""C++-aware scrubbing lexer.

The single job of this module is to separate *code* from *text* before any
rule pattern runs. `scrub()` walks a translation unit once with a small
state machine and returns:

  * `code`   — the source with every comment, string literal, char literal,
               and raw string replaced by spaces. Newlines and column
               positions are preserved exactly, so findings computed on the
               scrubbed text carry line/column numbers valid for the
               original file.
  * `comments` — every comment as (line, col, text) with the `//` / `/* */`
               markers removed; the waiver pass parses `lint:allow(...)`
               out of these, so a waiver inside a string literal is *not*
               a waiver.

Handled syntax: `//` and `/* */` comments, `"..."` strings with escapes,
`'...'` char literals with escapes, encoding prefixes (u8, u, U, L), raw
strings `R"delim(...)delim"` including prefixed forms, and C++14 digit
separators (`1'000'000` must not open a char literal). Preprocessor
continuation lines need no special casing: the state machine is
line-agnostic except for terminating `//` comments at newline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

# Longest raw-string delimiter the standard allows is 16 chars.
_MAX_RAW_DELIM = 16

_ENCODING_PREFIXES = ("u8", "u", "U", "L")


@dataclass(frozen=True)
class Comment:
    """One comment with its content (markers stripped, inner text verbatim)."""

    line: int  # 1-based line of the comment's first character
    col: int  # 1-based column of the comment's first character
    text: str


@dataclass(frozen=True)
class ScrubResult:
    code: str
    comments: Tuple[Comment, ...]


def _is_ident(c: str) -> bool:
    return c.isalnum() or c == "_"


def _raw_string_prefix_at(text: str, i: int) -> int:
    """Length of the raw-string opener at i (e.g. 2 for `R"`, 4 for `u8R"`),
    or 0 if text[i:] does not open a raw string literal."""
    for pre in ("", *_ENCODING_PREFIXES):
        j = i + len(pre)
        if (
            text.startswith(pre, i)
            and text.startswith('R"', j)
            # An identifier char before the prefix means we are inside a
            # longer identifier (e.g. `FOR"` or `myR"` is not a raw string).
            and not (i > 0 and _is_ident(text[i - 1]))
        ):
            return len(pre) + 2
    return 0


def _is_digit_separator(text: str, i: int) -> bool:
    """True when the `'` at i is a C++14 digit separator, not a char
    literal opener: it sits between two digit-ish characters inside a
    numeric literal (1'000'000, 0xFF'FFu)."""
    if i == 0 or i + 1 >= len(text):
        return False
    prev, nxt = text[i - 1], text[i + 1]
    digitish = "0123456789abcdefABCDEF"
    return prev in digitish and nxt in digitish and _numeric_context(text, i)


def _numeric_context(text: str, i: int) -> bool:
    """Walk left over [0-9a-fA-F'.] — a digit separator's run must begin
    with a decimal digit (identifiers like `abc'x'` must not qualify)."""
    j = i - 1
    while j >= 0 and (text[j] in "0123456789abcdefABCDEFxX.'"):
        j -= 1
    return j + 1 < len(text) and text[j + 1].isdigit()


def scrub(text: str) -> ScrubResult:
    """Blank comments/strings/chars out of `text`; collect comments."""
    n = len(text)
    out = list(text)
    comments: List[Comment] = []

    line = 1
    col = 1
    i = 0

    def blank(j: int) -> None:
        if out[j] != "\n":
            out[j] = " "

    while i < n:
        c = text[i]

        # ---- line comment ------------------------------------------------
        if c == "/" and text.startswith("//", i):
            start = i
            start_line, start_col = line, col
            while i < n and text[i] != "\n":
                blank(i)
                i += 1
                col += 1
            comments.append(
                Comment(start_line, start_col, text[start + 2 : i].strip())
            )
            continue

        # ---- block comment -----------------------------------------------
        if c == "/" and text.startswith("/*", i):
            start = i
            start_line, start_col = line, col
            i += 2
            col += 2
            while i < n and not text.startswith("*/", i):
                if text[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            end = i
            if i < n:  # consume the closer
                i += 2
                col += 2
            for j in range(start, min(i, n)):
                blank(j)
            inner = text[start + 2 : end]
            # Normalise leading ` * ` gutters so justification text and
            # waivers read the same from both comment styles.
            cleaned = "\n".join(
                ln.strip().lstrip("*").strip() for ln in inner.splitlines()
            ).strip()
            comments.append(Comment(start_line, start_col, cleaned))
            continue

        # ---- raw string literal ------------------------------------------
        opener = _raw_string_prefix_at(text, i)
        if opener:
            start = i
            i += opener
            col += opener
            delim_start = i
            while (
                i < n
                and text[i] != "("
                and i - delim_start <= _MAX_RAW_DELIM
            ):
                i += 1
                col += 1
            delim = text[delim_start:i]
            closer = ")" + delim + '"'
            end = text.find(closer, i)
            end = n if end < 0 else end + len(closer)
            while i < end:
                if text[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            for j in range(start, end):
                blank(j)
            continue

        # ---- ordinary string literal (incl. encoding prefixes) ----------
        if c == '"' or (
            c in "uUL"
            and not (i > 0 and _is_ident(text[i - 1]))
            and any(
                text.startswith(pre + '"', i) for pre in _ENCODING_PREFIXES
            )
        ):
            start = i
            while i < n and text[i] != '"':  # skip prefix
                i += 1
                col += 1
            i += 1  # opening quote
            col += 1
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    i += 2
                    col += 2
                    continue
                if text[i] == "\n":  # unterminated (ill-formed); bail out
                    break
                i += 1
                col += 1
            if i < n and text[i] == '"':
                i += 1
                col += 1
            for j in range(start, i):
                blank(j)
            continue

        # ---- char literal / digit separator ------------------------------
        if c == "'":
            if _is_digit_separator(text, i):
                i += 1
                col += 1
                continue
            start = i
            i += 1
            col += 1
            while i < n and text[i] != "'":
                if text[i] == "\\" and i + 1 < n:
                    i += 2
                    col += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
                col += 1
            if i < n and text[i] == "'":
                i += 1
                col += 1
            for j in range(start, i):
                blank(j)
            continue

        # ---- everything else ---------------------------------------------
        if c == "\n":
            line += 1
            col = 1
        else:
            col += 1
        i += 1

    return ScrubResult(code="".join(out), comments=tuple(comments))
