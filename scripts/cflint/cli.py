"""cflint command-line interface.

    python3 scripts/cflint [ROOT ...] [--sarif out.sarif] [options]

Roots default to src bench tests examples, resolved against the repo root
(the parent of scripts/). Exit codes keep the retired lint's contract:
0 = clean, 1 = findings, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from cflint import __version__, baseline as baseline_mod, sarif
from cflint.engine import META_RULE_DESCRIPTIONS, Report, analyze
from cflint.rules import ALL_RULES

DEFAULT_ROOTS = ("src", "bench", "tests", "examples")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cflint",
        description=(
            "Token-aware static analysis for the CloudFog reproduction: "
            "determinism, include layering, trust-boundary coverage, "
            "waiver hygiene. See DESIGN.md §10."
        ),
    )
    p.add_argument(
        "roots",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_ROOTS)})",
    )
    p.add_argument(
        "--repo-root",
        type=Path,
        default=None,
        help="repository root (default: autodetected from this script)",
    )
    p.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a SARIF 2.1.0 report (GitHub code scanning) to PATH",
    )
    p.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="baseline file (default: scripts/cflint/baseline.json)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to grandfather all current findings "
            "(migration aid for landing a new rule; the committed "
            "baseline is kept empty — see DESIGN.md §10)"
        ),
    )
    p.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also scan tests/cflint/fixtures (self-test use only)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    p.add_argument(
        "--version", action="version", version=f"cflint {__version__}"
    )
    return p


def _print_rules() -> None:
    width = max(len(r.id) for r in ALL_RULES)
    width = max(width, *(len(k) for k in META_RULE_DESCRIPTIONS))
    for r in ALL_RULES:
        print(f"  {r.id:<{width}}  {r.description}")
    for rid, desc in META_RULE_DESCRIPTIONS.items():
        print(f"  {rid:<{width}}  {desc}")


def _summarise(report: Report) -> None:
    n_files = len(report.project.files)
    if report.findings:
        print(f"cflint: {len(report.findings)} finding(s)\n")
        for f in report.findings:
            print(f.render())
        print(
            "\nFix the finding, or waive a deliberate use with "
            "'// lint:allow(<rule>)' plus a justification comment "
            "(waivers that suppress nothing, or say nothing, are "
            "themselves findings — DESIGN.md §10)."
        )
    extras: List[str] = []
    if report.waived:
        extras.append(f"{len(report.waived)} waived")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    suffix = f" ({', '.join(extras)})" if extras else ""
    status = "clean" if report.clean else "NOT clean"
    print(f"cflint: {n_files} file(s) scanned, {status}{suffix}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    root = (args.repo_root or repo_root()).resolve()
    roots = [Path(r) for r in (args.roots or DEFAULT_ROOTS)]
    baseline_path = args.baseline or root / "scripts" / "cflint" / "baseline.json"

    try:
        report = analyze(
            root,
            roots,
            baseline_path=None if args.no_baseline else baseline_path,
            exclude_fixtures=not args.include_fixtures,
        )
    except ValueError as exc:  # malformed baseline
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline_mod.save(baseline_path, report.findings, report.project)
        print(
            f"cflint: wrote {len(report.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    if args.sarif is not None:
        args.sarif.write_text(
            sarif.render(
                # Code scanning sees new + baselined (baselined results
                # carry their fingerprint, so alerts dedupe); the exit
                # code gates only on new findings.
                list(report.findings) + list(report.baselined),
                ALL_RULES,
                META_RULE_DESCRIPTIONS,
                report.project,
            ),
            encoding="utf-8",
        )

    _summarise(report)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
