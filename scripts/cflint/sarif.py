"""SARIF 2.1.0 emitter for GitHub code scanning.

Emits the subset code scanning consumes: one run, tool.driver with the
full rule table (so rules with zero findings still appear in the UI),
results with physical locations, and partialFingerprints keyed to the
baseline fingerprint so alert identity survives line drift.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from cflint import __version__
from cflint.baseline import fingerprint
from cflint.model import Finding, Project, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
INFO_URI = "https://github.com/cloudfog/cloudfog"  # DESIGN.md §10


def _rule_descriptor(rule_id: str, description: str) -> dict:
    return {
        "id": rule_id,
        "shortDescription": {"text": description.split(". ")[0]},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
        "help": {
            "text": (
                f"{description}\n\nWaive a deliberate use with "
                f"'// lint:allow({rule_id})' plus a justification comment; "
                "see DESIGN.md §10 for the waiver policy."
            )
        },
    }


def render(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    meta_rules: Dict[str, str],
    project: Project,
) -> str:
    rule_descriptors: List[dict] = [
        _rule_descriptor(r.id, r.description) for r in rules
    ]
    for rid, desc in meta_rules.items():
        rule_descriptors.append(_rule_descriptor(rid, desc))
    index = {d["id"]: i for i, d in enumerate(rule_descriptors)}

    results = []
    for f in sorted(findings, key=Finding.sort_key):
        result = {
            "ruleId": f.rule,
            "ruleIndex": index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.rel,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "cflint/v1": fingerprint(f, project)
            },
        }
        if f.snippet.strip():
            result["locations"][0]["physicalLocation"]["region"][
                "snippet"
            ] = {"text": f.snippet.strip()}
        results.append(result)

    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "cflint",
                        "version": __version__,
                        "informationUri": INFO_URI,
                        "rules": rule_descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "uri": project.root.resolve().as_uri() + "/"
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(doc, indent=2) + "\n"
