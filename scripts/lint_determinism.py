#!/usr/bin/env python3
"""Determinism lint for the CloudFog discrete-event simulator.

Every figure in the paper reproduction is a function of (config, seed) and
nothing else; this lint statically rejects the constructs that break that
contract. It runs as a ctest test and in CI, and exits non-zero when any
source file under the given roots matches a rule without an inline waiver.

Rule table
==========
  wall-clock       std::time / time(...) / std::chrono::system_clock /
                   steady_clock::now / high_resolution_clock — simulation
                   time must come from sim::Simulator::now(), never the host.
  libc-rand        rand() / srand() / random() — unseeded global state, and
                   implementation-defined sequences across libcs.
  random-device    std::random_device — nondeterministic by design; seed
                   util::Rng from the experiment config instead.
  unseeded-engine  std::mt19937/minstd_rand/default_random_engine constructed
                   without an explicit seed expression — the default seed is
                   fixed but engine choice belongs in util::Rng, where streams
                   are label-forked so adding a consumer can't shift others.
  unordered-iter   range-for over a std::unordered_map/unordered_set member —
                   bucket order is libstdc++-version- and ASLR-dependent, so
                   anything it feeds (event scheduling, aggregates, output)
                   can differ run to run. Iterate a sorted or insertion-order
                   mirror (see SupernodeManager::roster_) instead.
  float-accum      std::accumulate over floating-point without an explicitly
                   ordered container comment — FP addition is non-associative,
                   so reduction order must be pinned. Flagged only when the
                   call site names an unordered container.
  raw-thread       std::thread / std::jthread / std::async outside src/exec/ —
                   ad-hoc threading breaks the bit-identical-results contract
                   (completion-order aggregation, racy instrument caches).
                   Parallelism goes through exec::RunExecutor, which pins
                   result consumption to submission order and scopes metric
                   registries per run. (std::thread::id is allowed: naming the
                   current thread is not creating one.)
  obs-clock        (waiver, not a rule) wall-clock findings in files under an
                   obs/ directory are auto-waived: src/obs is the repo's
                   designated wall-clock boundary (scoped timers, bench wall
                   time), and its instruments are pure sinks that never feed
                   simulation state (see DESIGN.md §7). Everywhere else the
                   wall-clock rule stays in force, so timing code cannot leak
                   out of the obs subsystem without tripping the lint.

Escape hatch
============
A finding is waived by appending `// lint:allow(<rule>)` to the offending
line (or the line above it), e.g.:

    auto wall = std::chrono::steady_clock::now();  // lint:allow(wall-clock)

Waivers are for measurement harnesses (bench wall-time reporting) and code
that provably does not influence simulation state. Each waiver should carry
a justification comment nearby.

Usage:  scripts/lint_determinism.py [ROOT ...]   (default: src/)
        exit 0 = clean, 1 = findings, 2 = usage/IO error
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}

# rule name -> (regex, human message)
RULES: dict[str, tuple[re.Pattern[str], str]] = {
    "wall-clock": (
        re.compile(
            r"std::time\s*\(|[^:\w]time\s*\(\s*(?:NULL|nullptr|0|&)"
            r"|system_clock|steady_clock\s*::\s*now|high_resolution_clock"
        ),
        "host wall-clock read; use sim::Simulator::now() for simulation time",
    ),
    "libc-rand": (
        re.compile(r"(?<![\w:])s?rand\s*\(|(?<![\w:])random\s*\(\s*\)"),
        "libc PRNG has global, implementation-defined state; use util::Rng",
    ),
    "random-device": (
        re.compile(r"std::random_device"),
        "std::random_device is nondeterministic; seed util::Rng from config",
    ),
    "unseeded-engine": (
        re.compile(
            r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)"
            r"\s+\w+\s*(?:;|\{\s*\})"
        ),
        "unseeded std engine; derive a util::Rng stream via fork(label)",
    ),
    "unordered-iter": (
        re.compile(
            r"for\s*\(\s*(?:const\s+)?auto\s*&?&?\s*(?:\[[^\]]*\]|\w+)\s*:\s*"
            r"\w*(?:unordered_|umap_|uset_)\w*"
        ),
        "iteration order of unordered containers is not reproducible; "
        "iterate a sorted/insertion-order mirror",
    ),
    "float-accum": (
        re.compile(
            r"std::accumulate\s*\([^;]*unordered_[^;]*(?:0\.0?f?|\w+\.0)"
        ),
        "floating-point reduction over an unordered range; order must be "
        "pinned before summing",
    ),
    "raw-thread": (
        re.compile(r"std::(?:jthread|async)\b|std::thread\b(?!\s*::\s*id)"),
        "raw threading outside src/exec breaks bit-identical results; fan "
        "work through exec::RunExecutor",
    ),
}

ALLOW = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Path-scoped waivers ("obs-clock"): rules that do not apply inside the
# observability subsystem, the repo's one sanctioned wall-clock boundary.
# Likewise src/exec is the one sanctioned thread boundary: RunExecutor owns
# every worker thread in the repo (see exec/run_executor.h).
# Matching is by directory name so the waiver follows the subsystem if the
# tree is ever re-rooted, and never applies to a look-alike file elsewhere.
PATH_WAIVERS: dict[str, frozenset[str]] = {
    "obs": frozenset({"wall-clock"}),
    "exec": frozenset({"raw-thread"}),
}


def path_waived_rules(path: Path) -> frozenset[str]:
    waived: set[str] = set()
    for part in path.parts[:-1]:
        waived |= PATH_WAIVERS.get(part, frozenset())
    return frozenset(waived)


def waived_rules(line: str) -> set[str]:
    m = ALLOW.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string literals and // comments so patterns in
    documentation text don't trip the lint. Keeps the line length roughly
    stable; block comments spanning lines are handled by the caller."""
    out: list[str] = []
    i, n = 0, len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path) -> list[str]:
    findings: list[str] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)

    in_block_comment = False
    file_waivers = path_waived_rules(path)
    prev_waivers: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        # Track /* ... */ block comments (line-granular: a line that opens a
        # block comment is scanned only up to the opener).
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                prev_waivers = set()
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and "*/" not in line[start:]:
            in_block_comment = True
            line = line[:start]

        waivers = waived_rules(raw) | prev_waivers | file_waivers
        prev_waivers = waived_rules(raw) if raw.strip().startswith("//") else set()

        code = strip_comments_and_strings(line)
        if not code.strip():
            continue
        for rule, (pattern, message) in RULES.items():
            if rule in waivers:
                continue
            if pattern.search(code):
                findings.append(
                    f"{path}:{lineno}: [{rule}] {message}\n"
                    f"    {raw.strip()}"
                )
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or [Path("src")]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(
                p
                for p in sorted(root.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES and p.is_file()
            )
        else:
            print(f"error: no such file or directory: {root}", file=sys.stderr)
            return 2

    if not files:
        print("error: no C++ sources found under given roots", file=sys.stderr)
        return 2

    all_findings: list[str] = []
    for f in files:
        all_findings.extend(lint_file(f))

    if all_findings:
        print(f"lint_determinism: {len(all_findings)} finding(s)\n")
        print("\n".join(all_findings))
        print(
            "\nWaive a deliberate use with '// lint:allow(<rule>)' on the "
            "offending line and justify it in a nearby comment."
        )
        return 1

    print(f"lint_determinism: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
