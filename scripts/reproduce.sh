#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every figure/ablation
# bench, and all examples, teeing outputs next to the repo root.
#
# Usage:
#   scripts/reproduce.sh            # paper scale (~3 min of benches)
#   CLOUDFOG_BENCH_FAST=1 scripts/reproduce.sh   # smoke scale
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "== examples (smoke) =="
for e in build/examples/*; do
  echo "--- $e ---"
  "$e" > /dev/null && echo ok
done

echo
echo "Done. See test_output.txt and bench_output.txt."
