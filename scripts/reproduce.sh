#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every figure/ablation
# bench, and all examples, teeing outputs next to the repo root.
#
# Usage:
#   scripts/reproduce.sh                          # paper scale (~3 min of benches)
#   CLOUDFOG_BENCH_FAST=1 scripts/reproduce.sh    # smoke scale
#   BUILD_DIR=build-release scripts/reproduce.sh  # custom build tree
#   CLOUDFOG_BENCH_JOBS=8 scripts/reproduce.sh    # parallel sweeps, 8 workers
#
# CLOUDFOG_BENCH_JOBS fans each bench's seed×config sweep across that many
# worker threads (default: all cores). Output is bit-identical at any value
# — see DESIGN.md §9 — so use every core you have.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
# Default the sweep width to the machine; honour an explicit setting.
export CLOUDFOG_BENCH_JOBS="${CLOUDFOG_BENCH_JOBS:-$(nproc 2>/dev/null || echo 1)}"
echo "reproduce.sh: sweeps run with CLOUDFOG_BENCH_JOBS=$CLOUDFOG_BENCH_JOBS"

die() {
  echo "reproduce.sh: error: $*" >&2
  exit 1
}

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

# The bench/example globs silently match nothing when the build layout
# changes; fail loudly instead of "reproducing" an empty result set.
shopt -s nullglob
benches=("$BUILD_DIR"/bench/*)
examples=("$BUILD_DIR"/examples/*)
shopt -u nullglob
[[ ${#benches[@]} -gt 0 ]] || die "no bench binaries under $BUILD_DIR/bench/"
[[ ${#examples[@]} -gt 0 ]] || die "no example binaries under $BUILD_DIR/examples/"

{
  for b in "${benches[@]}"; do
    [[ -x "$b" ]] || die "bench binary missing or not executable: $b"
    "$b" || die "bench failed: $b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "== examples (smoke) =="
for e in "${examples[@]}"; do
  [[ -x "$e" ]] || die "example binary missing or not executable: $e"
  echo "--- $e ---"
  "$e" > /dev/null || die "example failed: $e"
  echo ok
done

echo
echo "Done. See test_output.txt and bench_output.txt."
