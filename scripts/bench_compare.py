#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts (obs/bench_harness.h schema).

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--max-regression 0.15]
                   [--report-only] [--require-speedup CASE=FACTOR ...]
                   [--speedup-min-cores N]

Diffs the per-case "benchmarks" section (ns/op; lower is better) of two
artifacts produced with `--bench-json`. For every key present in both files
it prints baseline, current, and the current/baseline ratio. The body
wall_ms mean is shown for context but never gates: it tracks
--benchmark_min_time and repeat counts, not code speed.

The "sweeps" section (whole-sweep wall-clock ms recorded by
bench::run_sweep and the figure binaries; lower is better) flattens to
`sweep/<label>` series. Sweep timings are machine-dependent, so they are
informational unless named in a --require-speedup constraint — the
intended use compares a --jobs=1 artifact against a --jobs=N artifact
from the *same* machine (the parallel-executor acceptance gate).

Exit status:
  0  no regression beyond --max-regression (default 15%), and every
     --require-speedup constraint met
  1  a shared case regressed by more than the threshold, or a required
     speedup was not achieved (suppressed by --report-only, which always
     exits 0 so CI can publish numbers from heterogeneous runners)
  2  bad invocation / unreadable input

A case present in only one file is reported as "(new)" / "(gone)" and never
fails the comparison — benchmark sets are allowed to grow.

--speedup-min-cores N drops every --require-speedup constraint (with a
notice) when the machine has fewer than N CPUs: a parallel-speedup gate is
meaningless on a box without the cores to show it.

Examples:
  # regression gate against the committed pre-optimization baseline
  python3 scripts/bench_compare.py BENCH_baseline.json BENCH_microbench.json

  # hot-path acceptance: event engine and assign at S=512 both >=3x
  python3 scripts/bench_compare.py BENCH_baseline.json BENCH_microbench.json \
      --require-speedup 'BM_SimulatorSteadyState=3' \
      --require-speedup 'BM_SupernodeAssign/512=3'

  # parallel-executor acceptance: fig6 fast-mode sweep >=3x at --jobs=8,
  # enforced only on runners with >= 8 cores
  python3 scripts/bench_compare.py BENCH_fig6_jobs1.json BENCH_fig6_jobs8.json \
      --require-speedup 'sweep/fig6_coverage=3' --speedup-min-cores 8
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def series(doc):
    """Flattens the comparable numbers of one artifact: per-case ns/op,
    per-sweep wall-clock ms, plus the body wall-time mean."""
    out = {}
    for name, value in (doc.get("benchmarks") or {}).items():
        if isinstance(value, (int, float)):
            out[name] = float(value)
    for name, value in (doc.get("sweeps") or {}).items():
        if isinstance(value, (int, float)):
            out[f"sweep/{name}"] = float(value)
    wall = doc.get("wall_ms") or {}
    if isinstance(wall.get("mean"), (int, float)) and wall["mean"] > 0:
        out["wall_ms.mean"] = float(wall["mean"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="fail when current > baseline * (1 + this) "
                             "[default 0.15]")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    parser.add_argument("--require-speedup", action="append", default=[],
                        metavar="CASE=FACTOR",
                        help="fail unless baseline/current >= FACTOR for CASE "
                             "(repeatable)")
    parser.add_argument("--speedup-min-cores", type=int, default=0,
                        metavar="N",
                        help="skip every --require-speedup constraint when "
                             "this machine has fewer than N CPUs")
    args = parser.parse_args()

    base_doc, cur_doc = load(args.baseline), load(args.current)
    base, cur = series(base_doc), series(cur_doc)

    required = {}
    for spec in args.require_speedup:
        case, sep, factor = spec.partition("=")
        if not sep:
            print(f"bench_compare: bad --require-speedup '{spec}'",
                  file=sys.stderr)
            sys.exit(2)
        required[case] = float(factor)

    cores = os.cpu_count() or 1
    if required and args.speedup_min_cores > cores:
        print(f"bench_compare: {cores} CPUs < --speedup-min-cores "
              f"{args.speedup_min_cores}; speedup constraints skipped")
        required = {}

    name_w = max([len(k) for k in set(base) | set(cur)] + [4])
    print(f"{'case':<{name_w}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  verdict")
    failures = []
    for name in sorted(set(base) | set(cur)):
        b, c = base.get(name), cur.get(name)
        if b is None:
            print(f"{name:<{name_w}}  {'(new)':>12}  {c:>12.2f}  {'':>7}")
            continue
        if c is None:
            print(f"{name:<{name_w}}  {b:>12.2f}  {'(gone)':>12}  {'':>7}")
            continue
        ratio = c / b if b > 0 else float("inf")
        verdict = ""
        if name in required:
            speedup = b / c if c > 0 else float("inf")
            if speedup >= required[name]:
                verdict = f"ok ({speedup:.1f}x >= {required[name]:g}x)"
            else:
                verdict = f"FAIL ({speedup:.2f}x < {required[name]:g}x)"
                failures.append(
                    f"{name}: speedup {speedup:.2f}x below required "
                    f"{required[name]:g}x")
        elif name == "wall_ms.mean" or name.startswith("sweep/"):
            # Whole-body wall time scales with --benchmark_min_time and
            # repeat counts; sweep wall-clock scales with the runner and
            # --jobs. Informational unless explicitly required above.
            verdict = "(informational)"
        elif ratio > 1.0 + args.max_regression:
            verdict = f"REGRESSED (> +{args.max_regression:.0%})"
            failures.append(
                f"{name}: {b:.2f} -> {c:.2f} "
                f"(+{(ratio - 1.0) * 100.0:.1f}%)")
        elif ratio < 1.0:
            verdict = f"{b / c:.2f}x faster"
        print(f"{name:<{name_w}}  {b:>12.2f}  {c:>12.2f}  {ratio:>7.3f}  "
              f"{verdict}")

    missing = [case for case in required if case not in base or case not in cur]
    for case in missing:
        failures.append(f"{case}: required case missing from an artifact")

    if failures:
        print("\nbench_compare: FAILURES" +
              (" (report-only: ignored)" if args.report_only else ""))
        for f in failures:
            print(f"  {f}")
        if not args.report_only:
            sys.exit(1)
    else:
        print("\nbench_compare: OK")


if __name__ == "__main__":
    main()
