// Quickstart: the smallest end-to-end use of the CloudFog library.
//
// Builds a compact world (1,000 players across the US, 3 datacenters,
// 60 supernodes), runs a 10-second streaming session under the plain Cloud
// model and under CloudFog/A, and prints the QoE comparison — the paper's
// headline claim in ~40 lines of user code.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "systems/streaming_sim.h"
#include "util/table.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main() {
  // 1. Describe the world. ScenarioParams defaults follow the paper's
  //    Section IV; here we shrink it so the example runs in ~2 seconds.
  ScenarioParams params = ScenarioParams::simulation_defaults(/*seed=*/7);
  params.num_players = 1'000;
  params.num_datacenters = 3;
  params.num_edge_servers = 5;
  params.num_supernodes = 100;
  params.dc_uplink_kbps = 250'000.0;  // a tightly provisioned small cloud

  // 2. Build it: topology, population, social graph, supernode selection
  //    and friend-driven game assignment all derive from the one seed.
  const Scenario scenario = Scenario::build(params);
  std::cout << "world: " << scenario.population().size() << " players, "
            << scenario.datacenters().size() << " datacenters, "
            << scenario.supernode_players().size() << " supernodes\n\n";

  // 3. Stream under each system and compare.
  StreamingOptions options;
  options.num_players = 400;
  options.warmup_ms = 2'000.0;
  options.duration_ms = 10'000.0;

  util::Table table("Cloud vs CloudFog on the same 400 players");
  table.set_header({"system", "mean response latency (ms)", "continuity",
                    "satisfied players", "cloud uplink (Mbps)"});
  for (SystemKind kind : {SystemKind::kCloud, SystemKind::kCloudFogA}) {
    const StreamingResult r = run_streaming(kind, scenario, options);
    table.add_row({to_string(kind),
                   util::format_double(r.mean_response_latency_ms, 1),
                   util::format_double(r.mean_continuity, 3),
                   util::format_double(r.satisfied_fraction, 3),
                   util::format_double(r.cloud_uplink_mbps, 1)});
  }
  std::cout << table.to_text();
  std::cout << "\nCloudFog serves most players from nearby supernodes: the"
               "\ncloud only computes game state and streams update feeds.\n";
  return 0;
}
