// Scenario example: a regional esports final floods one metro with players.
//
// The paper motivates CloudFog with exactly this failure mode: a localized
// demand spike saturates the (far-away, bandwidth-priced) cloud, while fog
// supernodes sit inside the hot metro and absorb the streaming load.
//
// We build a 4,000-player world, then pick an active set in which half of
// all players come from the single hottest metro, and compare Cloud,
// EdgeCloud and CloudFog/A on that spike.
#include <algorithm>
#include <iostream>
#include <map>

#include "systems/streaming_sim.h"
#include "util/table.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main() {
  ScenarioParams params = ScenarioParams::simulation_defaults(/*seed=*/21);
  params.num_players = 4'000;
  params.num_supernodes = 240;
  params.num_edge_servers = 18;
  params.dc_uplink_kbps = 600'000.0;
  const Scenario scenario = Scenario::build(params);

  // Find the most populous metro among our players.
  std::map<std::string, std::vector<std::size_t>> by_metro;
  for (std::size_t i = 0; i < scenario.population().size(); ++i) {
    by_metro[scenario.topology().host(scenario.player_host(i)).label]
        .push_back(i);
  }
  auto hottest = std::max_element(
      by_metro.begin(), by_metro.end(), [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  std::cout << "event metro: " << hottest->first << " ("
            << hottest->second.size() << " resident players)\n";

  // Active set: every player in the event metro plus an equal number of
  // background players from everywhere else.
  std::vector<std::size_t> active = hottest->second;
  util::Rng rng = scenario.fork_rng("event-background");
  for (std::size_t i = 0; i < scenario.population().size() &&
                          active.size() < 2 * hottest->second.size();
       ++i) {
    const std::size_t pick = rng.index(scenario.population().size());
    if (std::find(active.begin(), active.end(), pick) == active.end())
      active.push_back(pick);
  }
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());
  std::cout << "active players during the event: " << active.size() << "\n\n";

  StreamingOptions options;
  options.explicit_players = active;
  options.warmup_ms = 2'000.0;
  options.duration_ms = 10'000.0;

  util::Table table("QoE during the regional spike");
  table.set_header({"system", "mean latency (ms)", "p95 (ms)", "continuity",
                    "satisfied", "cloud Mbps", "served by fog/edge"});
  for (SystemKind kind : {SystemKind::kCloud, SystemKind::kEdgeCloud,
                          SystemKind::kCloudFogA}) {
    const StreamingResult r = run_streaming(kind, scenario, options);
    table.add_row(
        {to_string(kind), util::format_double(r.mean_response_latency_ms, 1),
         util::format_double(r.p95_response_latency_ms, 1),
         util::format_double(r.mean_continuity, 3),
         util::format_double(r.satisfied_fraction, 3),
         util::format_double(r.cloud_uplink_mbps, 1),
         std::to_string(r.supernode_supported + r.edge_supported)});
  }
  std::cout << table.to_text();
  std::cout << "\nSupernodes recruited from the event metro's own players"
               "\nkeep the spike off the cloud uplink entirely.\n";
  return 0;
}
