// Full-stack tour: every layer of the reproduction composed in one run.
//
//   1. A Scenario builds the US topology, population and supernode pool.
//   2. The cloud runs the VirtualWorld at 30 ticks/s; avatars of the
//      online players move and fight; a kd-tree partitions state
//      computation across the 5 datacenters.
//   3. Players attach to supernodes through the SessionManager
//      (Section III-A3 + backups); the InterestManager filters each tick's
//      delta into per-supernode update feeds — the measured Lambda.
//   4. The streaming simulation then evaluates the QoE this fog delivers
//      against the plain Cloud model.
//
// The point: the update-feed bandwidth assumed by the analytic experiments
// (Lambda) and the supernode assignment driving the streaming results come
// from the same mechanically-simulated stack.
#include <iostream>

#include "core/session_manager.h"
#include "systems/streaming_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "world/interest.h"
#include "world/partition.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main() {
  // --- 1. the world people live in -----------------------------------------
  ScenarioParams params = ScenarioParams::simulation_defaults(/*seed=*/31);
  params.num_players = 2'000;
  params.num_supernodes = 140;
  params.dc_uplink_kbps = 300'000.0;
  const Scenario scenario = Scenario::build(params);
  std::cout << "scenario: " << scenario.population().size() << " players, "
            << scenario.supernode_players().size() << " supernodes\n";

  // --- 2+3. sessions, avatars, interest-filtered updates -------------------
  core::SessionManager sessions(scenario.topology(),
                                core::SupernodeManagerConfig{},
                                core::SessionManagerConfig{},
                                scenario.fork_rng("tour-sessions"));
  for (std::size_t sn : scenario.supernode_players()) {
    sessions.supernode_join(scenario.player_host(sn),
                            scenario.supernode_capacity(sn),
                            scenario.supernode_uplink_kbps(sn));
  }

  world::WorldConfig world_config;
  world_config.width = world_config.height = 4'000.0;
  world_config.region_size = 250.0;
  world::VirtualWorld vworld(world_config);
  util::Rng rng = scenario.fork_rng("tour-world");
  world::InterestManager interest(vworld, /*halo=*/1);

  // The first 800 players are online for the tour; each gets a session and
  // an avatar tracked by its serving supernode (cloud-served players are
  // fed directly and need no supernode subscription).
  std::size_t fog_served = 0;
  for (std::size_t p = 0; p < 800; ++p) {
    const NodeId host = scenario.player_host(p);
    const auto& session = sessions.player_join(host, scenario.player_game(p));
    const world::AvatarId avatar = vworld.spawn(rng);
    if (!session.on_cloud()) {
      interest.track(session.supernode, avatar);
      ++fog_served;
    }
  }
  std::cout << "sessions: " << fog_served << " fog-served, "
            << sessions.cloud_sessions() << " cloud-served\n";

  // Run 3 seconds of world time; measure the real update feeds.
  util::RunningStats lambda_kbps;
  std::vector<world::AvatarId> avatars;
  for (world::AvatarId a = 1; a <= 800; ++a) avatars.push_back(a);
  for (int t = 0; t < 90; ++t) {
    for (auto a : avatars) {
      if (rng.bernoulli(0.6)) {
        vworld.submit({a, world::ActionType::kMove, rng.uniform(-1.0, 1.0),
                       rng.uniform(-1.0, 1.0)});
      } else if (rng.bernoulli(0.1)) {
        vworld.submit({a, world::ActionType::kStrike, 0.0, 0.0});
      }
    }
    const auto delta = vworld.tick(rng);
    interest.refresh();
    const auto sizes = interest.feed_sizes(delta);
    if (interest.supernodes() > 0) {
      lambda_kbps.add(sizes.filtered_kbit * 30.0 /
                      static_cast<double>(interest.supernodes()));
    }
  }
  std::cout << "measured update feed per supernode (Lambda): "
            << util::format_double(lambda_kbps.mean(), 1) << " kbps vs "
            << util::format_double(params.update_stream_kbps, 1)
            << " kbps assumed by the analytic experiments\n";

  // kd-tree balance across the 5 datacenters' state servers.
  std::vector<world::Position> positions;
  for (auto a : avatars) positions.push_back(vworld.avatar(a).position);
  world::KdPartition kd(positions, /*depth=*/3);
  std::cout << "state-server imbalance with kd partitioning (8 servers): "
            << util::format_double(kd.stats(positions).imbalance(), 2)
            << " (1.0 = perfect)\n\n";

  // --- 4. the QoE this fog delivers -----------------------------------------
  StreamingOptions options;
  options.num_players = 800;
  options.warmup_ms = 2'000.0;
  options.duration_ms = 8'000.0;
  util::Table table("QoE: plain Cloud vs the full CloudFog stack");
  table.set_header({"system", "mean latency (ms)", "continuity", "satisfied",
                    "cloud Mbps"});
  for (SystemKind kind : {SystemKind::kCloud, SystemKind::kCloudFogA}) {
    const StreamingResult r = run_streaming(kind, scenario, options);
    table.add_row({to_string(kind),
                   util::format_double(r.mean_response_latency_ms, 1),
                   util::format_double(r.mean_continuity, 3),
                   util::format_double(r.satisfied_fraction, 3),
                   util::format_double(r.cloud_uplink_mbps, 1)});
  }
  std::cout << table.to_text();
  return 0;
}
