// Substrate example: the PlanetLab-style measurement workflow.
//
// Builds the 750-host PlanetLab-profile topology (Princeton + UCLA as the
// cloud hosts), runs a "measurement campaign" to produce a pairwise latency
// trace, saves it, reloads it, and prints the latency distributions the
// simulation profile is calibrated against — the same role the PlanetLab
// trace plays for the paper's PeerSim runs.
//
// Usage: latency_trace_tool [output-path]
#include <iostream>

#include "net/trace.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cloudfog;
using namespace cloudfog::net;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/cloudfog_planetlab_trace.txt";

  // Keep the host count moderate: a dense 200x200 matrix is plenty to show
  // the distribution and keeps the text trace small.
  Topology topo = build_planetlab_topology(/*num_hosts=*/200, /*seed=*/3);
  util::Rng rng(3);
  const LatencyTrace trace = LatencyTrace::measure(topo, rng);
  trace.save_file(path);
  const LatencyTrace loaded = LatencyTrace::load_file(path);
  std::cout << "measured " << trace.size() << "x" << trace.size()
            << " one-way latency matrix, saved to " << path << "\n\n";

  // Distribution of host-to-host and host-to-datacenter latencies.
  util::SampleSet peer, to_dc;
  const auto players = topo.hosts_with_role(HostRole::kPlayer);
  const auto dcs = topo.hosts_with_role(HostRole::kDatacenter);
  for (std::size_t i = 0; i < players.size(); ++i) {
    for (std::size_t j = i + 1; j < players.size(); ++j)
      peer.add(loaded.one_way_ms(players[i], players[j]));
    for (NodeId dc : dcs) to_dc.add(loaded.one_way_ms(players[i], dc));
  }

  util::Table table("PlanetLab-profile one-way latency distribution (ms)");
  table.set_header({"pair class", "p10", "median", "p90", "p99", "max"});
  auto row = [&](const char* name, util::SampleSet& s) {
    table.add_row({name, util::format_double(s.percentile(10), 1),
                   util::format_double(s.median(), 1),
                   util::format_double(s.percentile(90), 1),
                   util::format_double(s.percentile(99), 1),
                   util::format_double(s.max(), 1)});
  };
  row("host <-> host", peer);
  row("host <-> cloud (Princeton/UCLA)", to_dc);
  std::cout << table.to_text();

  // A small ASCII histogram of peer latencies.
  util::Histogram hist(0.0, 120.0, 12);
  for (double v : peer.samples()) hist.add(v);
  std::cout << "\npeer one-way latency histogram (10 ms buckets):\n"
            << hist.render(40);
  return 0;
}
