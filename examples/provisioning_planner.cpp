// Scenario example: a game service provider plans a supernode deployment.
//
// Uses the Section III-A economics end to end:
//   1. candidate supernodes come from the scenario's capable players, with
//      real upload capacities and coverage gains measured on the topology;
//   2. the greedy Eq (6) rule picks which offers to accept;
//   3. Eqs (1)-(5) validate that the market clears: contributors profit,
//      the provider saves, the capacity constraint holds;
//   4. the resulting deployment's coverage is verified with the coverage
//      experiment.
#include <algorithm>
#include <iostream>

#include "core/incentive.h"
#include "systems/coverage.h"
#include "util/table.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main() {
  ScenarioParams params = ScenarioParams::simulation_defaults(/*seed=*/5);
  params.num_players = 3'000;
  params.num_datacenters = 5;
  params.num_supernodes = 220;  // the candidate pool under consideration
  const Scenario scenario = Scenario::build(params);

  core::IncentiveParams pricing;
  pricing.reward_per_kbps = 0.1;   // c_s: what the provider pays
  pricing.value_per_kbps = 1.0;    // c_c: what saved cloud bandwidth is worth
  pricing.stream_rate_kbps = 900.0;

  // Build offers from the scenario's real candidate supernodes. The
  // coverage gain of a candidate ~ how many otherwise-uncovered players sit
  // within a tight streaming radius of it.
  const auto& topo = scenario.topology();
  const auto dcs = scenario.datacenters();
  std::vector<core::SupernodeOffer> offers;
  util::Rng rng = scenario.fork_rng("planner");
  for (std::size_t sn : scenario.supernode_players()) {
    core::SupernodeOffer offer;
    const NodeId host = scenario.player_host(sn);
    offer.host = host;
    offer.upload_kbps = scenario.supernode_uplink_kbps(sn);
    offer.utilization = 0.8;
    offer.contributor_cost = offer.upload_kbps * rng.uniform(0.03, 0.12);
    double gain = 0.0;
    // Sample 150 players: those far from every DC but close to this host.
    for (int s = 0; s < 150; ++s) {
      const std::size_t p = rng.index(scenario.population().size());
      const NodeId ph = scenario.player_host(p);
      const TimeMs dc_rtt = topo.expected_rtt_ms(ph, topo.nearest(ph, dcs));
      const TimeMs sn_rtt = topo.expected_server_rtt_ms(host, ph);
      if (dc_rtt > 70.0 && sn_rtt <= 70.0) gain += 1.0;
    }
    offer.new_players_covered =
        gain / 150.0 * static_cast<double>(scenario.population().size()) /
        40.0;  // scale: each supernode can actually serve ~its capacity
    offer.new_players_covered =
        std::min(offer.new_players_covered,
                 static_cast<double>(scenario.supernode_capacity(sn)));
    offers.push_back(offer);
  }

  // A contributor only participates when Eq (1) clears its costs; filter
  // unwilling offers before the provider's greedy pass.
  std::vector<core::SupernodeOffer> willing;
  for (const auto& o : offers) {
    if (core::supernode_profit(pricing, o.upload_kbps, o.utilization,
                               o.contributor_cost) > 0.0) {
      willing.push_back(o);
    }
  }
  const auto accepted = core::greedy_deployment(pricing, willing);
  std::cout << "candidate supernodes: " << offers.size() << ", willing (Eq 1): "
            << willing.size() << ", accepted by Eq (6): " << accepted.size()
            << "\n\n";

  // Market-clearing report.
  double total_gain = 0.0, total_contrib_profit = 0.0, covered = 0.0;
  std::vector<core::SupernodeOffer> deployed;
  for (std::size_t i : accepted) {
    const auto& o = willing[i];
    deployed.push_back(o);
    total_gain += core::marginal_gain(pricing, o);
    total_contrib_profit += core::supernode_profit(
        pricing, o.upload_kbps, o.utilization, o.contributor_cost);
    covered += o.new_players_covered;
  }
  util::Table market("Market clearing (Eqs 1-6)");
  market.set_header({"quantity", "value"});
  market.add_row({"provider total marginal gain (Eq 6)",
                  util::format_double(total_gain, 0)});
  market.add_row({"contributor total profit (Eq 1)",
                  util::format_double(total_contrib_profit, 0)});
  market.add_row({"estimated newly covered players",
                  util::format_double(covered, 0)});
  market.add_row({"deployment feasible (Eqs 4-5)",
                  core::deployment_feasible(pricing, covered, deployed)
                      ? "yes"
                      : "no"});
  std::cout << market.to_text() << '\n';

  // Verify with the coverage experiment: base DCs vs base + deployment.
  CoverageConfig cc;
  cc.datacenter_counts = {5};
  cc.supernode_counts = {0, std::min(accepted.size(),
                                     scenario.supernode_players().size())};
  cc.latency_requirements = {50, 70, 110};
  cc.samples = 2;
  const auto result = measure_coverage(scenario, cc);
  util::Table verify("Coverage check: 5 DCs alone vs with the deployment");
  verify.set_header({"configuration", "50 ms", "70 ms", "110 ms"});
  verify.add_row({"datacenters only",
                  util::format_double(result.sn_sweep[0][0], 3),
                  util::format_double(result.sn_sweep[0][1], 3),
                  util::format_double(result.sn_sweep[0][2], 3)});
  verify.add_row({"with accepted supernodes",
                  util::format_double(result.sn_sweep[1][0], 3),
                  util::format_double(result.sn_sweep[1][1], 3),
                  util::format_double(result.sn_sweep[1][2], 3)});
  std::cout << verify.to_text();
  return 0;
}
