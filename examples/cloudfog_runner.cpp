// cloudfog_runner — the command-line experiment runner.
//
// Runs one streaming experiment with everything configurable from the
// command line and emits an aligned table plus optional CSV, e.g.:
//
//   cloudfog_sim --profile=sim --players=3000 --duration-s=8
//                --systems=cloud,edge,fog-b,fog-a --seed=1 --csv=out.csv
//
// Flags (defaults in brackets):
//   --profile=sim|planetlab    world profile                       [sim]
//   --systems=...              comma list: cloud,edge,fog-b,
//                              fog-adapt,fog-schedule,fog-a        [cloud,fog-a]
//   --players=N                concurrently playing players        [2000]
//   --population=N             total population                    [profile]
//   --supernodes=N             selected supernodes                 [profile]
//   --datacenters=N            datacenters                         [profile]
//   --dc-uplink-mbps=X         per-datacenter uplink               [profile]
//   --duration-s=X             measurement window                  [10]
//   --warmup-s=X               warmup                              [3]
//   --seed=N                   master seed                         [1]
//   --csv=PATH                 also write results as CSV
//
// Observability (all off by default; see obs/bench_harness.h):
//   --metrics-out=PATH         metrics dump (.json/.csv/.jsonl)
//   --trace-out=PATH           Chrome trace_event JSON (open in Perfetto)
//   --bench-json[=PATH]        BENCH_cloudfog_runner.json timing artifact
//   --bench-warmup=N --bench-repeats=N
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/bench_harness.h"
#include "systems/streaming_sim.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_system(const std::string& name, SystemKind* out) {
  if (name == "cloud") *out = SystemKind::kCloud;
  else if (name == "edge") *out = SystemKind::kEdgeCloud;
  else if (name == "fog-b") *out = SystemKind::kCloudFogB;
  else if (name == "fog-adapt") *out = SystemKind::kCloudFogAdapt;
  else if (name == "fog-schedule") *out = SystemKind::kCloudFogSchedule;
  else if (name == "fog-a") *out = SystemKind::kCloudFogA;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  std::vector<std::string> known{
      "profile", "systems",       "players",  "population", "supernodes",
      "datacenters", "dc-uplink-mbps", "duration-s", "warmup-s", "seed",
      "csv", "help"};
  for (const std::string& key : obs::bench_flag_keys()) known.push_back(key);
  if (flags.has("help")) {
    std::cout << "see the header comment of examples/cloudfog_runner.cpp\n";
    return 0;
  }
  const auto unknown = flags.unknown(known);
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unknown) std::cerr << " --" << k;
    std::cerr << "\n";
    return 2;
  }

  const std::string profile = flags.get("profile", "sim");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  ScenarioParams params = profile == "planetlab"
                              ? ScenarioParams::planetlab_defaults(seed)
                              : ScenarioParams::simulation_defaults(seed);
  if (profile != "sim" && profile != "planetlab") {
    std::cerr << "unknown profile '" << profile << "'\n";
    return 2;
  }
  params.num_players = static_cast<std::size_t>(
      flags.get_int("population", static_cast<std::int64_t>(params.num_players)));
  params.num_supernodes = static_cast<std::size_t>(flags.get_int(
      "supernodes", static_cast<std::int64_t>(params.num_supernodes)));
  params.num_datacenters = static_cast<std::size_t>(flags.get_int(
      "datacenters", static_cast<std::int64_t>(params.num_datacenters)));
  params.dc_uplink_kbps =
      flags.get_double("dc-uplink-mbps", params.dc_uplink_kbps / 1'000.0) *
      1'000.0;

  std::vector<SystemKind> kinds;
  for (const std::string& name :
       split_csv(flags.get("systems", "cloud,fog-a"))) {
    SystemKind kind;
    if (!parse_system(name, &kind)) {
      std::cerr << "unknown system '" << name << "'\n";
      return 2;
    }
    kinds.push_back(kind);
  }

  StreamingOptions options;
  options.num_players =
      static_cast<std::size_t>(flags.get_int("players", 2'000));
  options.duration_ms = flags.get_double("duration-s", 10.0) * 1'000.0;
  options.warmup_ms = flags.get_double("warmup-s", 3.0) * 1'000.0;

  obs::BenchHarness harness(
      "cloudfog_runner", obs::bench_options_from_flags(flags, "cloudfog_runner"));
  return harness.run([&]() -> int {
  std::cout << "building " << profile << " scenario: "
            << params.num_players << " players, " << params.num_datacenters
            << " DCs, " << params.num_supernodes << " supernodes (seed "
            << seed << ")\n";
  const Scenario scenario = Scenario::build(params);

  util::Table table("cloudfog_runner results");
  table.set_header({"system", "mean latency (ms)", "p95 (ms)", "continuity",
                    "satisfied", "cloud Mbps", "mean level", "sn-served",
                    "edge-served"});
  for (SystemKind kind : kinds) {
    const StreamingResult r = run_streaming(kind, scenario, options);
    table.add_row({to_string(kind),
                   util::format_double(r.mean_response_latency_ms, 1),
                   util::format_double(r.p95_response_latency_ms, 1),
                   util::format_double(r.mean_continuity, 3),
                   util::format_double(r.satisfied_fraction, 3),
                   util::format_double(r.cloud_uplink_mbps, 1),
                   util::format_double(r.mean_quality_level, 2),
                   std::to_string(r.supernode_supported),
                   std::to_string(r.edge_supported)});
  }
  std::cout << table.to_text();

  if (flags.has("csv")) {
    const std::string path = flags.get("csv");
    std::ofstream os(path);
    if (!os.good()) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    os << table.to_csv();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
  });
}
