// Evaluates the incentive mechanism of Section III-A1/A2 (Equations 1-6) —
// the paper promises this evaluation in Section IV. Sweeps contributor
// profitability (Eq 1), the provider's bandwidth reduction and saving
// (Eqs 2-3), and the greedy marginal-gain deployment rule (Eq 6) on the
// scenario's actual supernode pool.
#include <algorithm>

#include "bench_common.h"
#include "core/incentive.h"
#include "systems/bandwidth.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "incentives", [&]() -> int {
    bench::print_header("Incentive model (Eqs 1-6)",
                        "supernode economics on the simulation scenario");

    core::IncentiveParams pricing;
    pricing.reward_per_kbps = 0.5;
    pricing.value_per_kbps = 1.0;
    pricing.stream_rate_kbps = 900.0;  // catalog-mean bitrate

    // --- Equation 1: contributor profit vs machine class ----------------------
    util::Table profit("Eq 1: contributor profit per supernode class");
    profit.set_header({"upload (kbps)", "utilization", "running cost",
                       "profit P_s", "contributes?"});
    for (double upload : {6'000.0, 12'000.0, 30'000.0}) {
      for (double util_rate : {0.3, 0.7, 1.0}) {
        const double cost = upload * 0.08;  // electricity ~ proportional
        const double p = core::supernode_profit(pricing, upload, util_rate, cost);
        profit.add_row({util::format_double(upload, 0),
                        util::format_double(util_rate, 1),
                        util::format_double(cost, 0), util::format_double(p, 0),
                        p > 0.0 ? "yes" : "no"});
      }
    }
    bench::print_table(profit);

    // --- Equations 2-3 on a real assignment -----------------------------------
    ScenarioParams params = bench::sim_profile(1);
    const Scenario scenario = Scenario::build(params);
    util::Table saving("Eqs 2-3: provider bandwidth reduction and saving vs #players");
    saving.set_header({"#players", "sn-served n", "active SNs m",
                       "B_r (Mbps, Eq 2)", "C_g (value units, Eq 3)"});
    const auto counts = bench::fast_mode()
                            ? std::vector<std::size_t>{500, 1'500, 2'500}
                            : std::vector<std::size_t>{2'000, 6'000, 10'000};
    for (std::size_t n : counts) {
      const auto bw = measure_bandwidth(SystemKind::kCloudFogB, scenario, n);
      const double supported = static_cast<double>(bw.supernode_supported);
      const double active = static_cast<double>(bw.active_supernodes);
      const double b_r = core::bandwidth_reduction(pricing, supported, active);
      // C_g with B_s approximated by the supported players' demand (Eq 4 at
      // equality — the provider pays for utilised bandwidth only).
      const double b_s = supported * pricing.stream_rate_kbps;
      const double c_g = pricing.value_per_kbps * b_r - pricing.reward_per_kbps * b_s;
      saving.add_row({std::to_string(n), util::format_double(supported, 0),
                      util::format_double(active, 0),
                      util::format_double(b_r / 1'000.0, 1),
                      util::format_double(c_g / 1'000.0, 1)});
    }
    bench::print_table(saving);

    // --- Equation 6: greedy deployment over a heterogeneous offer pool --------
    util::Rng rng(11);
    std::vector<core::SupernodeOffer> offers(bench::scaled(200, 60));
    for (std::size_t i = 0; i < offers.size(); ++i) {
      offers[i].host = static_cast<NodeId>(i);
      offers[i].upload_kbps = 3'000.0 + rng.pareto_with_mean(9'000.0, 1.5);
      offers[i].utilization = rng.uniform(0.4, 1.0);
      offers[i].contributor_cost = offers[i].upload_kbps * rng.uniform(0.02, 0.15);
      offers[i].new_players_covered = rng.pareto_with_mean(6.0, 1.2);
    }
    const auto accepted = core::greedy_deployment(pricing, offers);
    double total_gain = 0.0;
    for (std::size_t i : accepted) total_gain += core::marginal_gain(pricing, offers[i]);
    util::Table greedy("Eq 6: greedy marginal-gain deployment");
    greedy.set_header({"offers", "accepted", "acceptance rate", "total gain (k units)"});
    greedy.add_row({std::to_string(offers.size()), std::to_string(accepted.size()),
                    util::format_double(static_cast<double>(accepted.size()) /
                                            static_cast<double>(offers.size()),
                                        2),
                    util::format_double(total_gain / 1'000.0, 1)});
    bench::print_table(greedy);
    return 0;
  });
}
