// Packet-path steady-state microbench: one deadline-discipline supernode
// sender under sustained multi-player segment load, measuring the end-to-end
// per-packet cost of the hot loop — scheduler enqueue/estimate/pop, uplink
// serialisation events, the propagation/rate-cap/loss hooks and delivery
// fan-out. This is the workload the burst-transmission train optimises
// (DESIGN.md §14): between segment rounds the sender drains hundreds of
// consecutive packets with no intervening event, so the whole round should
// cost one sim event, not one per packet.
//
// stdout is a deterministic per-seed digest table (raw IEEE-754 bits of
// every delivery folded through FNV-1a), byte-identical at any --jobs or
// --shards value (the bench uses neither) and across the burst overhaul
// itself — packet pops never read the clock, so the train replays the exact
// per-packet arithmetic. Wall-clock lands in the BENCH json as
// BM_PacketSteadyState (ns per transmitted packet); the ≥3× acceptance gate
// vs the committed pre-overhaul seed runs through bench_compare.py
// (EXPERIMENTS.md A10).
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/supernode_sender.h"
#include "game/game.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/rng.h"

using namespace cloudfog;

namespace {

struct SeedResult {
  std::uint64_t submitted = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t lost = 0;
  std::uint64_t on_time = 0;
  std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
  double wall_ms = 0.0;
};

void fold(std::uint64_t& digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest ^= (value >> shift) & 0xffull;
    digest *= 1099511628211ull;  // FNV-1a prime
  }
}

SeedResult run_seed(std::uint64_t seed) {
  // Offered load: `players` segments every 33.3 ms, sizes 240–480 kbit
  // (20–40 packets), ~0.9 uplink utilisation so queues build and drain
  // every round; every 8th round is a 1.6x overload burst that pushes the
  // scheduler into Eq (12)–(14) drop territory. Games cycle through the
  // catalog so deadlines span 30–110 ms and loss tolerances differ.
  const std::size_t players = bench::scaled(32, 16);
  const double duration_ms = bench::fast_mode() ? 2'000.0 : 12'000.0;
  const double interval_ms = 33.3;
  const Kbps uplink_kbps = 380'000.0 * (bench::fast_mode() ? 0.5 : 1.0);

  sim::Simulator sim;
  SeedResult out;
  util::Rng load_rng(seed * 1000003 + 17);

  core::SupernodeSender sender(
      sim, uplink_kbps, core::SupernodeSender::Discipline::kDeadline,
      core::DeadlineSchedulerConfig{},
      [](NodeId player, util::Rng& rng) {
        return 4.0 + rng.uniform(0.0, 4.0) + 0.1 * static_cast<double>(player % 7);
      },
      [&out](const core::PacketDelivery& d) {
        fold(out.digest, d.segment_id);
        fold(out.digest, static_cast<std::uint64_t>(d.packet_index));
        fold(out.digest, std::bit_cast<std::uint64_t>(d.sent_ms));
        fold(out.digest, std::bit_cast<std::uint64_t>(
                             d.lost ? d.deadline_ms : d.arrival_ms));
        fold(out.digest, d.lost ? 1 : 0);
        if (d.lost) ++out.lost;
        if (d.on_time()) ++out.on_time;
      },
      util::Rng(seed).fork("packet_bench"));
  sender.set_rate_cap([uplink_kbps](NodeId player, std::uint64_t) {
    // Every fourth player sits behind a WAN bottleneck at half the uplink.
    return player % 4 == 0 ? uplink_kbps / 2.0 : 0.0;
  });
  sender.set_loss_model(
      [](NodeId player, std::uint64_t) { return player % 5 == 0 ? 0.01 : 0.0; });
  sender.set_drop_observer(
      [&out](const stream::VideoSegment& seg, int packet_index) {
        fold(out.digest, seg.id);
        fold(out.digest, static_cast<std::uint64_t>(packet_index));
        fold(out.digest, 0xd0ull);  // domain-separate drops from deliveries
      });

  std::uint64_t round = 0;
  sim::EventId ticker = sim::kInvalidEvent;
  ticker = sim.schedule_every(interval_ms, interval_ms, [&] {
    const TimeMs now = sim.now();
    if (now >= duration_ms) {  // stop generating; let the queue drain
      sim.cancel(ticker);
      return;
    }
    ++round;
    const double burst = round % 8 == 0 ? 2.5 : 1.0;
    for (std::size_t p = 0; p < players; ++p) {
      const game::GameProfile& game =
          game::game_by_id(static_cast<game::GameId>(p % 5));
      stream::VideoSegment seg;
      seg.id = round * 1000 + p;
      seg.player = static_cast<NodeId>(p + 1);
      seg.game = static_cast<game::GameId>(p % 5);
      seg.quality_level = 3;
      seg.duration_ms = interval_ms;
      seg.size_kbit = load_rng.uniform(240.0, 480.0) * burst;
      seg.action_time_ms = now;
      seg.deadline_ms = now + game.latency_requirement_ms;
      seg.loss_tolerance = game.loss_tolerance;
      sender.submit(seg);
    }
  });

  const std::uint64_t start_us = obs::wall_now_us();
  sim.run_all();
  out.wall_ms = static_cast<double>(obs::wall_now_us() - start_us) / 1000.0;
  out.submitted = sender.packets_submitted();
  out.sent = sender.packets_sent();
  out.dropped = sender.packets_dropped();
  return out;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[static_cast<std::size_t>(i)] = digits[v & 0xf];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "packet", [&]() -> int {
    bench::print_header("Packet path",
                        "steady-state deadline-discipline packet hot loop");

    util::Table table("Packet steady state: per-seed delivery digests");
    table.set_header({"seed", "submitted", "sent", "dropped", "lost",
                      "on-time frac", "digest"});
    double total_wall_ms = 0.0;
    std::uint64_t total_sent = 0;
    for (std::size_t s = 0; s < bench::seed_count(); ++s) {
      const std::uint64_t seed = 7 + s * 10;
      const SeedResult r = run_seed(seed);
      const double delivered =
          static_cast<double>(r.sent > 0 ? r.sent : 1);
      table.add_row({std::to_string(seed), std::to_string(r.submitted),
                     std::to_string(r.sent), std::to_string(r.dropped),
                     std::to_string(r.lost),
                     util::format_double(
                         static_cast<double>(r.on_time) / delivered, 4),
                     hex64(r.digest)});
      total_wall_ms += r.wall_ms;
      total_sent += r.sent;
    }
    bench::print_table(table);

    const double ns_per_packet =
        total_sent > 0 ? total_wall_ms * 1e6 / static_cast<double>(total_sent)
                       : 0.0;
    obs::record_bench_result("BM_PacketSteadyState", ns_per_packet);
    obs::record_sweep_wall_ms("packet_steady_state", total_wall_ms);
    // Timings go to stderr so stdout stays byte-stable for the CI diffs.
    std::cerr << "packet steady state: " << total_sent << " packets in "
              << total_wall_ms << " ms (" << ns_per_packet << " ns/packet)\n";
    return 0;
  });
}
