// Ablation: the deadline scheduler's design knobs (Section III-C):
//   * exponential-decay rate lambda of phi = e^(-lambda t) (paper default 1)
//   * propagation history length m of Eq (13) (paper default h_2 = 10)
// Swept at a clearly overloaded operating point where the drop policy is
// exercised on every enqueue.
//
// Both sweeps are fanned across --jobs workers in one batch; results come
// back in submission order, so the tables are bit-identical at any width.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

SupernodeExperimentConfig overloaded(std::size_t seed) {
  SupernodeExperimentConfig config;
  config.num_players = 25;
  config.scheduling = true;
  config.uplink_kbps = 21'500.0;  // offered load ~1.07: drops required
  config.seed = 7 + seed * 10;
  config.duration_ms = bench::fast_mode() ? 8'000.0 : 16'000.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_scheduler", [&]() -> int {
    bench::print_header("Ablation: scheduler",
                        "decay lambda and propagation history of Eqs (13)-(14)");

    const std::vector<double> lambdas{0.0, 0.5, 1.0, 2.0, 5.0};
    const std::vector<std::size_t> histories{1, 3, 10, 30};
    std::vector<SupernodeExperimentConfig> configs;
    configs.reserve((lambdas.size() + histories.size()) * bench::seed_count());
    for (double lambda : lambdas) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        auto config = overloaded(seed);
        config.cloudfog.scheduler.decay_lambda_per_s = lambda;
        configs.push_back(config);
      }
    }
    for (std::size_t m : histories) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        auto config = overloaded(seed);
        config.cloudfog.scheduler.propagation_history = m;
        configs.push_back(config);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<SupernodeExperimentResult> results =
        run_supernode_experiments(configs, bench::executor());
    obs::record_sweep_wall_ms(
        "ablation_scheduler",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    std::size_t next = 0;
    util::Table lambda_table("decay lambda sweep (CloudFog-schedule, overload)");
    lambda_table.set_header({"lambda (1/s)", "satisfied", "continuity",
                             "dropped pkts"});
    for (double lambda : lambdas) {
      util::RunningStats sat, cont;
      std::uint64_t dropped = 0;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const SupernodeExperimentResult& r = results[next++];
        sat.add(r.satisfied_fraction);
        cont.add(r.mean_continuity);
        dropped += r.packets_dropped;
      }
      lambda_table.add_row({util::format_double(lambda, 1),
                            util::format_double(sat.mean(), 3),
                            util::format_double(cont.mean(), 3),
                            std::to_string(dropped / bench::seed_count())});
    }
    bench::print_table(lambda_table);

    util::Table m_table("propagation history m sweep (Eq 13)");
    m_table.set_header({"m (samples)", "satisfied", "continuity", "dropped pkts"});
    for (std::size_t m : histories) {
      util::RunningStats sat, cont;
      std::uint64_t dropped = 0;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const SupernodeExperimentResult& r = results[next++];
        sat.add(r.satisfied_fraction);
        cont.add(r.mean_continuity);
        dropped += r.packets_dropped;
      }
      m_table.add_row({std::to_string(m), util::format_double(sat.mean(), 3),
                       util::format_double(cont.mean(), 3),
                       std::to_string(dropped / bench::seed_count())});
    }
    bench::print_table(m_table);
    return 0;
  });
}
