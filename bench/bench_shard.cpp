// Shard sweep: the space-parallel streaming engine from 10k to 100k
// players (ROADMAP item 2, DESIGN.md §13).
//
// For each population the same scenario runs at shard counts 1, 2, 4 and 8
// (or the single count named by --shards / CLOUDFOG_BENCH_SHARDS). Two
// things come out:
//
//   * the QoE digest, printed once per population — the engine's promise
//     is that it is bit-identical at every shard count, so the run aborts
//     if any count disagrees with the single-shard oracle, and the stdout
//     table is byte-identical whatever --shards value CI diffs with;
//   * wall-clock per (population, shards) run, recorded into the BENCH
//     json "benchmarks" section as ns per generated segment
//     (BM_ShardedStreaming/<players>/k<shards>) plus the whole-sweep
//     wall under sweeps.shard — timings are only meaningful from a
//     --jobs=1 run.
//
// Speedup acceptance (EXPERIMENTS.md A9) compares a --shards=1 artifact
// against a --shards=8 artifact from the same machine, skipped on boxes
// without the cores to show it:
//   bench_shard --shards=1 --bench-json=BENCH_shard_k1.json
//   bench_shard --shards=8 --bench-json=BENCH_shard_k8.json
//   python3 scripts/bench_compare.py BENCH_shard_k1.json BENCH_shard_k8.json
//       --require-speedup 'sweep/shard=2' --speedup-min-cores 8
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "systems/streaming_sim.h"
#include "util/check.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

struct ShardConfig {
  std::size_t players = 0;  // scenario population
  std::size_t shards = 1;
};

struct ShardRun {
  ShardConfig config;
  StreamingResult result;
  double wall_ms = 0.0;  // measured; never printed to stdout
};

/// The full-scale simulation profile grown (or shrunk) proportionally from
/// its 10k-player shape: supernode and edge fleets and the datacenter
/// provisioning all scale with the population, so per-player strain — and
/// therefore the QoE digest's regime — stays comparable across sizes.
ScenarioParams scaled_params(std::size_t players, std::size_t shards) {
  ScenarioParams p = ScenarioParams::simulation_defaults(1);
  const double f = static_cast<double>(players) / 10'000.0;
  p.num_players = players;
  p.num_supernodes = std::max<std::size_t>(30, static_cast<std::size_t>(600.0 * f));
  p.num_edge_servers = std::max<std::size_t>(5, static_cast<std::size_t>(45.0 * f));
  p.dc_uplink_kbps *= f;
  p.sim_shards = shards;
  p.sim_force_sharded = true;  // shards == 1 is the oracle, same engine
  return p;
}

ShardRun run_config(const ShardConfig& config) {
  ShardRun run;
  run.config = config;
  const Scenario scenario =
      Scenario::build(scaled_params(config.players, config.shards));
  StreamingOptions options;
  options.num_players = config.players / 2;
  options.warmup_ms = bench::fast_mode() ? 500.0 : 2'000.0;
  options.duration_ms = bench::fast_mode() ? 2'000.0 : 6'000.0;
  options.drain_ms = bench::fast_mode() ? 500.0 : 2'000.0;
  const std::uint64_t start_us = obs::wall_now_us();
  run.result = run_streaming(SystemKind::kCloudFogB, scenario, options);
  run.wall_ms = static_cast<double>(obs::wall_now_us() - start_us) / 1000.0;
  return run;
}

/// Every digest-bearing scalar of a StreamingResult, for the cross-shard
/// bit-identity check (mirrors tests/integration/sharded_streaming_test).
std::vector<double> digest(const StreamingResult& r) {
  std::vector<double> d = {r.mean_response_latency_ms,
                           r.p95_response_latency_ms,
                           r.mean_continuity,
                           r.satisfied_fraction,
                           r.cloud_uplink_mbps,
                           r.mean_quality_level,
                           static_cast<double>(r.segments_generated),
                           static_cast<double>(r.packets_dropped),
                           static_cast<double>(r.supernode_supported),
                           static_cast<double>(r.edge_supported)};
  for (std::size_t g = 0; g < 5; ++g) {
    d.push_back(static_cast<double>(r.players_by_game[g]));
    d.push_back(r.continuity_by_game[g]);
    d.push_back(r.satisfied_by_game[g]);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "shard", [&]() -> int {
    bench::print_header("Shard sweep",
                        "space-parallel streaming engine, one digest");

    const std::vector<std::size_t> populations =
        bench::fast_mode() ? std::vector<std::size_t>{1'000, 2'500}
                           : std::vector<std::size_t>{10'000, 30'000, 100'000};
    const std::vector<std::size_t> shard_counts =
        bench::shards() != 0 ? std::vector<std::size_t>{bench::shards()}
                             : std::vector<std::size_t>{1, 2, 4, 8};

    std::vector<ShardConfig> configs;
    for (std::size_t n : populations) {
      for (std::size_t k : shard_counts) configs.push_back({n, k});
    }

    const auto grid = bench::run_sweep(
        "shard", configs, 1,
        [](const ShardConfig& c, std::size_t) { return run_config(c); });

    util::Table table(
        "shard sweep digest (CloudFog/B, identical at every shard count)");
    table.set_header({"players", "mean_lat_ms", "p95_lat_ms", "continuity",
                      "satisfied", "cloud_mbps", "quality", "segments",
                      "supernode", "edge"});
    for (std::size_t pi = 0; pi < populations.size(); ++pi) {
      const ShardRun& oracle = grid[pi * shard_counts.size()][0];
      double base_wall = 0.0;
      for (std::size_t ki = 0; ki < shard_counts.size(); ++ki) {
        const ShardRun& run = grid[pi * shard_counts.size() + ki][0];
        CF_CHECK_MSG(digest(run.result) == digest(oracle.result),
                     "shard-count digest divergence at " +
                         std::to_string(run.config.players) + " players, " +
                         std::to_string(run.config.shards) + " shards");
        const double ns_per_segment =
            run.result.segments_generated > 0
                ? run.wall_ms * 1e6 /
                      static_cast<double>(run.result.segments_generated)
                : 0.0;
        obs::record_bench_result(
            "BM_ShardedStreaming/" + std::to_string(run.config.players) +
                "/k" + std::to_string(run.config.shards),
            ns_per_segment);
        if (run.config.shards == 1) base_wall = run.wall_ms;
        std::fprintf(stderr,
                     "bench_shard: %zu players, %zu shards: %.1f ms%s\n",
                     run.config.players, run.config.shards, run.wall_ms,
                     base_wall > 0.0 && run.config.shards != 1
                         ? ("  (" + util::format_double(base_wall / run.wall_ms, 2) +
                            "x vs 1 shard)")
                               .c_str()
                         : "");
      }
      const StreamingResult& r = oracle.result;
      table.add_row({std::to_string(oracle.config.players),
                     util::format_double(r.mean_response_latency_ms, 3),
                     util::format_double(r.p95_response_latency_ms, 3),
                     util::format_double(r.mean_continuity, 3),
                     util::format_double(r.satisfied_fraction, 3),
                     util::format_double(r.cloud_uplink_mbps, 3),
                     util::format_double(r.mean_quality_level, 3),
                     std::to_string(r.segments_generated),
                     std::to_string(r.supernode_supported),
                     std::to_string(r.edge_supported)});
    }
    bench::print_table(table);
    return 0;
  });
}
