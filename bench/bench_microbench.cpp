// Google-benchmark microbenchmarks of the hot substrate paths: event queue
// throughput, latency-model evaluation, the fluid senders and the deadline
// scheduler. These bound how large a scenario the simulator can sustain on
// one core.
//
// Besides google-benchmark's own flags, the obs harness flags are accepted
// (--bench-json / --metrics-out / --trace-out / --bench-warmup /
// --bench-repeats; see obs/bench_harness.h) and are stripped from argv
// before benchmark::Initialize sees them.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_harness.h"
#include "util/flags.h"

#include "core/deadline_scheduler.h"
#include "core/supernode_manager.h"
#include "net/latency_model.h"
#include "net/topology.h"
#include "net/uplink.h"
#include "sim/simulator.h"
#include "stream/queued_sender.h"
#include "stream/video.h"
#include "util/rng.h"
#include "world/interest.h"
#include "world/partition.h"

namespace cloudfog {
namespace {

/// Console reporter that additionally publishes every case's adjusted real
/// time (ns/op) into the obs registry, so `--bench-json` artifacts carry a
/// per-benchmark "benchmarks" section scripts/bench_compare.py can diff.
class ObsRecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::record_bench_result(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

void BM_SimulatorScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [] {});
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleAndRun)->Arg(1'000)->Arg(10'000);

void BM_SimulatorPeriodicEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_every(static_cast<double>(i), 10.0, [] {});
    }
    sim.run_until(1'000.0);
    benchmark::DoNotOptimize(sim.executed());
  }
}
BENCHMARK(BM_SimulatorPeriodicEvents);

void BM_SimulatorSteadyState(benchmark::State& state) {
  // One schedule + one fire per iteration on a long-lived simulator: the
  // engine's steady-state hot path (slab warm, no growth).
  sim::Simulator sim;
  for (int i = 0; i < 64; ++i) sim.schedule_at(0.0, [] {});
  sim.run_all();
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    sim.schedule_after(1.0, [&ticks] { ++ticks; });
    sim.step();
  }
  benchmark::DoNotOptimize(ticks);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorSteadyState);

void BM_SimulatorCancelChurn(benchmark::State& state) {
  // Schedule a batch, cancel half of it, run the survivors — exercises
  // handle lookup, tombstoning and the eager heap purge.
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(1'000);
    for (int i = 0; i < 1'000; ++i) {
      ids.push_back(sim.schedule_at(static_cast<double>(i % 89), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run_all();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_SimulatorCancelChurn);

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  double total = 0.0;
  for (auto _ : state) total += rng.uniform();
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_RngPareto(benchmark::State& state) {
  util::Rng rng(1);
  double total = 0.0;
  for (auto _ : state) total += rng.pareto_with_mean(5.0, 1.0);
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_RngPareto);

void BM_LatencyExpectedOneWay(benchmark::State& state) {
  const net::LatencyModel model(net::LatencyParams::simulation_profile(1));
  const net::Endpoint a{1, {40.7, -74.0}, 10.0};
  const net::Endpoint b{2, {34.0, -118.2}, 8.0};
  double total = 0.0;
  for (auto _ : state) total += model.expected_one_way_ms(a, b);
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyExpectedOneWay);

void BM_LatencyPairBias(benchmark::State& state) {
  const net::LatencyModel model(net::LatencyParams::simulation_profile(1));
  double total = 0.0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    // 64 distinct unordered pairs, revisited round-robin — the per-session
    // reuse pattern the streaming pipeline exhibits.
    total += model.pair_bias(i & 7u, 8u + ((i >> 3) & 7u));
    ++i;
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyPairBias);

void BM_LatencySampleOneWay(benchmark::State& state) {
  const net::LatencyModel model(net::LatencyParams::simulation_profile(1));
  util::Rng rng(3);
  std::vector<net::Endpoint> eps;
  for (NodeId id = 0; id < 16; ++id) {
    eps.push_back(net::Endpoint{id,
                                {30.0 + rng.uniform(0.0, 18.0),
                                 -120.0 + rng.uniform(0.0, 45.0)},
                                rng.uniform(1.0, 20.0)});
  }
  double total = 0.0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    total += model.sample_one_way_ms(eps[i & 15u], eps[(i >> 4) & 15u], rng);
    ++i;
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencySampleOneWay);

void BM_SupernodeAssign(benchmark::State& state) {
  // Section III-A3 assignment against a roster of S supernodes; each
  // iteration assigns one player and releases the slot so the roster state
  // is identical every iteration.
  const auto S = static_cast<std::size_t>(state.range(0));
  net::PlacementConfig config;
  config.num_players = 2'048 + S;
  config.num_datacenters = 2;
  const net::Topology topo =
      net::build_topology(config, net::LatencyParams::simulation_profile(1));
  const auto players = topo.hosts_with_role(net::HostRole::kPlayer);
  core::SupernodeManager mgr(topo, core::SupernodeManagerConfig{},
                             util::Rng(7));
  for (std::size_t i = 0; i < S; ++i) {
    mgr.add_supernode(players[i], 64, 10'000.0);
  }
  std::size_t i = 0;
  const std::size_t callers = players.size() - S;
  for (auto _ : state) {
    const NodeId p = players[S + (i % callers)];
    core::Assignment a = mgr.assign(p, 150.0);
    if (!a.direct_to_cloud()) mgr.release(a.supernode);
    benchmark::DoNotOptimize(a.delay_ms);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SupernodeAssign)->Arg(64)->Arg(512);

void BM_TopologyNearestOf25(benchmark::State& state) {
  net::PlacementConfig config;
  config.num_players = 100;
  config.num_datacenters = 25;
  const net::Topology topo =
      net::build_topology(config, net::LatencyParams::simulation_profile(1));
  const auto dcs = topo.hosts_with_role(net::HostRole::kDatacenter);
  const auto players = topo.hosts_with_role(net::HostRole::kPlayer);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.nearest(players[i % players.size()], dcs));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyNearestOf25);

void BM_QueuedSenderEnqueue(benchmark::State& state) {
  stream::QueuedSender sender(1'000'000.0);
  double now = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sender.enqueue(now, 53.0));
    now += 0.01;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueuedSenderEnqueue);

void BM_FairShareUplinkChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::FairShareUplink uplink(sim, 10'000.0);
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(static_cast<double>(i), [&uplink] {
        uplink.start_flow(100.0, 0.0, [](const net::FlowResult&) {});
      });
    }
    sim.run_all();
    benchmark::DoNotOptimize(uplink.total_delivered());
  }
}
BENCHMARK(BM_FairShareUplinkChurn);

void BM_DeadlineSchedulerEnqueuePop(benchmark::State& state) {
  stream::SegmentFactory factory;
  for (auto _ : state) {
    core::DeadlineScheduler sched(30'000.0, core::DeadlineSchedulerConfig{});
    double now = 0.0;
    for (int i = 0; i < 64; ++i) {
      sched.enqueue(
          factory.make(static_cast<NodeId>(i % 8), i % 5, 3, 33.3, now), now);
      now += 4.0;
    }
    while (sched.pop_packet(now).has_value()) {
    }
    benchmark::DoNotOptimize(sched.total_dropped_packets());
  }
}
BENCHMARK(BM_DeadlineSchedulerEnqueuePop);

void BM_PacketizeSegment(benchmark::State& state) {
  stream::SegmentFactory factory;
  const auto seg = factory.make(1, 4, 5, 100.0, 0.0);  // 180 kbit, 15 packets
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream::packetize(seg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketizeSegment);

void BM_WorldTick(benchmark::State& state) {
  world::WorldConfig config;
  config.width = config.height = 4'000.0;
  world::VirtualWorld w(config);
  util::Rng rng(1);
  std::vector<world::AvatarId> avatars;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) avatars.push_back(w.spawn(rng));
  for (auto _ : state) {
    for (auto a : avatars) {
      w.submit({a, world::ActionType::kMove, 1.0, 0.5});
    }
    benchmark::DoNotOptimize(w.tick(rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorldTick)->Arg(500)->Arg(2'000);

void BM_KdPartitionBuild(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<world::Position> population;
  for (int i = 0; i < 10'000; ++i) {
    population.push_back(
        {rng.uniform(0.0, 4'000.0), rng.uniform(0.0, 4'000.0)});
  }
  for (auto _ : state) {
    world::KdPartition kd(population, 4);
    benchmark::DoNotOptimize(kd.servers());
  }
}
BENCHMARK(BM_KdPartitionBuild);

void BM_InterestRefresh(benchmark::State& state) {
  world::WorldConfig config;
  config.width = config.height = 4'000.0;
  config.region_size = 250.0;
  world::VirtualWorld w(config);
  util::Rng rng(3);
  world::InterestManager interest(w, 1);
  for (NodeId sn = 0; sn < 100; ++sn) {
    for (int p = 0; p < 5; ++p) interest.track(sn, w.spawn(rng));
  }
  for (auto _ : state) {
    interest.refresh();
    benchmark::DoNotOptimize(interest.supernodes());
  }
}
BENCHMARK(BM_InterestRefresh);

}  // namespace
}  // namespace cloudfog

int main(int argc, char** argv) {
  // Partition argv: the obs harness flags go to util::Flags, everything
  // else (--benchmark_filter, ...) stays for google-benchmark.
  std::vector<char*> bench_argv{argv[0]};
  std::vector<char*> obs_argv{argv[0]};
  const auto is_harness_flag = [](const char* arg) {
    for (const std::string& key : cloudfog::obs::bench_flag_keys()) {
      const std::string flag = "--" + key;
      if (arg == flag || std::string(arg).rfind(flag + "=", 0) == 0) return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    if (is_harness_flag(argv[i])) {
      obs_argv.push_back(argv[i]);
      // `--key value` form: the value token travels with the flag.
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          argv[i + 1][0] != '-') {
        obs_argv.push_back(argv[++i]);
      }
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  const cloudfog::util::Flags flags(static_cast<int>(obs_argv.size()),
                                    obs_argv.data());
  cloudfog::obs::BenchHarness harness(
      "microbench",
      cloudfog::obs::bench_options_from_flags(flags, "microbench"));
  return harness.run([&bench_argv]() -> int {
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data()))
      return 1;
    cloudfog::ObsRecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
  });
}
