// Ablation: QoE as a function of the deployed supernode count — the
// streaming-level companion to the paper's Figure 5(b) coverage sweep. At a
// fixed player load, more supernodes means more players stream from nearby
// fog machines instead of the strained cloud.
#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_supernodes", [&]() -> int {
    bench::print_header("Ablation: supernode count",
                        "CloudFog/A QoE vs deployed supernodes at fixed load");

    util::Table table("QoE vs #supernodes (simulation profile)");
    table.set_header({"#supernodes", "fog-served", "mean latency (ms)",
                      "continuity", "satisfied", "cloud Mbps"});
    const std::size_t players = bench::scaled(3'000, 800);
    for (std::size_t count : bench::fast_mode()
                                 ? std::vector<std::size_t>{0, 40, 80, 150}
                                 : std::vector<std::size_t>{0, 100, 200, 400, 600}) {
      ScenarioParams params = bench::sim_profile(1);
      params.num_supernodes = count;
      const Scenario scenario = Scenario::build(params);
      StreamingOptions options;
      options.num_players = players;
      options.warmup_ms = 2'000.0;
      options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
      // Zero supernodes degenerates CloudFog to the Cloud system.
      const SystemKind kind =
          count == 0 ? SystemKind::kCloud : SystemKind::kCloudFogA;
      const StreamingResult r = run_streaming(kind, scenario, options);
      table.add_row({std::to_string(count),
                     std::to_string(r.supernode_supported),
                     util::format_double(r.mean_response_latency_ms, 1),
                     util::format_double(r.mean_continuity, 3),
                     util::format_double(r.satisfied_fraction, 3),
                     util::format_double(r.cloud_uplink_mbps, 1)});
    }
    bench::print_table(table);
    return 0;
  });
}
