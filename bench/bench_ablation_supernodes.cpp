// Ablation: QoE as a function of the deployed supernode count — the
// streaming-level companion to the paper's Figure 5(b) coverage sweep. At a
// fixed player load, more supernodes means more players stream from nearby
// fog machines instead of the strained cloud.
//
// One run per supernode count, fanned across --jobs workers (each run
// builds its own Scenario); results come back in submission order, so the
// table is bit-identical at any width.
#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_supernodes", [&]() -> int {
    bench::print_header("Ablation: supernode count",
                        "CloudFog/A QoE vs deployed supernodes at fixed load");

    const std::vector<std::size_t> counts =
        bench::fast_mode() ? std::vector<std::size_t>{0, 40, 80, 150}
                           : std::vector<std::size_t>{0, 100, 200, 400, 600};
    const std::size_t players = bench::scaled(3'000, 800);
    std::vector<StreamingRunSpec> specs;
    specs.reserve(counts.size());
    for (std::size_t count : counts) {
      StreamingRunSpec spec;
      // Zero supernodes degenerates CloudFog to the Cloud system.
      spec.kind = count == 0 ? SystemKind::kCloud : SystemKind::kCloudFogA;
      spec.scenario = bench::sim_profile(1);
      spec.scenario.num_supernodes = count;
      spec.options.num_players = players;
      spec.options.warmup_ms = 2'000.0;
      spec.options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
      specs.push_back(spec);
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<StreamingResult> results =
        run_streaming_batch(specs, bench::executor());
    obs::record_sweep_wall_ms(
        "ablation_supernodes",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("QoE vs #supernodes (simulation profile)");
    table.set_header({"#supernodes", "fog-served", "mean latency (ms)",
                      "continuity", "satisfied", "cloud Mbps"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const StreamingResult& r = results[i];
      table.add_row({std::to_string(counts[i]),
                     std::to_string(r.supernode_supported),
                     util::format_double(r.mean_response_latency_ms, 1),
                     util::format_double(r.mean_continuity, 3),
                     util::format_double(r.satisfied_fraction, 3),
                     util::format_double(r.cloud_uplink_mbps, 1)});
    }
    bench::print_table(table);
    return 0;
  });
}
