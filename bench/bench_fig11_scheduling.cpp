// Reproduces paper Figure 11: percentage of satisfied players with and
// without the deadline-driven sender buffer scheduling, vs. the number of
// players a single supernode supports. Expected shape: scheduling keeps
// satisfaction high under load by prioritising tight deadlines and dropping
// packets within each game's loss tolerance.
//
// The (load × seed × {base, schedule}) grid is fanned across --jobs
// workers; results come back in submission order, so the table is
// bit-identical at any width.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig11_scheduling", [&]() -> int {
    bench::print_header("Figure 11",
                        "effectiveness of deadline-driven buffer scheduling");

    const std::vector<std::size_t> loads{5, 10, 15, 20, 25};
    std::vector<SupernodeExperimentConfig> configs;
    configs.reserve(loads.size() * bench::seed_count() * 2);
    for (std::size_t k : loads) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        SupernodeExperimentConfig config;
        config.num_players = k;
        config.seed = 7 + seed * 10;
        config.duration_ms = bench::fast_mode() ? 8'000.0 : 20'000.0;
        auto sched_config = config;
        sched_config.scheduling = true;
        configs.push_back(config);
        configs.push_back(sched_config);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<SupernodeExperimentResult> results =
        run_supernode_experiments(configs, bench::executor());
    obs::record_sweep_wall_ms(
        "fig11_scheduling",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("Fig 11: satisfied players vs supernode load");
    table.set_header({"players/supernode", "CloudFog/B", "CloudFog-schedule",
                      "sched dropped pkts", "offered load"});
    std::size_t next = 0;
    for (std::size_t k : loads) {
      util::RunningStats base_sat, sched_sat;
      std::uint64_t dropped = 0;
      double load = 0.0;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const SupernodeExperimentResult& base = results[next++];
        const SupernodeExperimentResult& sched = results[next++];
        base_sat.add(base.satisfied_fraction);
        sched_sat.add(sched.satisfied_fraction);
        dropped += sched.packets_dropped;
        load = base.offered_load();
      }
      table.add_row({std::to_string(k), util::format_double(base_sat.mean(), 3),
                     util::format_double(sched_sat.mean(), 3),
                     std::to_string(dropped / bench::seed_count()),
                     util::format_double(load, 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
