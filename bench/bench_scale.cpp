// Scale sweep: the session book from 10k to 1M players.
//
// ROADMAP item 1 ("million-player single-run scale"): the paper's fog only
// matters if the central session book keeps up with a massive roster. This
// bench drives core::SessionManager through a production-shaped lifecycle
// workload at increasing population sizes and reports throughput
// (events/sec) and per-player memory (bytes/player):
//
//   * prefill — 75% of the roster joins (Section III-A3 assignment each);
//   * churn   — 25% of the roster worth of join/leave ops (50/50 mix);
//   * supernode churn — departures with notify-before-leave failover
//     (every affected player recovers to a backup / fresh assignment /
//     the cloud), the departed node rejoins immediately;
//   * QoE sampling sweeps — periodic reads of every online session's
//     serving state, the shape the streaming pipeline's per-segment
//     bookkeeping puts on the session book in a live service (reads
//     outnumber lifecycle mutations by orders of magnitude).
//
// Every op (join, leave, per-player failover, sampled read) counts as one
// event. The stdout table carries only deterministic columns (counts and
// state checksums), so the CI parallel-sweeps byte-diff covers this bench
// like every other; timings travel through the BENCH json "benchmarks"
// section (BM_SessionChurn/<players>, ns per event) and a stderr summary.
//
// Gate (EXPERIMENTS.md A8): BM_SessionChurn/100000 must be >=3x faster
// than the committed map-based seed measurement in BENCH_baseline.json:
//   python3 scripts/bench_compare.py BENCH_baseline.json BENCH_scale.json
//       --require-speedup 'BM_SessionChurn/100000=3'
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/session_manager.h"
#include "net/topology.h"
#include "util/check.h"
#include "util/rng.h"

using namespace cloudfog;

namespace {

struct ScaleConfig {
  std::size_t players = 0;
  /// One supernode per this many players (capacity 192 slots each).
  std::size_t players_per_supernode = 128;
  int supernode_capacity = 192;
  /// Full state-sampling sweeps over the online roster during the run.
  /// Reads dominate a live service's session-book traffic (per-segment
  /// bookkeeping touches serving state far more often than players churn),
  /// so the mix is deliberately read-heavy.
  std::size_t sampling_sweeps = 32;
};

struct ScaleResult {
  std::size_t players = 0;
  std::size_t supernodes = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t departures = 0;
  std::uint64_t affected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t reassigned = 0;
  std::uint64_t to_cloud = 0;
  std::uint64_t sampled_reads = 0;
  std::size_t final_sessions = 0;
  std::size_t final_fog_sessions = 0;
  double delay_checksum_ms = 0.0;  // sum of sampled stream delays
  double demand_checksum_kbps = 0.0;
  double bytes_per_player = 0.0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;  // measured; never printed to stdout
};

ScaleResult run_scale(const ScaleConfig& config) {
  ScaleResult r;
  r.players = config.players;
  const std::size_t num_sn =
      std::max<std::size_t>(16, config.players / config.players_per_supernode);
  r.supernodes = num_sn;

  // A dedicated lean world: the full Scenario (population model, social
  // graph, streaming stacks) is not needed to exercise the session book.
  net::PlacementConfig placement;
  placement.num_players = config.players + num_sn;
  placement.num_datacenters = 5;
  placement.seed = 0x5ca1eull ^ static_cast<std::uint64_t>(config.players);
  net::Topology topo = net::build_topology(
      placement, net::LatencyParams::simulation_profile(placement.seed));

  const std::vector<NodeId> player_hosts =
      topo.hosts_with_role(net::HostRole::kPlayer);
  CF_CHECK_EQ(player_hosts.size(), config.players + num_sn);

  core::SessionManager sessions(topo, core::SupernodeManagerConfig{},
                                core::SessionManagerConfig{},
                                util::Rng(placement.seed).fork("sessions"));
  const Kbps uplink =
      static_cast<Kbps>(config.supernode_capacity) * 2'000.0;
  for (std::size_t i = 0; i < num_sn; ++i) {
    sessions.supernode_join(player_hosts[config.players + i],
                            config.supernode_capacity, uplink);
  }

  util::Rng rng(placement.seed ^ 0xbe9cull);

  // O(1) bench-side roster bookkeeping (swap-pop), so the harness itself
  // never masks the layer under measurement.
  std::vector<std::uint32_t> online, offline;
  std::vector<std::uint32_t> slot_of(config.players, 0);  // index into lists
  std::vector<bool> is_online(config.players, false);
  offline.reserve(config.players);
  online.reserve(config.players);
  for (std::uint32_t i = 0; i < config.players; ++i) {
    offline.push_back(i);
    slot_of[i] = i;
  }
  const auto list_remove = [&slot_of](std::vector<std::uint32_t>& list,
                                      std::uint32_t member) {
    const std::uint32_t at = slot_of[member];
    list[at] = list.back();
    slot_of[list[at]] = at;
    list.pop_back();
  };
  const auto list_add = [&slot_of](std::vector<std::uint32_t>& list,
                                   std::uint32_t member) {
    slot_of[member] = static_cast<std::uint32_t>(list.size());
    list.push_back(member);
  };

  const auto join_one = [&](std::uint32_t p) {
    sessions.player_join(player_hosts[p],
                         static_cast<game::GameId>(rng.uniform_int(0, 4)));
    list_remove(offline, p);
    list_add(online, p);
    is_online[p] = true;
    ++r.joins;
  };
  const auto leave_one = [&](std::uint32_t p) {
    sessions.player_leave(player_hosts[p]);
    list_remove(online, p);
    list_add(offline, p);
    is_online[p] = false;
    ++r.leaves;
  };
  const auto sample_sweep = [&] {
    for (const std::uint32_t p : online) {
      const auto s = sessions.serve_state(player_hosts[p]);
      if (!s.on_cloud()) {
        r.delay_checksum_ms += s.delay_ms;
        ++r.final_fog_sessions;  // reused as scratch; reset below
      }
      ++r.sampled_reads;
    }
  };

  const std::uint64_t start_us = obs::wall_now_us();

  // --- prefill: 75% of the roster comes online --------------------------
  const std::size_t prefill = config.players * 3 / 4;
  for (std::size_t i = 0; i < prefill; ++i) {
    join_one(offline[rng.index(offline.size())]);
  }

  // --- churn + supernode departures + sampling sweeps -------------------
  const std::size_t churn_ops = config.players / 4;
  const std::size_t departures_total = num_sn / 2;
  const std::size_t depart_every =
      departures_total > 0 ? std::max<std::size_t>(1, churn_ops / departures_total)
                           : churn_ops + 1;
  const std::size_t sweep_every =
      std::max<std::size_t>(1, churn_ops / std::max<std::size_t>(1, config.sampling_sweeps));
  std::size_t next_sn = 0;
  for (std::size_t op = 0; op < churn_ops; ++op) {
    if (rng.uniform() < 0.5 && !offline.empty()) {
      join_one(offline[rng.index(offline.size())]);
    } else if (!online.empty()) {
      leave_one(online[rng.index(online.size())]);
    }
    if ((op + 1) % depart_every == 0) {
      const NodeId host = player_hosts[config.players + next_sn];
      next_sn = (next_sn + 1) % num_sn;
      const core::FailoverReport report = sessions.supernode_leave(host);
      sessions.supernode_join(host, config.supernode_capacity, uplink);
      ++r.departures;
      r.affected += report.players_affected;
      r.recovered += report.recovered_to_backup;
      r.reassigned += report.reassigned;
      r.to_cloud += report.fell_to_cloud;
    }
    if ((op + 1) % sweep_every == 0) sample_sweep();
  }

  r.wall_ms =
      static_cast<double>(obs::wall_now_us() - start_us) / 1000.0;
  r.events = r.joins + r.leaves + r.affected + r.sampled_reads;

  // --- deterministic final-state digest ---------------------------------
  r.final_fog_sessions = sessions.supernode_sessions();
  r.final_sessions = sessions.session_count();
  for (NodeId sn : sessions.manager().supernodes()) {
    r.demand_checksum_kbps += sessions.demand_kbps(sn);
  }
  // Hot-state footprint: everything the slab store has reserved (all
  // parallel arrays at capacity, the handle map, the per-server directory),
  // amortised over the roster the run was sized for.
  r.bytes_per_player = static_cast<double>(sessions.store().bytes_reserved()) /
                       static_cast<double>(config.players);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "scale", [&]() -> int {
    bench::print_header("Scale sweep",
                        "session book throughput, 10k -> 1M players");

    std::vector<ScaleConfig> configs;
    for (const std::size_t n : bench::fast_mode()
                                   ? std::vector<std::size_t>{5'000, 20'000}
                                   : std::vector<std::size_t>{10'000, 100'000,
                                                              1'000'000}) {
      ScaleConfig c;
      c.players = n;
      configs.push_back(c);
    }

    const auto grid = bench::run_sweep(
        "scale_sessions", configs, 1,
        [](const ScaleConfig& c, std::size_t) { return run_scale(c); });

    util::Table table(
        "session-book scale sweep (75% prefill, 25% churn ops, supernode "
        "departures + failover, QoE sampling sweeps)");
    table.set_header({"players", "supernodes", "events", "joins", "leaves",
                      "affected", "recovered", "to_cloud", "sessions", "fog",
                      "delay_sum_ms", "demand_kbps", "bytes/player"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const ScaleResult& r = grid[i][0];
      table.add_row({std::to_string(r.players), std::to_string(r.supernodes),
                     std::to_string(r.events), std::to_string(r.joins),
                     std::to_string(r.leaves), std::to_string(r.affected),
                     std::to_string(r.recovered), std::to_string(r.to_cloud),
                     std::to_string(r.final_sessions),
                     std::to_string(r.final_fog_sessions),
                     util::format_double(r.delay_checksum_ms, 3),
                     util::format_double(r.demand_checksum_kbps, 3),
                     util::format_double(r.bytes_per_player, 1)});
      // ns per event + bytes/player into the BENCH json "benchmarks"
      // section. Timings are only meaningful from a --jobs=1 run (workers
      // timing against each other is noise); the table above stays
      // byte-identical at any width.
      const double ns_per_event =
          r.events > 0 ? r.wall_ms * 1e6 / static_cast<double>(r.events) : 0.0;
      obs::record_bench_result("BM_SessionChurn/" + std::to_string(r.players),
                               ns_per_event);
      if (r.bytes_per_player > 0.0) {
        obs::record_bench_result(
            "session_store_bytes_per_player/" + std::to_string(r.players),
            r.bytes_per_player);
      }
      std::fprintf(stderr, "bench_scale: %zu players: %.0f events/sec (%llu events, %.1f ms)\n",
                   r.players,
                   r.wall_ms > 0.0
                       ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                       : 0.0,
                   static_cast<unsigned long long>(r.events), r.wall_ms);
    }
    bench::print_table(table);
    return 0;
  });
}
