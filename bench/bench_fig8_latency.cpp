// Reproduces paper Figure 8: average response latency per player for the
// four systems (Cloud, EdgeCloud, CloudFog/B, CloudFog/A) at the loaded
// default operating point. Expected shape:
//   Cloud > EdgeCloud > CloudFog/B > CloudFog/A.
//
// The (system × seed) grid is fanned across --jobs workers; results come
// back in submission order, so the table is bit-identical at any width.
#include "bench_common.h"
#include "systems/streaming_sim.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

void run_profile(const char* title, const char* sweep_label,
                 const ScenarioParams& params, std::size_t players) {
  const std::array<SystemKind, 4> kinds{SystemKind::kCloud,
                                        SystemKind::kEdgeCloud,
                                        SystemKind::kCloudFogB,
                                        SystemKind::kCloudFogA};
  std::vector<StreamingRunSpec> specs;
  specs.reserve(kinds.size() * bench::seed_count());
  for (SystemKind kind : kinds) {
    for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
      StreamingRunSpec spec;
      spec.kind = kind;
      spec.scenario = params;
      spec.options.num_players = players;
      spec.options.warmup_ms = 3'000.0;
      spec.options.duration_ms = bench::fast_mode() ? 4'000.0 : 8'000.0;
      spec.options.seed_salt = seed;
      specs.push_back(spec);
    }
  }

  const std::uint64_t start_us = obs::wall_now_us();
  const std::vector<StreamingResult> results =
      run_streaming_batch(specs, bench::executor());
  obs::record_sweep_wall_ms(
      sweep_label, static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

  util::Table table(title);
  table.set_header({"system", "mean response latency (ms)", "p95 (ms)",
                    "continuity", "cloud Mbps", "sn-served"});
  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    util::RunningStats latency, p95, continuity, cloud_mbps;
    std::size_t sn_served = 0;
    for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
      const StreamingResult& r = results[ki * bench::seed_count() + seed];
      latency.add(r.mean_response_latency_ms);
      p95.add(r.p95_response_latency_ms);
      continuity.add(r.mean_continuity);
      cloud_mbps.add(r.cloud_uplink_mbps);
      sn_served = r.supernode_supported;
    }
    table.add_row({to_string(kinds[ki]), util::format_double(latency.mean(), 1),
                   util::format_double(p95.mean(), 1),
                   util::format_double(continuity.mean(), 3),
                   util::format_double(cloud_mbps.mean(), 1),
                   std::to_string(sn_served)});
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig8_latency", [&]() -> int {
    bench::print_header("Figure 8", "average response latency per player");
    run_profile("Fig 8(a): simulation profile", "fig8_sim",
                bench::sim_profile(1), bench::scaled(3'000, 800));
    run_profile("Fig 8(b): PlanetLab profile", "fig8_planetlab",
                bench::planetlab_profile(1), bench::scaled(320, 160));
    return 0;
  });
}
