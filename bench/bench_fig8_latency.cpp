// Reproduces paper Figure 8: average response latency per player for the
// four systems (Cloud, EdgeCloud, CloudFog/B, CloudFog/A) at the loaded
// default operating point. Expected shape:
//   Cloud > EdgeCloud > CloudFog/B > CloudFog/A.
#include "bench_common.h"
#include "systems/streaming_sim.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

void run_profile(const char* title, const Scenario& scenario,
                 std::size_t players) {
  const std::array<SystemKind, 4> kinds{SystemKind::kCloud,
                                        SystemKind::kEdgeCloud,
                                        SystemKind::kCloudFogB,
                                        SystemKind::kCloudFogA};
  util::Table table(title);
  table.set_header({"system", "mean response latency (ms)", "p95 (ms)",
                    "continuity", "cloud Mbps", "sn-served"});
  for (SystemKind kind : kinds) {
    util::RunningStats latency, p95, continuity, cloud_mbps;
    std::size_t sn_served = 0;
    for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
      StreamingOptions options;
      options.num_players = players;
      options.warmup_ms = 3'000.0;
      options.duration_ms = bench::fast_mode() ? 4'000.0 : 8'000.0;
      options.seed_salt = seed;
      const StreamingResult r = run_streaming(kind, scenario, options);
      latency.add(r.mean_response_latency_ms);
      p95.add(r.p95_response_latency_ms);
      continuity.add(r.mean_continuity);
      cloud_mbps.add(r.cloud_uplink_mbps);
      sn_served = r.supernode_supported;
    }
    table.add_row({to_string(kind), util::format_double(latency.mean(), 1),
                   util::format_double(p95.mean(), 1),
                   util::format_double(continuity.mean(), 3),
                   util::format_double(cloud_mbps.mean(), 1),
                   std::to_string(sn_served)});
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig8_latency", [&]() -> int {
    bench::print_header("Figure 8", "average response latency per player");
    {
      const Scenario scenario = Scenario::build(bench::sim_profile(1));
      run_profile("Fig 8(a): simulation profile",
                  scenario, bench::scaled(3'000, 800));
    }
    {
      const Scenario scenario = Scenario::build(bench::planetlab_profile(1));
      run_profile("Fig 8(b): PlanetLab profile", scenario,
                  bench::scaled(320, 160));
    }
    return 0;
  });
}
