// Ablation: the per-flow WAN throughput model (effective TCP window over
// path RTT). The paper's core argument is that *downstream streaming rate*
// over long paths limits cloud gaming; this knob is where that effect lives
// in our substrate. Large windows (no per-flow limit) flatten the
// distance penalty; small windows make the cloud's distance problem brutal
// — and CloudFog's advantage grows accordingly.
#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_wan", [&]() -> int {
    bench::print_header("Ablation: WAN window",
                        "per-flow throughput cap vs the Cloud-vs-Fog gap");

    util::Table table("Cloud vs CloudFog/A latency under different WAN windows");
    table.set_header({"window (kbit)", "Cloud latency (ms)", "Fog latency (ms)",
                      "gap", "Cloud continuity", "Fog continuity"});
    const std::size_t players = bench::scaled(3'000, 800);
    for (double window : {0.0, 1'024.0, 512.0, 256.0, 128.0}) {
      ScenarioParams params = bench::sim_profile(1);
      params.tcp_window_kbit = window;
      const Scenario scenario = Scenario::build(params);
      StreamingOptions options;
      options.num_players = players;
      options.warmup_ms = 2'000.0;
      options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
      const StreamingResult cloud =
          run_streaming(SystemKind::kCloud, scenario, options);
      const StreamingResult fog =
          run_streaming(SystemKind::kCloudFogA, scenario, options);
      table.add_row(
          {window == 0.0 ? "unlimited" : util::format_double(window, 0),
           util::format_double(cloud.mean_response_latency_ms, 1),
           util::format_double(fog.mean_response_latency_ms, 1),
           util::format_double(cloud.mean_response_latency_ms -
                                   fog.mean_response_latency_ms,
                               1),
           util::format_double(cloud.mean_continuity, 3),
           util::format_double(fog.mean_continuity, 3)});
    }
    bench::print_table(table);
    return 0;
  });
}
