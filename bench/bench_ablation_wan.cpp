// Ablation: the per-flow WAN throughput model (effective TCP window over
// path RTT). The paper's core argument is that *downstream streaming rate*
// over long paths limits cloud gaming; this knob is where that effect lives
// in our substrate. Large windows (no per-flow limit) flatten the
// distance penalty; small windows make the cloud's distance problem brutal
// — and CloudFog's advantage grows accordingly.
//
// The (window × {Cloud, Fog}) grid is fanned across --jobs workers (each
// run builds its own Scenario); results come back in submission order, so
// the table is bit-identical at any width.
#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_wan", [&]() -> int {
    bench::print_header("Ablation: WAN window",
                        "per-flow throughput cap vs the Cloud-vs-Fog gap");

    const std::vector<double> windows{0.0, 1'024.0, 512.0, 256.0, 128.0};
    const std::size_t players = bench::scaled(3'000, 800);
    std::vector<StreamingRunSpec> specs;
    specs.reserve(windows.size() * 2);
    for (double window : windows) {
      for (SystemKind kind : {SystemKind::kCloud, SystemKind::kCloudFogA}) {
        StreamingRunSpec spec;
        spec.kind = kind;
        spec.scenario = bench::sim_profile(1);
        spec.scenario.tcp_window_kbit = window;
        spec.options.num_players = players;
        spec.options.warmup_ms = 2'000.0;
        spec.options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
        specs.push_back(spec);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<StreamingResult> results =
        run_streaming_batch(specs, bench::executor());
    obs::record_sweep_wall_ms(
        "ablation_wan",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("Cloud vs CloudFog/A latency under different WAN windows");
    table.set_header({"window (kbit)", "Cloud latency (ms)", "Fog latency (ms)",
                      "gap", "Cloud continuity", "Fog continuity"});
    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
      const double window = windows[wi];
      const StreamingResult& cloud = results[wi * 2];
      const StreamingResult& fog = results[wi * 2 + 1];
      table.add_row(
          {window == 0.0 ? "unlimited" : util::format_double(window, 0),
           util::format_double(cloud.mean_response_latency_ms, 1),
           util::format_double(fog.mean_response_latency_ms, 1),
           util::format_double(cloud.mean_response_latency_ms -
                                   fog.mean_response_latency_ms,
                               1),
           util::format_double(cloud.mean_continuity, 3),
           util::format_double(fog.mean_continuity, 3)});
    }
    bench::print_table(table);
    return 0;
  });
}
