// Reproduces paper Figure 10: percentage of satisfied players with and
// without the receiver-driven encoding rate adaptation, vs. the number of
// players a single supernode supports. Expected shape: CloudFog/B drops
// quickly as the supernode saturates; CloudFog-adapt declines moderately
// (the paper reports up to a 27% increase at 25 supported players).
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig10_adaptation", [&]() -> int {
    bench::print_header("Figure 10",
                        "effectiveness of receiver-driven rate adaptation");

    util::Table table("Fig 10: satisfied players vs supernode load");
    table.set_header({"players/supernode", "CloudFog/B", "CloudFog-adapt",
                      "adapt mean level", "offered load"});
    for (std::size_t k : {5u, 10u, 15u, 20u, 25u}) {
      util::RunningStats base_sat, adapt_sat, adapt_level;
      double load = 0.0;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        SupernodeExperimentConfig config;
        config.num_players = k;
        config.seed = 7 + seed * 10;
        config.duration_ms = bench::fast_mode() ? 8'000.0 : 20'000.0;
        auto adapt_config = config;
        adapt_config.adaptation = true;
        const auto base = run_supernode_experiment(config);
        const auto adapt = run_supernode_experiment(adapt_config);
        base_sat.add(base.satisfied_fraction);
        adapt_sat.add(adapt.satisfied_fraction);
        adapt_level.add(adapt.mean_quality_level);
        load = base.offered_load();
      }
      table.add_row({std::to_string(k), util::format_double(base_sat.mean(), 3),
                     util::format_double(adapt_sat.mean(), 3),
                     util::format_double(adapt_level.mean(), 2),
                     util::format_double(load, 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
