// Reproduces paper Figure 10: percentage of satisfied players with and
// without the receiver-driven encoding rate adaptation, vs. the number of
// players a single supernode supports. Expected shape: CloudFog/B drops
// quickly as the supernode saturates; CloudFog-adapt declines moderately
// (the paper reports up to a 27% increase at 25 supported players).
//
// The (load × seed × {base, adapt}) grid is fanned across --jobs workers;
// results come back in submission order, so the table is bit-identical at
// any width.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig10_adaptation", [&]() -> int {
    bench::print_header("Figure 10",
                        "effectiveness of receiver-driven rate adaptation");

    const std::vector<std::size_t> loads{5, 10, 15, 20, 25};
    std::vector<SupernodeExperimentConfig> configs;
    configs.reserve(loads.size() * bench::seed_count() * 2);
    for (std::size_t k : loads) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        SupernodeExperimentConfig config;
        config.num_players = k;
        config.seed = 7 + seed * 10;
        config.duration_ms = bench::fast_mode() ? 8'000.0 : 20'000.0;
        auto adapt_config = config;
        adapt_config.adaptation = true;
        configs.push_back(config);
        configs.push_back(adapt_config);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<SupernodeExperimentResult> results =
        run_supernode_experiments(configs, bench::executor());
    obs::record_sweep_wall_ms(
        "fig10_adaptation",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("Fig 10: satisfied players vs supernode load");
    table.set_header({"players/supernode", "CloudFog/B", "CloudFog-adapt",
                      "adapt mean level", "offered load"});
    std::size_t next = 0;
    for (std::size_t k : loads) {
      util::RunningStats base_sat, adapt_sat, adapt_level;
      double load = 0.0;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const SupernodeExperimentResult& base = results[next++];
        const SupernodeExperimentResult& adapt = results[next++];
        base_sat.add(base.satisfied_fraction);
        adapt_sat.add(adapt.satisfied_fraction);
        adapt_level.add(adapt.mean_quality_level);
        load = base.offered_load();
      }
      table.add_row({std::to_string(k), util::format_double(base_sat.mean(), 3),
                     util::format_double(adapt_sat.mean(), 3),
                     util::format_double(adapt_level.mean(), 2),
                     util::format_double(load, 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
