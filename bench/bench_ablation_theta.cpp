// Ablation: the adjust-down threshold theta of the rate adaptation
// (Equation 11; paper default theta = 0.5). Sweeps theta at the overloaded
// single-supernode operating point. Expectations: tiny theta reacts too
// late (satisfaction suffers), large theta over-downgrades (quality level
// suffers); the paper's 0.5 balances both.
//
// The (theta × seed) grid is fanned across --jobs workers; results come
// back in submission order, so the table is bit-identical at any width.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_theta", [&]() -> int {
    bench::print_header("Ablation: theta",
                        "adjust-down threshold of Eq (11) at 25 players/supernode");

    const std::vector<double> thetas{0.1, 0.3, 0.5, 0.7, 0.9};
    const auto grid = bench::run_sweep(
        "ablation_theta", thetas, bench::seed_count(),
        [](double theta, std::size_t seed) {
          SupernodeExperimentConfig config;
          config.num_players = 25;
          config.adaptation = true;
          config.seed = 7 + seed * 10;
          config.duration_ms = bench::fast_mode() ? 8'000.0 : 16'000.0;
          config.cloudfog.adaptation.theta = theta;
          return run_supernode_experiment(config);
        });

    util::Table table("theta sweep (CloudFog-adapt, overloaded supernode)");
    table.set_header({"theta", "satisfied", "continuity", "mean level"});
    for (std::size_t ti = 0; ti < thetas.size(); ++ti) {
      util::RunningStats sat, cont, level;
      for (const SupernodeExperimentResult& r : grid[ti]) {
        sat.add(r.satisfied_fraction);
        cont.add(r.mean_continuity);
        level.add(r.mean_quality_level);
      }
      table.add_row({util::format_double(thetas[ti], 1),
                     util::format_double(sat.mean(), 3),
                     util::format_double(cont.mean(), 3),
                     util::format_double(level.mean(), 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
