// Ablation: the adjust-down threshold theta of the rate adaptation
// (Equation 11; paper default theta = 0.5). Sweeps theta at the overloaded
// single-supernode operating point. Expectations: tiny theta reacts too
// late (satisfaction suffers), large theta over-downgrades (quality level
// suffers); the paper's 0.5 balances both.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_theta", [&]() -> int {
    bench::print_header("Ablation: theta",
                        "adjust-down threshold of Eq (11) at 25 players/supernode");

    util::Table table("theta sweep (CloudFog-adapt, overloaded supernode)");
    table.set_header({"theta", "satisfied", "continuity", "mean level"});
    for (double theta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      util::RunningStats sat, cont, level;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        SupernodeExperimentConfig config;
        config.num_players = 25;
        config.adaptation = true;
        config.seed = 7 + seed * 10;
        config.duration_ms = bench::fast_mode() ? 8'000.0 : 16'000.0;
        config.cloudfog.adaptation.theta = theta;
        const auto r = run_supernode_experiment(config);
        sat.add(r.satisfied_fraction);
        cont.add(r.mean_continuity);
        level.add(r.mean_quality_level);
      }
      table.add_row({util::format_double(theta, 1),
                     util::format_double(sat.mean(), 3),
                     util::format_double(cont.mean(), 3),
                     util::format_double(level.mean(), 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
