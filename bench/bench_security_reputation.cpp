// Extension experiment: malicious supernodes and the reputation defence
// (the paper's Section-V future work). Sweeps the malicious fraction and
// the sabotage intensity, reporting detection quality and the repaired
// delivery rate.
//
// All three sweeps are fanned across --jobs workers in one batch; results
// come back in submission order, so the tables are bit-identical at any
// width.
#include "bench_common.h"
#include "systems/reputation_experiment.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "security_reputation", [&]() -> int {
    bench::print_header("Security extension",
                        "reputation-based malicious supernode eviction");

    const std::vector<double> fractions{0.05, 0.10, 0.20, 0.30};
    const std::vector<double> rates{0.10, 0.20, 0.30, 0.50};
    const std::vector<bool> evictions{false, true};

    std::vector<std::pair<std::string,
                          std::function<ReputationExperimentResult()>>>
        tasks;
    for (double fraction : fractions) {
      ReputationExperimentConfig config;
      config.num_supernodes = bench::scaled(100, 40);
      config.malicious_fraction = fraction;
      config.rounds = bench::scaled(500, 250);
      tasks.emplace_back("fraction=" + std::to_string(fraction),
                         [config] { return run_reputation_experiment(config); });
    }
    for (double rate : rates) {
      ReputationExperimentConfig config;
      config.num_supernodes = bench::scaled(100, 40);
      config.sabotage_rate = rate;
      config.rounds = bench::scaled(600, 300);
      tasks.emplace_back("rate=" + std::to_string(rate),
                         [config] { return run_reputation_experiment(config); });
    }
    for (bool eviction : evictions) {
      ReputationExperimentConfig config;
      config.num_supernodes = bench::scaled(100, 40);
      config.enable_eviction = eviction;
      config.rounds = bench::scaled(500, 250);
      tasks.emplace_back(std::string("eviction=") + (eviction ? "on" : "off"),
                         [config] { return run_reputation_experiment(config); });
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<ReputationExperimentResult> results =
        bench::executor().map(std::move(tasks));
    obs::record_sweep_wall_ms(
        "security_reputation",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    std::size_t next = 0;
    {
      util::Table table("Sweep: malicious roster fraction (sabotage rate 0.3)");
      table.set_header({"malicious fraction", "recall", "precision",
                        "rounds to 1st detection", "bad rate early",
                        "bad rate late"});
      for (double fraction : fractions) {
        const auto& r = results[next++];
        table.add_row({util::format_double(fraction, 2),
                       util::format_double(r.recall(), 2),
                       util::format_double(r.precision(), 2),
                       std::to_string(r.rounds_to_first_detection),
                       util::format_double(r.early_bad_rate, 3),
                       util::format_double(r.late_bad_rate, 3)});
      }
      bench::print_table(table);
    }

    {
      util::Table table("Sweep: sabotage intensity (20% malicious)");
      table.set_header({"sabotage rate", "recall", "precision",
                        "rounds to 1st detection", "bad rate late"});
      for (double rate : rates) {
        const auto& r = results[next++];
        table.add_row({util::format_double(rate, 2),
                       util::format_double(r.recall(), 2),
                       util::format_double(r.precision(), 2),
                       std::to_string(r.rounds_to_first_detection),
                       util::format_double(r.late_bad_rate, 3)});
      }
      bench::print_table(table);
    }

    {
      util::Table table("Defence on vs off (20% malicious, rate 0.3)");
      table.set_header({"eviction", "bad rate early", "bad rate late"});
      for (bool eviction : evictions) {
        const auto& r = results[next++];
        table.add_row({eviction ? "on" : "off",
                       util::format_double(r.early_bad_rate, 3),
                       util::format_double(r.late_bad_rate, 3)});
      }
      bench::print_table(table);
    }
    return 0;
  });
}
