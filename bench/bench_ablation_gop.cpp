// Ablation: GOP-structured encoding vs the flat VBR model at the
// overloaded single-supernode operating point.
//
// Two effects are isolated:
//   * burstiness — the large I-frames of a long GOP stress the FIFO queue
//     harder than flat VBR at the same mean bitrate;
//   * actuation delay — the rate adaptation's level switches only take
//     effect at the next GOP boundary, so a long GOP blunts Eq (9)/(11)'s
//     responsiveness.
//
// The (setup × seed × {B, adapt}) grid is fanned across --jobs workers;
// results come back in submission order, so the table is bit-identical at
// any width.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

SupernodeExperimentConfig base_config(std::size_t seed) {
  SupernodeExperimentConfig config;
  // util ~0.78: flat VBR sails through, so the damage visible below is
  // attributable to GOP burstiness alone, not average-rate overload.
  config.num_players = 20;
  config.duration_ms = bench::fast_mode() ? 8'000.0 : 16'000.0;
  config.seed = 7 + seed * 10;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_gop", [&]() -> int {
    bench::print_header("Ablation: GOP encoding",
                        "structured I/P frames vs flat VBR at 20 players");

    struct Setup {
      const char* name;
      bool gop;
      int gop_length;
    };
    const std::vector<Setup> setups{
        {"flat VBR (sigma 0.3)", false, 0},
        {"GOP 15 (0.5 s)", true, 15},
        {"GOP 30 (1 s)", true, 30},
        {"GOP 60 (2 s)", true, 60},
    };
    std::vector<SupernodeExperimentConfig> configs;
    configs.reserve(setups.size() * bench::seed_count() * 2);
    for (const Setup& setup : setups) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        auto config = base_config(seed);
        config.use_gop_encoder = setup.gop;
        if (setup.gop) config.encoder.gop_length = setup.gop_length;
        auto adapt = config;
        adapt.adaptation = true;
        configs.push_back(config);
        configs.push_back(adapt);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<SupernodeExperimentResult> results =
        run_supernode_experiments(configs, bench::executor());
    obs::record_sweep_wall_ms(
        "ablation_gop",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table(
        "GOP length sweep at util ~0.78 (CloudFog/B and CloudFog-adapt)");
    table.set_header({"encoder", "B satisfied", "B continuity",
                      "adapt satisfied", "adapt mean level"});
    std::size_t next = 0;
    for (const Setup& setup : setups) {
      util::RunningStats b_sat, b_cont, a_sat, a_level;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const SupernodeExperimentResult& rb = results[next++];
        const SupernodeExperimentResult& ra = results[next++];
        b_sat.add(rb.satisfied_fraction);
        b_cont.add(rb.mean_continuity);
        a_sat.add(ra.satisfied_fraction);
        a_level.add(ra.mean_quality_level);
      }
      table.add_row({setup.name, util::format_double(b_sat.mean(), 3),
                     util::format_double(b_cont.mean(), 3),
                     util::format_double(a_sat.mean(), 3),
                     util::format_double(a_level.mean(), 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
