// Extension experiment: session survival under supernode churn.
//
// The paper requires supernodes to notify the provider before leaving and
// has players record backup supernodes (Section III-A3); Section V lists
// supernode cooperation as future work. This bench quantifies both over
// four simulated hours of player + supernode churn:
//   * failover OFF:   every disruption triggers a fresh assignment;
//   * failover ON:    recorded backups absorb most disruptions;
//   * + cooperation:  overloaded supernodes shed players to neighbours.
#include "bench_common.h"
#include "systems/dynamic_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "dynamics_failover", [&]() -> int {
    bench::print_header("Dynamics extension",
                        "failover and cooperation under supernode churn");

    ScenarioParams params = bench::sim_profile(1);
    params.num_players = bench::scaled(6'000, 1'500);
    params.num_supernodes = bench::scaled(400, 100);
    const Scenario scenario = Scenario::build(params);

    struct Config {
      const char* name;
      bool failover;
      bool cooperation;
    };
    const Config configs[] = {
        {"no failover (fresh reassignment)", false, false},
        {"backup failover", true, false},
        {"backup failover + cooperation", true, true},
    };

    util::Table table("4 h of churn, supernode MTBF 4 h, 20 min downtime");
    table.set_header({"configuration", "disruptions", "to backup", "reassigned",
                      "to cloud", "recovery rate", "fog session share",
                      "moves", "hot-SN share"});
    for (const Config& c : configs) {
      DynamicSimOptions options;
      options.duration_ms = (bench::fast_mode() ? 2.0 : 4.0) * kMsPerHour;
      options.supernode_mtbf_hours = 4.0;
      options.supernode_downtime_ms = 20.0 * kMsPerMinute;
      options.enable_failover = c.failover;
      options.enable_cooperation = c.cooperation;
      const DynamicSimResult r = run_dynamic_sim(scenario, options);
      table.add_row({c.name, std::to_string(r.disruptions),
                     std::to_string(r.recovered_to_backup),
                     std::to_string(r.reassigned),
                     std::to_string(r.fell_to_cloud),
                     util::format_double(r.recovery_rate(), 3),
                     util::format_double(r.mean_supernode_session_fraction, 3),
                     std::to_string(r.rebalance_moves),
                     util::format_double(r.mean_hot_supernode_fraction, 3)});
    }
    bench::print_table(table);
    return 0;
  });
}
