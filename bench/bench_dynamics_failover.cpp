// Extension experiment: session survival under supernode churn.
//
// The paper requires supernodes to notify the provider before leaving and
// has players record backup supernodes (Section III-A3); Section V lists
// supernode cooperation as future work. This bench quantifies both over
// four simulated hours of player + supernode churn:
//   * failover OFF:   every disruption triggers a fresh assignment;
//   * failover ON:    recorded backups absorb most disruptions;
//   * + cooperation:  overloaded supernodes shed players to neighbours.
//
// The three configurations are fanned across --jobs workers (each run
// builds its own Scenario); results come back in submission order, so the
// table is bit-identical at any width.
#include "bench_common.h"
#include "systems/dynamic_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "dynamics_failover", [&]() -> int {
    bench::print_header("Dynamics extension",
                        "failover and cooperation under supernode churn");

    ScenarioParams params = bench::sim_profile(1);
    params.num_players = bench::scaled(6'000, 1'500);
    params.num_supernodes = bench::scaled(400, 100);

    struct Config {
      const char* name;
      bool failover;
      bool cooperation;
    };
    const Config configs[] = {
        {"no failover (fresh reassignment)", false, false},
        {"backup failover", true, false},
        {"backup failover + cooperation", true, true},
    };

    std::vector<DynamicRunSpec> specs;
    specs.reserve(std::size(configs));
    for (const Config& c : configs) {
      DynamicRunSpec spec;
      spec.scenario = params;
      spec.options.duration_ms = (bench::fast_mode() ? 2.0 : 4.0) * kMsPerHour;
      spec.options.supernode_mtbf_hours = 4.0;
      spec.options.supernode_downtime_ms = 20.0 * kMsPerMinute;
      spec.options.enable_failover = c.failover;
      spec.options.enable_cooperation = c.cooperation;
      specs.push_back(spec);
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<DynamicSimResult> results =
        run_dynamic_sims(specs, bench::executor());
    obs::record_sweep_wall_ms(
        "dynamics_failover",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("4 h of churn, supernode MTBF 4 h, 20 min downtime");
    table.set_header({"configuration", "disruptions", "to backup", "reassigned",
                      "to cloud", "recovery rate", "fog session share",
                      "moves", "hot-SN share"});
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      const DynamicSimResult& r = results[i];
      table.add_row({configs[i].name, std::to_string(r.disruptions),
                     std::to_string(r.recovered_to_backup),
                     std::to_string(r.reassigned),
                     std::to_string(r.fell_to_cloud),
                     util::format_double(r.recovery_rate(), 3),
                     util::format_double(r.mean_supernode_session_fraction, 3),
                     std::to_string(r.rebalance_moves),
                     util::format_double(r.mean_hot_supernode_fraction, 3)});
    }
    bench::print_table(table);
    return 0;
  });
}
