// Reproduces paper Figure 5 (PeerSim profile):
//   (a) user coverage vs. number of datacenters, per network latency
//       requirement 30..110 ms;
//   (b) user coverage vs. number of supernodes (base: 5 datacenters).
//
// Averaged over CLOUDFOG_BENCH_SEEDS scenario seeds, fanned across
// --jobs workers (bit-identical at any width).
#include "bench_common.h"
#include "systems/coverage.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig5_coverage", [&]() -> int {
    bench::print_header("Figure 5", "user coverage, simulation profile");

    std::vector<ScenarioParams> seeds;
    for (std::size_t s = 0; s < bench::seed_count(); ++s) {
      ScenarioParams params = bench::sim_profile(1 + s);
      params.num_datacenters = 25;  // the sweep maximum
      params.num_supernodes = bench::fast_mode() ? 150 : 600;
      seeds.push_back(params);
    }

    CoverageConfig config;
    config.datacenter_counts = {5, 10, 15, 20, 25};
    config.supernode_counts = bench::fast_mode()
                                  ? std::vector<std::size_t>{0, 50, 100, 150}
                                  : std::vector<std::size_t>{0, 100, 200, 300,
                                                             400, 500, 600};
    config.latency_requirements = {30, 50, 70, 90, 110};
    config.base_datacenters = 5;
    config.samples = 3;

    const std::uint64_t start_us = obs::wall_now_us();
    const CoverageSweepOutcome outcome =
        measure_coverage_averaged(seeds, config, bench::executor());
    obs::record_sweep_wall_ms(
        "fig5_coverage",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);
    const CoverageResult& result = outcome.mean;
    config = outcome.effective;

    util::Table a("Fig 5(a): coverage vs #datacenters (rows) per latency requirement (cols)");
    a.set_header({"#datacenters", "30 ms", "50 ms", "70 ms", "90 ms", "110 ms"});
    for (std::size_t i = 0; i < config.datacenter_counts.size(); ++i) {
      std::vector<std::string> row{std::to_string(config.datacenter_counts[i])};
      for (double v : result.dc_sweep[i]) row.push_back(util::format_double(v, 3));
      a.add_row(row);
    }
    bench::print_table(a);

    util::Table b("Fig 5(b): coverage vs #supernodes (rows, base 5 DCs) per latency requirement (cols)");
    b.set_header({"#supernodes", "30 ms", "50 ms", "70 ms", "90 ms", "110 ms"});
    for (std::size_t i = 0; i < config.supernode_counts.size(); ++i) {
      std::vector<std::string> row{std::to_string(config.supernode_counts[i])};
      for (double v : result.sn_sweep[i]) row.push_back(util::format_double(v, 3));
      b.add_row(row);
    }
    bench::print_table(b);

    std::cout << "mean online players per snapshot: "
              << util::format_double(result.mean_online, 0) << "\n";
    return 0;
  });
}
