// Reproduces paper Figure 7: cloud bandwidth consumption vs. number of
// players, for Cloud, EdgeCloud and CloudFog/B (the paper: CloudFog/A and
// /B consume identically). Expected shape: Cloud > EdgeCloud > CloudFog/B
// with CloudFog growing slowest.
//
// One run per player count, fanned across --jobs workers; each run builds
// its own Scenario (the latency-model memo is not shareable) and measures
// all three systems, so the table is bit-identical at any width.
#include <array>

#include "bench_common.h"
#include "systems/bandwidth.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

void run_profile(const char* title, const char* sweep_label,
                 const ScenarioParams& params,
                 const std::vector<std::size_t>& player_counts) {
  using Row = std::array<BandwidthResult, 3>;
  std::vector<std::pair<std::string, std::function<Row()>>> tasks;
  tasks.reserve(player_counts.size());
  for (std::size_t n : player_counts) {
    tasks.emplace_back("players=" + std::to_string(n), [&params, n] {
      const Scenario scenario = Scenario::build(params);
      return Row{measure_bandwidth(SystemKind::kCloud, scenario, n),
                 measure_bandwidth(SystemKind::kEdgeCloud, scenario, n),
                 measure_bandwidth(SystemKind::kCloudFogB, scenario, n)};
    });
  }

  const std::uint64_t start_us = obs::wall_now_us();
  const std::vector<Row> results = bench::executor().map(std::move(tasks));
  obs::record_sweep_wall_ms(
      sweep_label, static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

  util::Table table(title);
  table.set_header({"#players", "Cloud (Mbps)", "EdgeCloud (Mbps)",
                    "CloudFog/B (Mbps)", "fog: sn-served", "fog: update feed (Mbps)"});
  for (std::size_t i = 0; i < player_counts.size(); ++i) {
    const auto& [cloud, edge, fog] = results[i];
    table.add_row({std::to_string(player_counts[i]),
                   util::format_double(cloud.cloud_mbps, 1),
                   util::format_double(edge.cloud_mbps, 1),
                   util::format_double(fog.cloud_mbps, 1),
                   std::to_string(fog.supernode_supported),
                   util::format_double(fog.update_feed_mbps, 1)});
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig7_bandwidth", [&]() -> int {
    bench::print_header("Figure 7", "server bandwidth consumption vs #players");

    run_profile("Fig 7(a): simulation profile", "fig7_sim",
                bench::sim_profile(1),
                bench::fast_mode()
                    ? std::vector<std::size_t>{500, 1'000, 1'500, 2'500}
                    : std::vector<std::size_t>{2'000, 4'000, 6'000, 8'000,
                                               10'000});
    run_profile("Fig 7(b): PlanetLab profile", "fig7_planetlab",
                bench::planetlab_profile(1),
                bench::fast_mode()
                    ? std::vector<std::size_t>{100, 200, 400}
                    : std::vector<std::size_t>{150, 300, 450, 600, 750});
    return 0;
  });
}
