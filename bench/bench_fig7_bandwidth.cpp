// Reproduces paper Figure 7: cloud bandwidth consumption vs. number of
// players, for Cloud, EdgeCloud and CloudFog/B (the paper: CloudFog/A and
// /B consume identically). Expected shape: Cloud > EdgeCloud > CloudFog/B
// with CloudFog growing slowest.
#include "bench_common.h"
#include "systems/bandwidth.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

void run_profile(const char* title, const Scenario& scenario,
                 const std::vector<std::size_t>& player_counts) {
  util::Table table(title);
  table.set_header({"#players", "Cloud (Mbps)", "EdgeCloud (Mbps)",
                    "CloudFog/B (Mbps)", "fog: sn-served", "fog: update feed (Mbps)"});
  for (std::size_t n : player_counts) {
    const auto cloud = measure_bandwidth(SystemKind::kCloud, scenario, n);
    const auto edge = measure_bandwidth(SystemKind::kEdgeCloud, scenario, n);
    const auto fog = measure_bandwidth(SystemKind::kCloudFogB, scenario, n);
    table.add_row({std::to_string(n), util::format_double(cloud.cloud_mbps, 1),
                   util::format_double(edge.cloud_mbps, 1),
                   util::format_double(fog.cloud_mbps, 1),
                   std::to_string(fog.supernode_supported),
                   util::format_double(fog.update_feed_mbps, 1)});
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig7_bandwidth", [&]() -> int {
    bench::print_header("Figure 7", "server bandwidth consumption vs #players");

    {
      ScenarioParams p = bench::sim_profile(1);
      const Scenario scenario = Scenario::build(p);
      const std::vector<std::size_t> counts =
          bench::fast_mode()
              ? std::vector<std::size_t>{500, 1'000, 1'500, 2'500}
              : std::vector<std::size_t>{2'000, 4'000, 6'000, 8'000, 10'000};
      run_profile("Fig 7(a): simulation profile", scenario, counts);
    }
    {
      ScenarioParams p = bench::planetlab_profile(1);
      const Scenario scenario = Scenario::build(p);
      const std::vector<std::size_t> counts =
          bench::fast_mode() ? std::vector<std::size_t>{100, 200, 400}
                             : std::vector<std::size_t>{150, 300, 450, 600, 750};
      run_profile("Fig 7(b): PlanetLab profile", scenario, counts);
    }
    return 0;
  });
}
