// Extension experiment: cooperative transmission between supernodes (the
// paper's Section-V future work). Sweeps the primary-assignment skew: the
// hotter supernode A becomes, the more striping across A and B helps.
//
// The (skew × seed × {single, striped}) grid is fanned across --jobs
// workers; results come back in submission order, so the table is
// bit-identical at any width.
#include "bench_common.h"
#include "systems/cooperation_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "cooperation", [&]() -> int {
    bench::print_header("Cooperation extension",
                        "striped transmission across two supernodes");

    const std::vector<double> skews{0.5, 0.7, 0.85, 0.95};
    std::vector<CooperationExperimentConfig> configs;
    configs.reserve(skews.size() * bench::seed_count() * 2);
    for (double skew : skews) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        CooperationExperimentConfig config;
        config.primary_skew = skew;
        config.duration_ms = bench::fast_mode() ? 8'000.0 : 16'000.0;
        config.seed = 7 + seed * 10;
        auto striped = config;
        striped.enable_striping = true;
        configs.push_back(config);
        configs.push_back(striped);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<CooperationExperimentResult> results =
        run_cooperation_experiments(configs, bench::executor());
    obs::record_sweep_wall_ms(
        "cooperation",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("QoE vs primary skew (24 players, two 16 Mbps supernodes)");
    table.set_header({"skew (load A/B)", "single: satisfied", "single: latency",
                      "striped: satisfied", "striped: latency"});
    std::size_t next = 0;
    for (double skew : skews) {
      util::RunningStats single_sat, single_lat, striped_sat, striped_lat;
      double load_a = 0.0, load_b = 0.0;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const CooperationExperimentResult& r1 = results[next++];
        const CooperationExperimentResult& r2 = results[next++];
        single_sat.add(r1.satisfied_fraction);
        single_lat.add(r1.mean_response_latency_ms);
        striped_sat.add(r2.satisfied_fraction);
        striped_lat.add(r2.mean_response_latency_ms);
        load_a = r1.offered_load_a;
        load_b = r1.offered_load_b;
      }
      table.add_row({util::format_double(skew, 2) + " (" +
                         util::format_double(load_a, 2) + "/" +
                         util::format_double(load_b, 2) + ")",
                     util::format_double(single_sat.mean(), 3),
                     util::format_double(single_lat.mean(), 1),
                     util::format_double(striped_sat.mean(), 3),
                     util::format_double(striped_lat.mean(), 1)});
    }
    bench::print_table(table);
    std::cout << "At a balanced assignment striping is neutral; under skew it"
                 "\nrecovers the hot supernode's players — the transmission"
                 "\ncooperation the paper leaves as future work.\n";
    return 0;
  });
}
