// Reproduces paper Figure 9: average playback continuity vs. number of
// concurrently playing players. Expected shape: continuity decreases with
// player count for every system, with CloudFog above EdgeCloud above Cloud
// in the loaded regime (the cloud's fixed bandwidth provisioning is the
// bottleneck CloudFog's supernodes bypass).
//
// The (#players × system) grid is fanned across --jobs workers; results
// come back in submission order, so the table is bit-identical at any
// width.
#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

void run_profile(const char* title, const char* sweep_label,
                 const ScenarioParams& params,
                 const std::vector<std::size_t>& counts) {
  const std::array<SystemKind, 4> kinds{SystemKind::kCloud,
                                        SystemKind::kEdgeCloud,
                                        SystemKind::kCloudFogB,
                                        SystemKind::kCloudFogA};
  std::vector<StreamingRunSpec> specs;
  specs.reserve(counts.size() * kinds.size());
  for (std::size_t n : counts) {
    for (SystemKind kind : kinds) {
      StreamingRunSpec spec;
      spec.kind = kind;
      spec.scenario = params;
      spec.options.num_players = n;
      spec.options.warmup_ms = 2'000.0;
      spec.options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
      specs.push_back(spec);
    }
  }

  const std::uint64_t start_us = obs::wall_now_us();
  const std::vector<StreamingResult> results =
      run_streaming_batch(specs, bench::executor());
  obs::record_sweep_wall_ms(
      sweep_label, static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

  util::Table table(title);
  table.set_header({"#players", "Cloud", "EdgeCloud", "CloudFog/B", "CloudFog/A"});
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    std::vector<std::string> row{std::to_string(counts[ci])};
    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
      const StreamingResult& r = results[ci * kinds.size() + ki];
      row.push_back(util::format_double(r.mean_continuity, 3));
    }
    table.add_row(row);
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig9_continuity", [&]() -> int {
    bench::print_header("Figure 9", "playback continuity vs #players");
    run_profile("Fig 9(a): simulation profile", "fig9_sim",
                bench::sim_profile(1),
                bench::fast_mode()
                    ? std::vector<std::size_t>{500, 1'000, 2'000}
                    : std::vector<std::size_t>{1'000, 2'000, 4'000, 6'000,
                                               8'000});
    run_profile("Fig 9(b): PlanetLab profile", "fig9_planetlab",
                bench::planetlab_profile(1),
                bench::fast_mode() ? std::vector<std::size_t>{100, 250, 400}
                                   : std::vector<std::size_t>{200, 400, 600,
                                                              750});
    return 0;
  });
}
