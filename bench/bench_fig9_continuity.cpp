// Reproduces paper Figure 9: average playback continuity vs. number of
// concurrently playing players. Expected shape: continuity decreases with
// player count for every system, with CloudFog above EdgeCloud above Cloud
// in the loaded regime (the cloud's fixed bandwidth provisioning is the
// bottleneck CloudFog's supernodes bypass).
#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

void run_profile(const char* title, const Scenario& scenario,
                 const std::vector<std::size_t>& counts) {
  const std::array<SystemKind, 4> kinds{SystemKind::kCloud,
                                        SystemKind::kEdgeCloud,
                                        SystemKind::kCloudFogB,
                                        SystemKind::kCloudFogA};
  util::Table table(title);
  table.set_header({"#players", "Cloud", "EdgeCloud", "CloudFog/B", "CloudFog/A"});
  for (std::size_t n : counts) {
    std::vector<std::string> row{std::to_string(n)};
    for (SystemKind kind : kinds) {
      StreamingOptions options;
      options.num_players = n;
      options.warmup_ms = 2'000.0;
      options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
      const StreamingResult r = run_streaming(kind, scenario, options);
      row.push_back(util::format_double(r.mean_continuity, 3));
    }
    table.add_row(row);
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig9_continuity", [&]() -> int {
    bench::print_header("Figure 9", "playback continuity vs #players");
    {
      const Scenario scenario = Scenario::build(bench::sim_profile(1));
      const auto counts =
          bench::fast_mode()
              ? std::vector<std::size_t>{500, 1'000, 2'000}
              : std::vector<std::size_t>{1'000, 2'000, 4'000, 6'000, 8'000};
      run_profile("Fig 9(a): simulation profile", scenario, counts);
    }
    {
      const Scenario scenario = Scenario::build(bench::planetlab_profile(1));
      const auto counts = bench::fast_mode()
                              ? std::vector<std::size_t>{100, 250, 400}
                              : std::vector<std::size_t>{200, 400, 600, 750};
      run_profile("Fig 9(b): PlanetLab profile", scenario, counts);
    }
    return 0;
  });
}
