// Ablation: cloud egress vs QoE under the supernode segment cache —
// DESIGN.md §11, EXPERIMENTS.md "Segment-cache ablation".
//
// Sweeps cache capacity (kbit per supernode capacity slot) crossed with the
// transcode CPU-cost model (cheap vs costly encodes). Capacity 0 keeps the
// subsystem engaged but admits nothing — every segment variant is fetched
// over the cloud's uplink, the fetch-everything baseline the reductions are
// measured against. As capacity grows, hits and down-ladder transcodes
// replace fetches; the "egress cut" column is the headline number (the
// acceptance bar is >= 30% at the largest capacity with QoE within 1% of
// the baseline).
//
// One run per (capacity, transcode-cost) cell, fanned across --jobs workers
// (each run owns its Scenario and its EdgeCacheService); results come back
// in submission order, so the table is bit-identical at any width.
#include <string>
#include <vector>

#include "bench_common.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

namespace {

struct TranscodeCost {
  const char* name;
  TimeMs base_ms;
  double ms_per_kbit;
};

}  // namespace

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_cache", [&]() -> int {
    bench::print_header("Ablation: segment cache capacity x transcode cost",
                        "CloudFog/A cloud egress vs QoE with the supernode "
                        "segment cache");

    const std::vector<double> capacities =
        bench::fast_mode() ? std::vector<double>{0.0, 250.0, 4'000.0}
                           : std::vector<double>{0.0, 250.0, 1'000.0, 4'000.0};
    const std::vector<TranscodeCost> costs = {
        {"cheap", 2.0, 0.01},    // fast encoder: transcodes beat fetches
        {"costly", 12.0, 0.08},  // slow encoder: fetches often win back
    };
    const std::size_t players = bench::scaled(3'000, 800);

    std::vector<StreamingRunSpec> specs;
    specs.reserve(capacities.size() * costs.size());
    for (const TranscodeCost& cost : costs) {
      for (double capacity : capacities) {
        StreamingRunSpec spec;
        spec.kind = SystemKind::kCloudFogA;
        spec.scenario = bench::sim_profile(1);
        spec.scenario.use_segment_cache = true;
        spec.scenario.cache_kbit_per_slot = capacity;
        spec.scenario.cache_transcode_base_ms = cost.base_ms;
        spec.scenario.cache_transcode_ms_per_kbit = cost.ms_per_kbit;
        spec.options.num_players = players;
        spec.options.warmup_ms = 2'000.0;
        spec.options.duration_ms = bench::fast_mode() ? 3'000.0 : 6'000.0;
        specs.push_back(spec);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<StreamingResult> results =
        run_streaming_batch(specs, bench::executor());
    obs::record_sweep_wall_ms(
        "ablation_cache",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("Cloud egress vs QoE (capacity x transcode cost)");
    table.set_header({"transcode", "kbit/slot", "hits", "transcodes",
                      "cloud Mbit", "egress cut", "mean latency (ms)",
                      "continuity"});
    for (std::size_t c = 0; c < costs.size(); ++c) {
      // Baseline for this cost row: capacity 0 = fetch everything.
      const StreamingResult& zero = results[c * capacities.size()];
      for (std::size_t k = 0; k < capacities.size(); ++k) {
        const StreamingResult& r = results[c * capacities.size() + k];
        const double cut =
            zero.cache.bytes_cloud_kbit > 0.0
                ? 1.0 - r.cache.bytes_cloud_kbit / zero.cache.bytes_cloud_kbit
                : 0.0;
        table.add_row({costs[c].name, util::format_double(capacities[k], 0),
                       std::to_string(r.cache.hits),
                       std::to_string(r.cache.transcodes),
                       util::format_double(r.cache.bytes_cloud_kbit / 1000.0, 0),
                       util::format_double(cut * 100.0, 1) + "%",
                       util::format_double(r.mean_response_latency_ms, 1),
                       util::format_double(r.mean_continuity, 3)});
      }
    }
    bench::print_table(table);
    return 0;
  });
}
