// Substrate experiment: what the cloud -> supernode update feed actually
// costs — grounding the paper's Lambda parameter (we default it to
// 100 kbps) in mechanism rather than assumption.
//
// A virtual world runs at 30 ticks/s with players moving, striking and
// emoting. Each supernode serves a handful of players; the interest
// manager subscribes it to the regions its players can see. Reported:
//
//   * per-supernode update bandwidth, area-of-interest filtered vs naive
//     broadcast, across interest halos — the filtered figure is Lambda;
//   * state-server load imbalance, kd-tree (Bezerra et al., the paper's
//     [12]) vs a static grid, under a clustered avatar population.
#include "bench_common.h"
#include "util/rng.h"
#include "util/stats.h"
#include "world/interest.h"
#include "world/partition.h"

using namespace cloudfog;
using namespace cloudfog::world;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "world_updates", [&]() -> int {
    bench::print_header("World substrate",
                        "update-feed bandwidth (Lambda) and state partitioning");

    const std::size_t supernodes = bench::scaled(300, 80);
    const std::size_t players_per_sn = 5;
    const std::size_t ticks = bench::scaled(90, 30);
    const double tick_rate_hz = 30.0;

    // --- Lambda measurement ----------------------------------------------------
    util::Table lambda_table(
        "Cloud->supernode update feed per supernode (kbps at 30 ticks/s)");
    lambda_table.set_header({"interest halo", "filtered (=Lambda)", "broadcast",
                             "saving", "regions/supernode"});
    for (int halo : {0, 1, 2}) {
      WorldConfig config;
      config.width = config.height = 4'000.0;
      config.region_size = 250.0;  // 16x16 regions
      VirtualWorld w(config);
      util::Rng rng(7);
      InterestManager interest(w, halo);

      std::vector<AvatarId> avatars;
      for (NodeId sn = 0; sn < supernodes; ++sn) {
        for (std::size_t p = 0; p < players_per_sn; ++p) {
          const AvatarId a = w.spawn(rng);
          avatars.push_back(a);
          interest.track(sn, a);
        }
      }

      util::RunningStats filtered_kbit, broadcast_kbit, regions;
      for (std::size_t t = 0; t < ticks; ++t) {
        for (AvatarId a : avatars) {
          const double act = rng.uniform();
          if (act < 0.55) {
            w.submit({a, ActionType::kMove, rng.uniform(-1.0, 1.0),
                      rng.uniform(-1.0, 1.0)});
          } else if (act < 0.62) {
            w.submit({a, ActionType::kStrike, 0.0, 0.0});
          } else if (act < 0.70) {
            w.submit({a, ActionType::kEmote, 0.0, 0.0});
          }  // else idle this tick
        }
        const TickDelta delta = w.tick(rng);
        interest.refresh();
        const auto sizes = interest.feed_sizes(delta);
        filtered_kbit.add(sizes.filtered_kbit /
                          static_cast<double>(supernodes));
        broadcast_kbit.add(sizes.broadcast_kbit /
                           static_cast<double>(supernodes));
      }
      for (NodeId sn = 0; sn < supernodes; ++sn) {
        regions.add(static_cast<double>(interest.subscribed_regions(sn)));
      }
      const double filtered_kbps = filtered_kbit.mean() * tick_rate_hz;
      const double broadcast_kbps = broadcast_kbit.mean() * tick_rate_hz;
      lambda_table.add_row(
          {std::to_string(halo), util::format_double(filtered_kbps, 1),
           util::format_double(broadcast_kbps, 1),
           util::format_double(1.0 - filtered_kbps / broadcast_kbps, 3),
           util::format_double(regions.mean(), 1)});
    }
    bench::print_table(lambda_table);
    std::cout << "Filtering collapses the multi-Mbps broadcast to the 0.1-1 Mbps"
                 "\nrange; the tight-interest (halo 0) figure is what the"
                 "\nLambda = 100 kbps default used across the experiments models.\n\n";

    // --- state-server partitioning ---------------------------------------------
    util::Table part_table(
        "State-server load imbalance (max/mean), clustered avatars");
    part_table.set_header({"servers", "static grid", "kd-tree (paper ref [12])"});
    util::Rng rng(13);
    std::vector<Position> population;
    const std::size_t n = bench::scaled(20'000, 5'000);
    for (std::size_t i = 0; i < n; ++i) {
      // Three hotspots of decreasing size plus a uniform background.
      const double u = rng.uniform();
      if (u < 0.45) {
        population.push_back({rng.uniform(0.0, 600.0), rng.uniform(0.0, 600.0)});
      } else if (u < 0.7) {
        population.push_back(
            {rng.uniform(3'000.0, 3'400.0), rng.uniform(500.0, 900.0)});
      } else if (u < 0.85) {
        population.push_back(
            {rng.uniform(1'800.0, 2'000.0), rng.uniform(3'500.0, 3'700.0)});
      } else {
        population.push_back(
            {rng.uniform(0.0, 4'000.0), rng.uniform(0.0, 4'000.0)});
      }
    }
    WorldConfig config;
    config.width = config.height = 4'000.0;
    const struct {
      std::size_t cols, rows;
      int depth;
    } setups[] = {{2, 2, 2}, {4, 2, 3}, {4, 4, 4}};
    for (const auto& setup : setups) {
      GridPartition grid(config, setup.cols, setup.rows);
      KdPartition kd(population, setup.depth);
      part_table.add_row({std::to_string(grid.servers()),
                          util::format_double(grid.stats(population).imbalance(), 2),
                          util::format_double(kd.stats(population).imbalance(), 2)});
    }
    bench::print_table(part_table);
    return 0;
  });
}
