// Reproduces paper Figure 6 (PlanetLab profile, 750 nodes):
//   (a) user coverage vs. number of datacenters (Princeton/UCLA plus
//       promoted hub sites);
//   (b) user coverage vs. number of supernodes (base: 2 datacenters).
//
// Averaged over CLOUDFOG_BENCH_SEEDS scenario seeds, fanned across
// --jobs workers (bit-identical at any width). The "fig6_coverage"
// sweep wall-clock in BENCH json is the speedup gate's series
// (scripts/bench_compare.py --require-speedup).
#include "bench_common.h"
#include "systems/coverage.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "fig6_coverage_planetlab", [&]() -> int {
    bench::print_header("Figure 6", "user coverage, PlanetLab profile");

    std::vector<ScenarioParams> seeds;
    for (std::size_t s = 0; s < bench::seed_count(); ++s) {
      ScenarioParams params = bench::planetlab_profile(1 + s);
      params.num_datacenters = 8;  // sweep maximum
      params.num_supernodes = bench::fast_mode() ? 100 : 300;
      seeds.push_back(params);
    }

    CoverageConfig config;
    config.datacenter_counts = {2, 4, 6, 8};
    config.supernode_counts = bench::fast_mode()
                                  ? std::vector<std::size_t>{0, 50, 100}
                                  : std::vector<std::size_t>{0, 50, 100, 200, 300};
    // The capable pool is sampled (~300 of 750 hosts);
    // measure_coverage_averaged clamps the sweep to the smallest pool any
    // seed actually produced.
    config.latency_requirements = {30, 50, 70, 90, 110};
    config.base_datacenters = 2;
    config.samples = 3;

    const std::uint64_t start_us = obs::wall_now_us();
    const CoverageSweepOutcome outcome =
        measure_coverage_averaged(seeds, config, bench::executor());
    obs::record_sweep_wall_ms(
        "fig6_coverage",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);
    const CoverageResult& result = outcome.mean;
    config = outcome.effective;

    util::Table a("Fig 6(a): coverage vs #datacenters (rows) per latency requirement (cols)");
    a.set_header({"#datacenters", "30 ms", "50 ms", "70 ms", "90 ms", "110 ms"});
    for (std::size_t i = 0; i < config.datacenter_counts.size(); ++i) {
      std::vector<std::string> row{std::to_string(config.datacenter_counts[i])};
      for (double v : result.dc_sweep[i]) row.push_back(util::format_double(v, 3));
      a.add_row(row);
    }
    bench::print_table(a);

    util::Table b("Fig 6(b): coverage vs #supernodes (rows, base 2 DCs) per latency requirement (cols)");
    b.set_header({"#supernodes", "30 ms", "50 ms", "70 ms", "90 ms", "110 ms"});
    for (std::size_t i = 0; i < config.supernode_counts.size(); ++i) {
      std::vector<std::string> row{std::to_string(config.supernode_counts[i])};
      for (double v : result.sn_sweep[i]) row.push_back(util::format_double(v, 3));
      b.add_row(row);
    }
    bench::print_table(b);

    std::cout << "mean online players per snapshot: "
              << util::format_double(result.mean_online, 0) << "\n";
    return 0;
  });
}
