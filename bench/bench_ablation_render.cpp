// Ablation: the supernode's render stage as a bounded resource.
//
// The paper argues rendering "is relatively less hardware demanding" and
// that "most modern computers with discrete graphics cards are sufficient".
// This sweep quantifies where that assumption breaks: with the GPU modelled
// as a serial render queue (cost proportional to encoded resolution), QoE
// is flat until render throughput drops below the population's pixel rate,
// then collapses — and the rate adaptation recovers some of it by encoding
// smaller frames.
//
// The (capacity × seed × {B, adapt}) grid is fanned across --jobs workers;
// results come back in submission order, so the table is bit-identical at
// any width.
#include "bench_common.h"
#include "systems/supernode_experiment.h"
#include "util/stats.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "ablation_render", [&]() -> int {
    bench::print_header("Ablation: render stage",
                        "bounded GPU throughput at 20 players/supernode");

    // Demand at target levels: 20 players x 30 fps x ~0.43 Mpx mean frame
    // ~ 260 Mpx/s; sweep through and past that knee.
    const std::vector<double> capacities{0.0, 1'000.0, 400.0, 250.0, 200.0};
    std::vector<SupernodeExperimentConfig> configs;
    configs.reserve(capacities.size() * bench::seed_count() * 2);
    for (double capacity : capacities) {
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        SupernodeExperimentConfig config;
        config.num_players = 20;
        config.duration_ms = bench::fast_mode() ? 8'000.0 : 16'000.0;
        config.seed = 7 + seed * 10;
        config.render_capacity_mpx_per_s = capacity;
        auto adapt = config;
        adapt.adaptation = true;
        configs.push_back(config);
        configs.push_back(adapt);
      }
    }

    const std::uint64_t start_us = obs::wall_now_us();
    const std::vector<SupernodeExperimentResult> results =
        run_supernode_experiments(configs, bench::executor());
    obs::record_sweep_wall_ms(
        "ablation_render",
        static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);

    util::Table table("render capacity sweep (B and adapt variants)");
    table.set_header({"GPU (Mpx/s)", "B satisfied", "B latency (ms)",
                      "adapt satisfied", "adapt mean level"});
    std::size_t next = 0;
    for (double capacity : capacities) {
      util::RunningStats b_sat, b_lat, a_sat, a_level;
      for (std::size_t seed = 0; seed < bench::seed_count(); ++seed) {
        const SupernodeExperimentResult& rb = results[next++];
        const SupernodeExperimentResult& ra = results[next++];
        b_sat.add(rb.satisfied_fraction);
        b_lat.add(rb.mean_response_latency_ms);
        a_sat.add(ra.satisfied_fraction);
        a_level.add(ra.mean_quality_level);
      }
      table.add_row({capacity == 0.0 ? "unbounded" : util::format_double(capacity, 0),
                     util::format_double(b_sat.mean(), 3),
                     util::format_double(b_lat.mean(), 1),
                     util::format_double(a_sat.mean(), 3),
                     util::format_double(a_level.mean(), 2)});
    }
    bench::print_table(table);
    return 0;
  });
}
