// Analysis experiment: per-game QoE breakdown under each system.
//
// The paper's design premise (Section III, citing Lee et al.) is that games
// differ in latency and loss tolerance. This bench shows the consequence:
// under the same loaded system, strict games (30 ms shooters) are the first
// to lose satisfaction, tolerant games (110 ms turn-based) the last — and
// CloudFog's short streaming paths matter most for the strict end.
//
// The two system runs are fanned across --jobs workers; results come back
// in submission order, so the tables are bit-identical at any width.
#include "bench_common.h"
#include "game/game.h"
#include "systems/streaming_sim.h"

using namespace cloudfog;
using namespace cloudfog::systems;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "per_game_qoe", [&]() -> int {
    bench::print_header("Per-game QoE",
                        "who suffers first when the system strains");

    const std::array<SystemKind, 2> kinds{SystemKind::kCloud,
                                          SystemKind::kCloudFogA};
    std::vector<StreamingRunSpec> specs;
    specs.reserve(kinds.size());
    for (SystemKind kind : kinds) {
      StreamingRunSpec spec;
      spec.kind = kind;
      spec.scenario = bench::sim_profile(1);
      spec.options.num_players = bench::scaled(3'000, 800);
      spec.options.warmup_ms = 2'000.0;
      spec.options.duration_ms = bench::fast_mode() ? 3'000.0 : 8'000.0;
      specs.push_back(spec);
    }

    const std::vector<StreamingResult> results =
        run_streaming_batch(specs, bench::executor());

    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
      const StreamingResult& r = results[ki];
      util::Table table(std::string("per-game QoE under ") +
                        to_string(kinds[ki]));
      table.set_header({"game", "latency req (ms)", "players", "continuity",
                        "satisfied"});
      for (std::size_t g = 0; g < 5; ++g) {
        const auto& profile = game::game_by_id(static_cast<game::GameId>(g));
        table.add_row({profile.name,
                       util::format_double(profile.latency_requirement_ms, 0),
                       std::to_string(r.players_by_game[g]),
                       util::format_double(r.continuity_by_game[g], 3),
                       util::format_double(r.satisfied_by_game[g], 3)});
      }
      bench::print_table(table);
    }
    std::cout << "Reading: continuity rises with the latency requirement in"
                 "\nboth systems; CloudFog lifts every row, most visibly the"
                 "\nmid-range games whose budgets a short last hop can save.\n";
    return 0;
  });
}
