// Reproduces the paper's Figure 2: the video-quality parameter table, plus
// the derived quantities every strategy uses (adjust-up factor beta, game
// catalog pairing).
#include "bench_common.h"
#include "game/game.h"
#include "game/quality.h"

using namespace cloudfog;

int main(int argc, char** argv) {
  return cloudfog::bench::run_bench(argc, argv, "table_quality_levels", [&]() -> int {
    bench::print_header("Figure 2 (table)", "video parameters per quality level");

    util::Table table("Video parameters for different quality levels (Fig. 2)");
    table.set_header({"quality level", "resolution", "bitrate (kbps)",
                      "latency requirement (ms)", "latency tolerance degree"});
    for (auto it = game::quality_table().rbegin();
         it != game::quality_table().rend(); ++it) {
      table.add_row({std::to_string(it->level),
                     std::to_string(it->width) + "x" + std::to_string(it->height),
                     util::format_double(it->bitrate_kbps, 0),
                     util::format_double(it->latency_requirement_ms, 0),
                     util::format_double(it->latency_tolerance, 1)});
    }
    bench::print_table(table);

    util::Table games("Game catalog derived from Fig. 2 (one game per row)");
    games.set_header({"game", "genre", "latency req (ms)", "rho",
                      "loss tolerance", "target level"});
    for (const auto& g : game::game_catalog()) {
      games.add_row({g.name, g.genre,
                     util::format_double(g.latency_requirement_ms, 0),
                     util::format_double(g.latency_tolerance, 1),
                     util::format_double(g.loss_tolerance, 1),
                     std::to_string(g.target_quality_level)});
    }
    bench::print_table(games);

    std::cout << "adjust-up factor beta (Eq 10): "
              << util::format_double(game::adjust_up_beta(), 4) << "\n";
    return 0;
  });
}
