// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one figure of the paper's Section IV: it builds
// the matching scenario (simulation profile = PeerSim, PlanetLab profile =
// the testbed), sweeps the figure's x-axis, and prints the same series the
// paper plots. Absolute values depend on our synthetic substrate; the
// reproduction target is the *shape* (see EXPERIMENTS.md).
//
// Environment:
//   CLOUDFOG_BENCH_FAST=1    shrink populations/windows ~4x (smoke runs)
//   CLOUDFOG_BENCH_SEEDS=n   number of seeds averaged (default 3)
//   CLOUDFOG_BENCH_JOBS=n    worker-pool width for sweeps (default: cores)
//   CLOUDFOG_BENCH_SHARDS=k  run the scenario profiles on the space-
//                            parallel engine with k shards (default: off,
//                            the sequential engine)
//
// Command line (all default to off; see obs/bench_harness.h):
//   --jobs=N              sweep worker-pool width; 1 = sequential code path
//   --shards=K            sim_shards for the scenario profiles (force-
//                         sharded even at K=1, the oracle configuration)
//   --bench-json[=PATH]   machine-readable BENCH_<name>.json artifact
//   --metrics-out=PATH    metrics dump (.json/.csv/.jsonl)
//   --trace-out=PATH      Chrome trace_event JSON (open in Perfetto)
//   --bench-warmup=N --bench-repeats=N   timing discipline
//
// Output is bit-identical at any --jobs value: sweeps fan (config, seed)
// runs across exec::RunExecutor, which hands results back in submission
// order (see exec/run_executor.h and DESIGN.md §9). Output is likewise
// bit-identical at any --shards value >= 1 — the sharded engine's digest
// is invariant in the shard count (DESIGN.md §13); CI byte-diffs a
// --shards=1 run against --shards=4 to hold that line. Only the step from
// "unset" to "--shards=1" changes numbers (shared jitter stream vs
// per-entity streams; see systems/scenario.h).
#pragma once

#include <cstdlib>
#include <exception>
#include <functional>
#include <iostream>
#include <string>

#include "exec/run_executor.h"
#include "exec/sweep.h"
#include "obs/bench_harness.h"
#include "obs/timer.h"
#include "systems/scenario.h"
#include "util/env.h"
#include "util/flags.h"
#include "util/table.h"

namespace cloudfog::bench {

inline bool fast_mode() {
  const char* env = std::getenv("CLOUDFOG_BENCH_FAST");
  return env != nullptr && std::string(env) != "0";
}

inline std::size_t seed_count() {
  static const long n = util::env_long_or("CLOUDFOG_BENCH_SEEDS", 1, 50, 3);
  return static_cast<std::size_t>(n);
}

namespace detail {
/// --jobs override; 0 = not set (fall through to CLOUDFOG_BENCH_JOBS /
/// hardware_concurrency via exec::default_jobs()).
inline std::size_t& jobs_override() {
  static std::size_t value = 0;
  return value;
}

/// --shards override; 0 = not set (fall through to CLOUDFOG_BENCH_SHARDS).
inline std::size_t& shards_override() {
  static std::size_t value = 0;
  return value;
}
}  // namespace detail

/// Resolved sweep worker-pool width for this process.
inline std::size_t jobs() {
  const std::size_t override_value = detail::jobs_override();
  return override_value != 0 ? override_value : exec::default_jobs();
}

/// Resolved shard count for the scenario profiles: --shards beats
/// CLOUDFOG_BENCH_SHARDS. 0 = unset — profiles keep sim_shards = 1 and the
/// sequential engine runs, byte-identical to releases that predate the
/// shard runtime.
inline std::size_t shards() {
  const std::size_t override_value = detail::shards_override();
  if (override_value != 0) return override_value;
  static const long n = util::env_long_or("CLOUDFOG_BENCH_SHARDS", 1, 64, 0);
  return static_cast<std::size_t>(n);
}

/// The process-wide sweep executor, sized by jobs(). First use pins the
/// width, so run_bench resolves --jobs before the body runs.
inline exec::RunExecutor& executor() {
  static exec::RunExecutor instance(jobs());
  return instance;
}

/// Scales a size down in fast mode.
inline std::size_t scaled(std::size_t full, std::size_t fast) {
  return fast_mode() ? fast : full;
}

/// The full-paper-scale simulation scenario (10,000 players, 5 DCs,
/// 45 edge servers, 600 supernodes) — shrunk 4x in fast mode with
/// proportional edge/supernode/datacenter-uplink scaling.
namespace detail {
/// Applies the --shards / CLOUDFOG_BENCH_SHARDS override to a profile.
/// Force-sharded even at one shard so `--shards=1` is the digest oracle a
/// `--shards=K` run must byte-match.
inline void apply_shards(systems::ScenarioParams& p) {
  const std::size_t k = shards();
  if (k == 0) return;
  p.sim_shards = k;
  p.sim_force_sharded = true;
}
}  // namespace detail

inline systems::ScenarioParams sim_profile(std::uint64_t seed) {
  systems::ScenarioParams p = systems::ScenarioParams::simulation_defaults(seed);
  if (fast_mode()) {
    p.num_players = 2'500;
    p.num_edge_servers = 11;
    p.num_supernodes = 150;
    p.dc_uplink_kbps /= 4.0;
  }
  detail::apply_shards(p);
  return p;
}

/// The PlanetLab-profile scenario (750 hosts, 2 DCs, 8 edge servers,
/// supernodes from 300 capable hosts).
inline systems::ScenarioParams planetlab_profile(std::uint64_t seed) {
  systems::ScenarioParams p = systems::ScenarioParams::planetlab_defaults(seed);
  if (fast_mode()) {
    p.num_players = 400;
    p.num_supernodes = 100;
    p.dc_uplink_kbps /= 2.0;
  }
  detail::apply_shards(p);
  return p;
}

inline void print_table(const util::Table& table) {
  std::cout << table.to_text() << '\n';
}

/// Fans `fn(config, seed_index)` over the grid via the process executor and
/// returns results indexed [config][seed] (submission order — aggregating
/// in index order reproduces the sequential accumulation). Wall-clock for
/// the whole sweep lands in the BENCH json "sweeps" section under `label`
/// when artifacts are being collected.
template <typename Config, typename Fn>
auto run_sweep(const std::string& label, const std::vector<Config>& configs,
               std::size_t seeds, Fn&& fn) {
  const std::uint64_t start_us = obs::wall_now_us();
  auto grid = exec::run_sweep(executor(), configs, seeds, std::forward<Fn>(fn));
  obs::record_sweep_wall_ms(
      label, static_cast<double>(obs::wall_now_us() - start_us) / 1000.0);
  return grid;
}

inline void print_header(const std::string& figure, const std::string& what) {
  std::cout << "################################################################\n"
            << "# " << figure << " — " << what << '\n'
            << "# profile sizes " << (fast_mode() ? "(FAST mode)" : "(paper scale)")
            << ", seeds averaged: " << seed_count() << '\n'
            << "################################################################\n\n";
}

/// Standard entry point for the figure benches: parses the obs harness
/// flags (rejecting anything unknown), then runs `body` under
/// obs::BenchHarness — once and uninstrumented unless an output flag asks
/// for artifacts. `name` keys the default BENCH_<name>.json filename.
inline int run_bench(int argc, const char* const* argv, const std::string& name,
                     const std::function<int()>& body) {
  try {
    const util::Flags flags(argc, argv);
    std::vector<std::string> known = obs::bench_flag_keys();
    known.push_back("help");
    known.push_back("jobs");
    known.push_back("shards");
    if (flags.has("help")) {
      std::cout << "bench_" << name << " — see the file header comment.\n"
                << "  --jobs=N    sweep worker-pool width (default: "
                   "CLOUDFOG_BENCH_JOBS or hardware cores; output is "
                   "bit-identical at any width)\n"
                << "  --shards=K  run the scenario profiles on the sharded "
                   "engine with K shards (default: CLOUDFOG_BENCH_SHARDS or "
                   "the sequential engine; output is bit-identical at any "
                   "K >= 1)\n"
                << obs::bench_flags_help();
      return 0;
    }
    const auto unknown = flags.unknown(known);
    if (!unknown.empty()) {
      std::cerr << "unknown flag(s):";
      for (const auto& k : unknown) std::cerr << " --" << k;
      std::cerr << "\n";
      return 2;
    }
    const std::int64_t jobs_flag = flags.get_int("jobs", 0);
    if (flags.has("jobs") && (jobs_flag < 1 || jobs_flag > 512)) {
      std::cerr << "--jobs must be in [1, 512]\n";
      return 2;
    }
    detail::jobs_override() = static_cast<std::size_t>(jobs_flag);
    const std::int64_t shards_flag = flags.get_int("shards", 0);
    if (flags.has("shards") && (shards_flag < 1 || shards_flag > 64)) {
      std::cerr << "--shards must be in [1, 64]\n";
      return 2;
    }
    detail::shards_override() = static_cast<std::size_t>(shards_flag);
    obs::BenchHarness harness(name, obs::bench_options_from_flags(flags, name));
    return harness.run(body);
  } catch (const std::exception& e) {
    std::cerr << "bench_" << name << ": " << e.what() << "\n";
    return 2;
  }
}

}  // namespace cloudfog::bench
