// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one figure of the paper's Section IV: it builds
// the matching scenario (simulation profile = PeerSim, PlanetLab profile =
// the testbed), sweeps the figure's x-axis, and prints the same series the
// paper plots. Absolute values depend on our synthetic substrate; the
// reproduction target is the *shape* (see EXPERIMENTS.md).
//
// Environment:
//   CLOUDFOG_BENCH_FAST=1   shrink populations/windows ~4x (smoke runs)
//   CLOUDFOG_BENCH_SEEDS=n  number of seeds averaged (default 3)
//
// Command line (all default to off; see obs/bench_harness.h):
//   --bench-json[=PATH]   machine-readable BENCH_<name>.json artifact
//   --metrics-out=PATH    metrics dump (.json/.csv/.jsonl)
//   --trace-out=PATH      Chrome trace_event JSON (open in Perfetto)
//   --bench-warmup=N --bench-repeats=N   timing discipline
#pragma once

#include <cstdlib>
#include <exception>
#include <functional>
#include <iostream>
#include <string>

#include "obs/bench_harness.h"
#include "systems/scenario.h"
#include "util/flags.h"
#include "util/table.h"

namespace cloudfog::bench {

inline bool fast_mode() {
  const char* env = std::getenv("CLOUDFOG_BENCH_FAST");
  return env != nullptr && std::string(env) != "0";
}

inline std::size_t seed_count() {
  if (const char* env = std::getenv("CLOUDFOG_BENCH_SEEDS")) {
    const long n = std::atol(env);
    if (n >= 1 && n <= 50) return static_cast<std::size_t>(n);
  }
  return 3;
}

/// Scales a size down in fast mode.
inline std::size_t scaled(std::size_t full, std::size_t fast) {
  return fast_mode() ? fast : full;
}

/// The full-paper-scale simulation scenario (10,000 players, 5 DCs,
/// 45 edge servers, 600 supernodes) — shrunk 4x in fast mode with
/// proportional edge/supernode/datacenter-uplink scaling.
inline systems::ScenarioParams sim_profile(std::uint64_t seed) {
  systems::ScenarioParams p = systems::ScenarioParams::simulation_defaults(seed);
  if (fast_mode()) {
    p.num_players = 2'500;
    p.num_edge_servers = 11;
    p.num_supernodes = 150;
    p.dc_uplink_kbps /= 4.0;
  }
  return p;
}

/// The PlanetLab-profile scenario (750 hosts, 2 DCs, 8 edge servers,
/// supernodes from 300 capable hosts).
inline systems::ScenarioParams planetlab_profile(std::uint64_t seed) {
  systems::ScenarioParams p = systems::ScenarioParams::planetlab_defaults(seed);
  if (fast_mode()) {
    p.num_players = 400;
    p.num_supernodes = 100;
    p.dc_uplink_kbps /= 2.0;
  }
  return p;
}

inline void print_table(const util::Table& table) {
  std::cout << table.to_text() << '\n';
}

inline void print_header(const std::string& figure, const std::string& what) {
  std::cout << "################################################################\n"
            << "# " << figure << " — " << what << '\n'
            << "# profile sizes " << (fast_mode() ? "(FAST mode)" : "(paper scale)")
            << ", seeds averaged: " << seed_count() << '\n'
            << "################################################################\n\n";
}

/// Standard entry point for the figure benches: parses the obs harness
/// flags (rejecting anything unknown), then runs `body` under
/// obs::BenchHarness — once and uninstrumented unless an output flag asks
/// for artifacts. `name` keys the default BENCH_<name>.json filename.
inline int run_bench(int argc, const char* const* argv, const std::string& name,
                     const std::function<int()>& body) {
  try {
    const util::Flags flags(argc, argv);
    std::vector<std::string> known = obs::bench_flag_keys();
    known.push_back("help");
    if (flags.has("help")) {
      std::cout << "bench_" << name << " — see the file header comment.\n"
                << obs::bench_flags_help();
      return 0;
    }
    const auto unknown = flags.unknown(known);
    if (!unknown.empty()) {
      std::cerr << "unknown flag(s):";
      for (const auto& k : unknown) std::cerr << " --" << k;
      std::cerr << "\n";
      return 2;
    }
    obs::BenchHarness harness(name, obs::bench_options_from_flags(flags, name));
    return harness.run(body);
  } catch (const std::exception& e) {
    std::cerr << "bench_" << name << ": " << e.what() << "\n";
    return 2;
  }
}

}  // namespace cloudfog::bench
