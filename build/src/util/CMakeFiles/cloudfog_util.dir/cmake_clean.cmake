file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_util.dir/flags.cpp.o"
  "CMakeFiles/cloudfog_util.dir/flags.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/log.cpp.o"
  "CMakeFiles/cloudfog_util.dir/log.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/rng.cpp.o"
  "CMakeFiles/cloudfog_util.dir/rng.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/stats.cpp.o"
  "CMakeFiles/cloudfog_util.dir/stats.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/table.cpp.o"
  "CMakeFiles/cloudfog_util.dir/table.cpp.o.d"
  "libcloudfog_util.a"
  "libcloudfog_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
