# Empty compiler generated dependencies file for cloudfog_util.
# This may be replaced when dependencies are built.
