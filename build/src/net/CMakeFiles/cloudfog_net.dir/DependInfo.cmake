
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/geo.cpp" "src/net/CMakeFiles/cloudfog_net.dir/geo.cpp.o" "gcc" "src/net/CMakeFiles/cloudfog_net.dir/geo.cpp.o.d"
  "/root/repo/src/net/latency_model.cpp" "src/net/CMakeFiles/cloudfog_net.dir/latency_model.cpp.o" "gcc" "src/net/CMakeFiles/cloudfog_net.dir/latency_model.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/cloudfog_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/cloudfog_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/cloudfog_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/cloudfog_net.dir/trace.cpp.o.d"
  "/root/repo/src/net/uplink.cpp" "src/net/CMakeFiles/cloudfog_net.dir/uplink.cpp.o" "gcc" "src/net/CMakeFiles/cloudfog_net.dir/uplink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
