# Empty compiler generated dependencies file for cloudfog_net.
# This may be replaced when dependencies are built.
