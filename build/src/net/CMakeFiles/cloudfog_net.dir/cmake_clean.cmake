file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_net.dir/geo.cpp.o"
  "CMakeFiles/cloudfog_net.dir/geo.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/latency_model.cpp.o"
  "CMakeFiles/cloudfog_net.dir/latency_model.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/topology.cpp.o"
  "CMakeFiles/cloudfog_net.dir/topology.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/trace.cpp.o"
  "CMakeFiles/cloudfog_net.dir/trace.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/uplink.cpp.o"
  "CMakeFiles/cloudfog_net.dir/uplink.cpp.o.d"
  "libcloudfog_net.a"
  "libcloudfog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
