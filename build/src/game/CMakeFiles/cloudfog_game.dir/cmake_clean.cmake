file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_game.dir/game.cpp.o"
  "CMakeFiles/cloudfog_game.dir/game.cpp.o.d"
  "CMakeFiles/cloudfog_game.dir/quality.cpp.o"
  "CMakeFiles/cloudfog_game.dir/quality.cpp.o.d"
  "libcloudfog_game.a"
  "libcloudfog_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
