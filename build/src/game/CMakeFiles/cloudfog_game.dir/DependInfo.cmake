
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/game.cpp" "src/game/CMakeFiles/cloudfog_game.dir/game.cpp.o" "gcc" "src/game/CMakeFiles/cloudfog_game.dir/game.cpp.o.d"
  "/root/repo/src/game/quality.cpp" "src/game/CMakeFiles/cloudfog_game.dir/quality.cpp.o" "gcc" "src/game/CMakeFiles/cloudfog_game.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
