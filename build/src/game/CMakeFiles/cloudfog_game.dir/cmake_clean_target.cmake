file(REMOVE_RECURSE
  "libcloudfog_game.a"
)
