# Empty compiler generated dependencies file for cloudfog_game.
# This may be replaced when dependencies are built.
