
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/encoder.cpp" "src/stream/CMakeFiles/cloudfog_stream.dir/encoder.cpp.o" "gcc" "src/stream/CMakeFiles/cloudfog_stream.dir/encoder.cpp.o.d"
  "/root/repo/src/stream/queued_sender.cpp" "src/stream/CMakeFiles/cloudfog_stream.dir/queued_sender.cpp.o" "gcc" "src/stream/CMakeFiles/cloudfog_stream.dir/queued_sender.cpp.o.d"
  "/root/repo/src/stream/receiver_buffer.cpp" "src/stream/CMakeFiles/cloudfog_stream.dir/receiver_buffer.cpp.o" "gcc" "src/stream/CMakeFiles/cloudfog_stream.dir/receiver_buffer.cpp.o.d"
  "/root/repo/src/stream/video.cpp" "src/stream/CMakeFiles/cloudfog_stream.dir/video.cpp.o" "gcc" "src/stream/CMakeFiles/cloudfog_stream.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
