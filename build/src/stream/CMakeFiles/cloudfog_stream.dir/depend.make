# Empty dependencies file for cloudfog_stream.
# This may be replaced when dependencies are built.
