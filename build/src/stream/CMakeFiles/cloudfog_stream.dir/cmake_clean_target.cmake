file(REMOVE_RECURSE
  "libcloudfog_stream.a"
)
