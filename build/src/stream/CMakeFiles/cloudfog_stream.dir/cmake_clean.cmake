file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_stream.dir/encoder.cpp.o"
  "CMakeFiles/cloudfog_stream.dir/encoder.cpp.o.d"
  "CMakeFiles/cloudfog_stream.dir/queued_sender.cpp.o"
  "CMakeFiles/cloudfog_stream.dir/queued_sender.cpp.o.d"
  "CMakeFiles/cloudfog_stream.dir/receiver_buffer.cpp.o"
  "CMakeFiles/cloudfog_stream.dir/receiver_buffer.cpp.o.d"
  "CMakeFiles/cloudfog_stream.dir/video.cpp.o"
  "CMakeFiles/cloudfog_stream.dir/video.cpp.o.d"
  "libcloudfog_stream.a"
  "libcloudfog_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
