file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_core.dir/deadline_scheduler.cpp.o"
  "CMakeFiles/cloudfog_core.dir/deadline_scheduler.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/incentive.cpp.o"
  "CMakeFiles/cloudfog_core.dir/incentive.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/rate_adaptation.cpp.o"
  "CMakeFiles/cloudfog_core.dir/rate_adaptation.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/reputation.cpp.o"
  "CMakeFiles/cloudfog_core.dir/reputation.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/session_manager.cpp.o"
  "CMakeFiles/cloudfog_core.dir/session_manager.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/supernode_manager.cpp.o"
  "CMakeFiles/cloudfog_core.dir/supernode_manager.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/supernode_sender.cpp.o"
  "CMakeFiles/cloudfog_core.dir/supernode_sender.cpp.o.d"
  "libcloudfog_core.a"
  "libcloudfog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
