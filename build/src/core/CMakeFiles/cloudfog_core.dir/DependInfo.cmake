
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deadline_scheduler.cpp" "src/core/CMakeFiles/cloudfog_core.dir/deadline_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/deadline_scheduler.cpp.o.d"
  "/root/repo/src/core/incentive.cpp" "src/core/CMakeFiles/cloudfog_core.dir/incentive.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/incentive.cpp.o.d"
  "/root/repo/src/core/rate_adaptation.cpp" "src/core/CMakeFiles/cloudfog_core.dir/rate_adaptation.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/rate_adaptation.cpp.o.d"
  "/root/repo/src/core/reputation.cpp" "src/core/CMakeFiles/cloudfog_core.dir/reputation.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/reputation.cpp.o.d"
  "/root/repo/src/core/session_manager.cpp" "src/core/CMakeFiles/cloudfog_core.dir/session_manager.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/session_manager.cpp.o.d"
  "/root/repo/src/core/supernode_manager.cpp" "src/core/CMakeFiles/cloudfog_core.dir/supernode_manager.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/supernode_manager.cpp.o.d"
  "/root/repo/src/core/supernode_sender.cpp" "src/core/CMakeFiles/cloudfog_core.dir/supernode_sender.cpp.o" "gcc" "src/core/CMakeFiles/cloudfog_core.dir/supernode_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/cloudfog_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
