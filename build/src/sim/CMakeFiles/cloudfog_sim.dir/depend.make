# Empty dependencies file for cloudfog_sim.
# This may be replaced when dependencies are built.
