file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_sim.dir/simulator.cpp.o"
  "CMakeFiles/cloudfog_sim.dir/simulator.cpp.o.d"
  "libcloudfog_sim.a"
  "libcloudfog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
