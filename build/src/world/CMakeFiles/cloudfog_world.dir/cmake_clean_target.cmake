file(REMOVE_RECURSE
  "libcloudfog_world.a"
)
