file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_world.dir/interest.cpp.o"
  "CMakeFiles/cloudfog_world.dir/interest.cpp.o.d"
  "CMakeFiles/cloudfog_world.dir/partition.cpp.o"
  "CMakeFiles/cloudfog_world.dir/partition.cpp.o.d"
  "CMakeFiles/cloudfog_world.dir/virtual_world.cpp.o"
  "CMakeFiles/cloudfog_world.dir/virtual_world.cpp.o.d"
  "libcloudfog_world.a"
  "libcloudfog_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
