file(REMOVE_RECURSE
  "libcloudfog_systems.a"
)
