
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/assignment.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/assignment.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/assignment.cpp.o.d"
  "/root/repo/src/systems/bandwidth.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/bandwidth.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/bandwidth.cpp.o.d"
  "/root/repo/src/systems/cooperation_experiment.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/cooperation_experiment.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/cooperation_experiment.cpp.o.d"
  "/root/repo/src/systems/coverage.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/coverage.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/coverage.cpp.o.d"
  "/root/repo/src/systems/dynamic_sim.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/dynamic_sim.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/dynamic_sim.cpp.o.d"
  "/root/repo/src/systems/reputation_experiment.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/reputation_experiment.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/reputation_experiment.cpp.o.d"
  "/root/repo/src/systems/scenario.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/scenario.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/scenario.cpp.o.d"
  "/root/repo/src/systems/streaming_sim.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/streaming_sim.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/streaming_sim.cpp.o.d"
  "/root/repo/src/systems/supernode_experiment.cpp" "src/systems/CMakeFiles/cloudfog_systems.dir/supernode_experiment.cpp.o" "gcc" "src/systems/CMakeFiles/cloudfog_systems.dir/supernode_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/cloudfog_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/cloudfog_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cloudfog_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
