file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_systems.dir/assignment.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/assignment.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/bandwidth.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/bandwidth.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/cooperation_experiment.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/cooperation_experiment.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/coverage.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/coverage.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/dynamic_sim.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/dynamic_sim.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/reputation_experiment.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/reputation_experiment.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/scenario.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/scenario.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/streaming_sim.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/streaming_sim.cpp.o.d"
  "CMakeFiles/cloudfog_systems.dir/supernode_experiment.cpp.o"
  "CMakeFiles/cloudfog_systems.dir/supernode_experiment.cpp.o.d"
  "libcloudfog_systems.a"
  "libcloudfog_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
