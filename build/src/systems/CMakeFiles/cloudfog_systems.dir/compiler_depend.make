# Empty compiler generated dependencies file for cloudfog_systems.
# This may be replaced when dependencies are built.
