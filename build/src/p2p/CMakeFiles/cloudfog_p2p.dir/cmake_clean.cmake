file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_p2p.dir/churn.cpp.o"
  "CMakeFiles/cloudfog_p2p.dir/churn.cpp.o.d"
  "CMakeFiles/cloudfog_p2p.dir/population.cpp.o"
  "CMakeFiles/cloudfog_p2p.dir/population.cpp.o.d"
  "CMakeFiles/cloudfog_p2p.dir/social_graph.cpp.o"
  "CMakeFiles/cloudfog_p2p.dir/social_graph.cpp.o.d"
  "libcloudfog_p2p.a"
  "libcloudfog_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
