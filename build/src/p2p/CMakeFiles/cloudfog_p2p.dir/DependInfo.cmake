
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/churn.cpp" "src/p2p/CMakeFiles/cloudfog_p2p.dir/churn.cpp.o" "gcc" "src/p2p/CMakeFiles/cloudfog_p2p.dir/churn.cpp.o.d"
  "/root/repo/src/p2p/population.cpp" "src/p2p/CMakeFiles/cloudfog_p2p.dir/population.cpp.o" "gcc" "src/p2p/CMakeFiles/cloudfog_p2p.dir/population.cpp.o.d"
  "/root/repo/src/p2p/social_graph.cpp" "src/p2p/CMakeFiles/cloudfog_p2p.dir/social_graph.cpp.o" "gcc" "src/p2p/CMakeFiles/cloudfog_p2p.dir/social_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
