file(REMOVE_RECURSE
  "libcloudfog_p2p.a"
)
