# Empty compiler generated dependencies file for cloudfog_p2p.
# This may be replaced when dependencies are built.
