file(REMOVE_RECURSE
  "libcloudfog_metrics.a"
)
