file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_metrics.dir/qoe.cpp.o"
  "CMakeFiles/cloudfog_metrics.dir/qoe.cpp.o.d"
  "libcloudfog_metrics.a"
  "libcloudfog_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
