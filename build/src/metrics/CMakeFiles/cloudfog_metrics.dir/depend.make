# Empty dependencies file for cloudfog_metrics.
# This may be replaced when dependencies are built.
