file(REMOVE_RECURSE
  "../examples/full_stack_tour"
  "../examples/full_stack_tour.pdb"
  "CMakeFiles/full_stack_tour.dir/full_stack_tour.cpp.o"
  "CMakeFiles/full_stack_tour.dir/full_stack_tour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_stack_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
