# Empty dependencies file for full_stack_tour.
# This may be replaced when dependencies are built.
