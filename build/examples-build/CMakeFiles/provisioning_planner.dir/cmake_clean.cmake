file(REMOVE_RECURSE
  "../examples/provisioning_planner"
  "../examples/provisioning_planner.pdb"
  "CMakeFiles/provisioning_planner.dir/provisioning_planner.cpp.o"
  "CMakeFiles/provisioning_planner.dir/provisioning_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
