# Empty dependencies file for regional_esports_event.
# This may be replaced when dependencies are built.
