file(REMOVE_RECURSE
  "../examples/regional_esports_event"
  "../examples/regional_esports_event.pdb"
  "CMakeFiles/regional_esports_event.dir/regional_esports_event.cpp.o"
  "CMakeFiles/regional_esports_event.dir/regional_esports_event.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_esports_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
