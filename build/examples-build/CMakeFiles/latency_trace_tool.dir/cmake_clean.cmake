file(REMOVE_RECURSE
  "../examples/latency_trace_tool"
  "../examples/latency_trace_tool.pdb"
  "CMakeFiles/latency_trace_tool.dir/latency_trace_tool.cpp.o"
  "CMakeFiles/latency_trace_tool.dir/latency_trace_tool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
