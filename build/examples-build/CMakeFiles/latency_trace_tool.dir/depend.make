# Empty dependencies file for latency_trace_tool.
# This may be replaced when dependencies are built.
