# Empty compiler generated dependencies file for cloudfog_runner.
# This may be replaced when dependencies are built.
