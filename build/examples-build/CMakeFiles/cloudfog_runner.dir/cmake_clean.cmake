file(REMOVE_RECURSE
  "../examples/cloudfog_runner"
  "../examples/cloudfog_runner.pdb"
  "CMakeFiles/cloudfog_runner.dir/cloudfog_runner.cpp.o"
  "CMakeFiles/cloudfog_runner.dir/cloudfog_runner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
