file(REMOVE_RECURSE
  "CMakeFiles/metrics_tests.dir/metrics/qoe_test.cpp.o"
  "CMakeFiles/metrics_tests.dir/metrics/qoe_test.cpp.o.d"
  "metrics_tests"
  "metrics_tests.pdb"
  "metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
