file(REMOVE_RECURSE
  "CMakeFiles/world_tests.dir/world/interest_test.cpp.o"
  "CMakeFiles/world_tests.dir/world/interest_test.cpp.o.d"
  "CMakeFiles/world_tests.dir/world/partition_test.cpp.o"
  "CMakeFiles/world_tests.dir/world/partition_test.cpp.o.d"
  "CMakeFiles/world_tests.dir/world/virtual_world_test.cpp.o"
  "CMakeFiles/world_tests.dir/world/virtual_world_test.cpp.o.d"
  "world_tests"
  "world_tests.pdb"
  "world_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
