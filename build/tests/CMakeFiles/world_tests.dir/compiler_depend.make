# Empty compiler generated dependencies file for world_tests.
# This may be replaced when dependencies are built.
