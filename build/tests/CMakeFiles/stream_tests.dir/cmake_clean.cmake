file(REMOVE_RECURSE
  "CMakeFiles/stream_tests.dir/stream/encoder_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/encoder_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/queued_sender_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/queued_sender_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/receiver_buffer_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/receiver_buffer_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/video_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/video_test.cpp.o.d"
  "stream_tests"
  "stream_tests.pdb"
  "stream_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
