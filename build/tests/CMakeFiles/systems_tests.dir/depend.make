# Empty dependencies file for systems_tests.
# This may be replaced when dependencies are built.
