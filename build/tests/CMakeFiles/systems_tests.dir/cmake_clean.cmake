file(REMOVE_RECURSE
  "CMakeFiles/systems_tests.dir/systems/assignment_test.cpp.o"
  "CMakeFiles/systems_tests.dir/systems/assignment_test.cpp.o.d"
  "CMakeFiles/systems_tests.dir/systems/bandwidth_test.cpp.o"
  "CMakeFiles/systems_tests.dir/systems/bandwidth_test.cpp.o.d"
  "CMakeFiles/systems_tests.dir/systems/coverage_test.cpp.o"
  "CMakeFiles/systems_tests.dir/systems/coverage_test.cpp.o.d"
  "CMakeFiles/systems_tests.dir/systems/scenario_test.cpp.o"
  "CMakeFiles/systems_tests.dir/systems/scenario_test.cpp.o.d"
  "systems_tests"
  "systems_tests.pdb"
  "systems_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systems_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
