file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/deadline_scheduler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/deadline_scheduler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/incentive_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/incentive_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/rate_adaptation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/rate_adaptation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/reputation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/reputation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/session_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/session_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/supernode_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/supernode_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/supernode_sender_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/supernode_sender_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
