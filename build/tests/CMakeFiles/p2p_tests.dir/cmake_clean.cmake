file(REMOVE_RECURSE
  "CMakeFiles/p2p_tests.dir/p2p/churn_test.cpp.o"
  "CMakeFiles/p2p_tests.dir/p2p/churn_test.cpp.o.d"
  "CMakeFiles/p2p_tests.dir/p2p/population_test.cpp.o"
  "CMakeFiles/p2p_tests.dir/p2p/population_test.cpp.o.d"
  "CMakeFiles/p2p_tests.dir/p2p/social_graph_test.cpp.o"
  "CMakeFiles/p2p_tests.dir/p2p/social_graph_test.cpp.o.d"
  "p2p_tests"
  "p2p_tests.pdb"
  "p2p_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
