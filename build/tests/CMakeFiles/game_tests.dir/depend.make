# Empty dependencies file for game_tests.
# This may be replaced when dependencies are built.
