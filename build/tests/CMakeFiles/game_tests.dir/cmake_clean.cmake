file(REMOVE_RECURSE
  "CMakeFiles/game_tests.dir/game/game_test.cpp.o"
  "CMakeFiles/game_tests.dir/game/game_test.cpp.o.d"
  "CMakeFiles/game_tests.dir/game/quality_test.cpp.o"
  "CMakeFiles/game_tests.dir/game/quality_test.cpp.o.d"
  "game_tests"
  "game_tests.pdb"
  "game_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
