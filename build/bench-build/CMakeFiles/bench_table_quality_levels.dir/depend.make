# Empty dependencies file for bench_table_quality_levels.
# This may be replaced when dependencies are built.
