file(REMOVE_RECURSE
  "../bench/bench_table_quality_levels"
  "../bench/bench_table_quality_levels.pdb"
  "CMakeFiles/bench_table_quality_levels.dir/bench_table_quality_levels.cpp.o"
  "CMakeFiles/bench_table_quality_levels.dir/bench_table_quality_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_quality_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
