file(REMOVE_RECURSE
  "../bench/bench_ablation_scheduler"
  "../bench/bench_ablation_scheduler.pdb"
  "CMakeFiles/bench_ablation_scheduler.dir/bench_ablation_scheduler.cpp.o"
  "CMakeFiles/bench_ablation_scheduler.dir/bench_ablation_scheduler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
