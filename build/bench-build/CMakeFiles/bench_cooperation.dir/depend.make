# Empty dependencies file for bench_cooperation.
# This may be replaced when dependencies are built.
