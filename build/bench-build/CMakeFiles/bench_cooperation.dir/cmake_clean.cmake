file(REMOVE_RECURSE
  "../bench/bench_cooperation"
  "../bench/bench_cooperation.pdb"
  "CMakeFiles/bench_cooperation.dir/bench_cooperation.cpp.o"
  "CMakeFiles/bench_cooperation.dir/bench_cooperation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cooperation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
