file(REMOVE_RECURSE
  "../bench/bench_dynamics_failover"
  "../bench/bench_dynamics_failover.pdb"
  "CMakeFiles/bench_dynamics_failover.dir/bench_dynamics_failover.cpp.o"
  "CMakeFiles/bench_dynamics_failover.dir/bench_dynamics_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamics_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
