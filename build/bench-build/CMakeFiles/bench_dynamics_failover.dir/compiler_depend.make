# Empty compiler generated dependencies file for bench_dynamics_failover.
# This may be replaced when dependencies are built.
