file(REMOVE_RECURSE
  "../bench/bench_ablation_wan"
  "../bench/bench_ablation_wan.pdb"
  "CMakeFiles/bench_ablation_wan.dir/bench_ablation_wan.cpp.o"
  "CMakeFiles/bench_ablation_wan.dir/bench_ablation_wan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
