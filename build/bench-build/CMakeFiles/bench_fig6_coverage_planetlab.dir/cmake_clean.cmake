file(REMOVE_RECURSE
  "../bench/bench_fig6_coverage_planetlab"
  "../bench/bench_fig6_coverage_planetlab.pdb"
  "CMakeFiles/bench_fig6_coverage_planetlab.dir/bench_fig6_coverage_planetlab.cpp.o"
  "CMakeFiles/bench_fig6_coverage_planetlab.dir/bench_fig6_coverage_planetlab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_coverage_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
