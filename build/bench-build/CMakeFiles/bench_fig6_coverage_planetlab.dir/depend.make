# Empty dependencies file for bench_fig6_coverage_planetlab.
# This may be replaced when dependencies are built.
